//! Shared machinery for the experiment harness and the Criterion benches:
//! run a set of layering algorithms over the AT&T-like suite and aggregate
//! the paper's metrics per size group. The [`loadclient`] module holds
//! the reusable serving-layer clients (`loadgen` and the router
//! regression tests drive the same code), the [`faultplan`] module the
//! deterministic fault-injection harness behind the durability
//! experiment and regression tests.

pub mod faultplan;
pub mod loadclient;

use antlayer_aco::{AcoLayering, AcoParams};
use antlayer_datasets::{Cell, GraphSuite, Table};
use antlayer_graph::Dag;
use antlayer_layering::{
    LayeringAlgorithm, LayeringMetrics, LongestPath, MinWidth, Promote, Refined, WidthModel,
};
use antlayer_parallel::{default_threads, par_map};
use std::time::Instant;

/// Mean metrics of one algorithm over one size group.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct GroupAverages {
    /// Vertex count of the group.
    pub n: usize,
    /// Mean height.
    pub height: f64,
    /// Mean width including dummies.
    pub width: f64,
    /// Mean width excluding dummies.
    pub width_excl: f64,
    /// Mean dummy vertex count.
    pub dvc: f64,
    /// Mean edge density.
    pub edge_density: f64,
    /// Mean wall time per graph in milliseconds.
    pub ms: f64,
}

/// Per-group series of one algorithm over the suite.
#[derive(Clone, Debug)]
pub struct AlgoSeries {
    /// Algorithm display name.
    pub name: String,
    /// One entry per suite group, in increasing `n`.
    pub groups: Vec<GroupAverages>,
}

/// The named algorithm set of the paper's evaluation (§VII): LPL, LPL+PL,
/// MinWidth, MinWidth+PL and the Ant Colony.
pub fn paper_algorithms(seed: u64) -> Vec<(String, Box<dyn LayeringAlgorithm + Sync>)> {
    vec![
        ("LPL".into(), Box::new(LongestPath)),
        (
            "LPL+PL".into(),
            Box::new(Refined::new(LongestPath, Promote::new())),
        ),
        ("MinWidth".into(), Box::new(MinWidth::new())),
        (
            "MinWidth+PL".into(),
            Box::new(Refined::new(MinWidth::new(), Promote::new())),
        ),
        (
            "AntColony".into(),
            Box::new(AcoLayering::new(AcoParams::default().with_seed(seed))),
        ),
    ]
}

/// The paper's algorithms plus the extensions this workspace adds on top:
/// Coffman–Graham, the exact network-simplex layering, and the colony with
/// a Promote post-pass (the obvious "further research" combination from
/// the paper's conclusion).
pub fn extended_algorithms(seed: u64) -> Vec<(String, Box<dyn LayeringAlgorithm + Sync>)> {
    let mut algos = paper_algorithms(seed);
    algos.push((
        "CoffmanGraham(4)".into(),
        Box::new(antlayer_layering::CoffmanGraham::new(4)),
    ));
    algos.push((
        "NetworkSimplex".into(),
        Box::new(antlayer_layering::NetworkSimplex),
    ));
    algos.push((
        "AntColony+PL".into(),
        Box::new(Refined::new(
            AcoLayering::new(AcoParams::default().with_seed(seed)),
            Promote::new(),
        )),
    ));
    algos
}

/// Runs `algo` over every graph of the suite (in parallel over graphs, but
/// deterministically) and averages the metrics per group.
pub fn evaluate_algorithm(
    suite: &GraphSuite,
    algo: &(dyn LayeringAlgorithm + Sync),
    wm: &WidthModel,
    threads: usize,
) -> Vec<GroupAverages> {
    suite
        .groups
        .iter()
        .map(|group| {
            let items: Vec<&Dag> = group.graphs.iter().collect();
            let per_graph: Vec<(LayeringMetrics, f64)> = par_map(threads, items, |_, dag| {
                let start = Instant::now();
                let layering = algo.layer(dag, wm);
                let ms = start.elapsed().as_secs_f64() * 1e3;
                debug_assert!(layering.validate(dag).is_ok());
                (LayeringMetrics::compute(dag, &layering, wm), ms)
            });
            let count = per_graph.len().max(1) as f64;
            let mut avg = GroupAverages {
                n: group.n,
                ..GroupAverages::default()
            };
            for (m, ms) in &per_graph {
                avg.height += m.height as f64;
                avg.width += m.width;
                avg.width_excl += m.width_excl_dummies;
                avg.dvc += m.dummy_count as f64;
                avg.edge_density += m.edge_density as f64;
                avg.ms += ms;
            }
            avg.height /= count;
            avg.width /= count;
            avg.width_excl /= count;
            avg.dvc /= count;
            avg.edge_density /= count;
            avg.ms /= count;
            avg
        })
        .collect()
}

/// Evaluates several algorithms, reusing the suite.
pub fn evaluate_algorithms(
    suite: &GraphSuite,
    algos: &[(String, Box<dyn LayeringAlgorithm + Sync>)],
    wm: &WidthModel,
) -> Vec<AlgoSeries> {
    let threads = default_threads(16);
    algos
        .iter()
        .map(|(name, algo)| AlgoSeries {
            name: name.clone(),
            groups: evaluate_algorithm(suite, algo.as_ref(), wm, threads),
        })
        .collect()
}

/// Builds a figure table: first column `n`, then one column per series
/// using `pick` to select the metric.
pub fn series_table(
    series: &[AlgoSeries],
    metric_name: &str,
    pick: impl Fn(&GroupAverages) -> f64,
) -> Table {
    let mut headers: Vec<String> = vec!["n".into()];
    headers.extend(series.iter().map(|s| s.name.clone()));
    let mut table = Table {
        headers,
        rows: Vec::new(),
    };
    let groups = series.first().map(|s| s.groups.len()).unwrap_or(0);
    for gi in 0..groups {
        let mut row: Vec<Cell> = vec![series[0].groups[gi].n.into()];
        for s in series {
            row.push(pick(&s.groups[gi]).into());
        }
        table.rows.push(row);
    }
    let _ = metric_name; // name only documents call sites
    table
}

/// Applies `k` random edge removals plus up to `k` short-span edge
/// additions to `dag`, returning the edited DAG — the edit-session
/// workload shared by the `warm_vs_cold` bench and the `experiments
/// warmstart` CI gate.
///
/// Added edges connect nearby ranks (LPL span 1–3), the locality of an
/// interactive edit on a hierarchical diagram — and of every other edge
/// in the layered graph class; an edge flung across half the hierarchy
/// would be a restructuring, not an edit. LPL ranks respect every
/// existing edge, so rank-downward additions keep the DAG acyclic.
/// Candidate sampling is attempt-bounded: on dense or degenerate graphs
/// where few fresh short-span pairs exist, the edit simply comes out
/// smaller instead of looping forever.
pub fn edit_session_dag(dag: &Dag, k: usize, rng: &mut rand::rngs::StdRng) -> Dag {
    use antlayer_graph::GraphDelta;
    use rand::Rng;
    let edges: Vec<(u32, u32)> = dag
        .edges()
        .map(|(u, v)| (u.index() as u32, v.index() as u32))
        .collect();
    let mut removed = Vec::new();
    let mut attempts = 64 * k.max(1);
    while removed.len() < k.min(edges.len()) && attempts > 0 {
        attempts -= 1;
        let e = edges[rng.gen_range(0..edges.len())];
        if !removed.contains(&e) {
            removed.push(e);
        }
    }
    let rank = LongestPath.layer(dag, &WidthModel::unit());
    let mut added = Vec::new();
    let mut attempts = 64 * k.max(1);
    while added.len() < k && attempts > 0 && dag.node_count() >= 2 {
        attempts -= 1;
        let u = rng.gen_range(0..dag.node_count() as u32);
        let v = rng.gen_range(0..dag.node_count() as u32);
        let (ru, rv) = (rank.layer(u.into()), rank.layer(v.into()));
        if ru > rv
            && ru - rv <= 3
            && !dag.has_edge(u.into(), v.into())
            && !added.contains(&(u, v))
            && !removed.contains(&(u, v))
        {
            added.push((u, v));
        }
    }
    GraphDelta::new(added, removed)
        .apply_to_dag(dag)
        .expect("rank-respecting edges keep the DAG acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_produces_one_entry_per_group() {
        let suite = GraphSuite::att_like_scaled(3, 19);
        let wm = WidthModel::unit();
        let avgs = evaluate_algorithm(&suite, &LongestPath, &wm, 2);
        assert_eq!(avgs.len(), 19);
        assert_eq!(avgs[0].n, 10);
        assert!(avgs.iter().all(|a| a.height >= 1.0 && a.width >= 1.0));
    }

    #[test]
    fn parallel_evaluation_is_deterministic() {
        let suite = GraphSuite::att_like_scaled(4, 19);
        let wm = WidthModel::unit();
        let a = evaluate_algorithm(&suite, &MinWidth::new(), &wm, 1);
        let b = evaluate_algorithm(&suite, &MinWidth::new(), &wm, 4);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.n, y.n);
            assert!((x.width - y.width).abs() < 1e-12);
            assert!((x.dvc - y.dvc).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_algorithm_set_is_complete() {
        let algos = paper_algorithms(1);
        let names: Vec<&str> = algos.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            ["LPL", "LPL+PL", "MinWidth", "MinWidth+PL", "AntColony"]
        );
    }

    #[test]
    fn series_table_layout() {
        let suite = GraphSuite::att_like_scaled(5, 19);
        let wm = WidthModel::unit();
        let algos = vec![(
            "LPL".to_string(),
            Box::new(LongestPath) as Box<dyn LayeringAlgorithm + Sync>,
        )];
        let series = evaluate_algorithms(&suite, &algos, &wm);
        let table = series_table(&series, "width", |g| g.width);
        assert_eq!(table.headers, vec!["n".to_string(), "LPL".to_string()]);
        assert_eq!(table.rows.len(), 19);
    }
}
