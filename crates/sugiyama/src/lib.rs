//! # antlayer-sugiyama
//!
//! The Sugiyama framework stages surrounding the layering step, so the
//! `antlayer` project is usable end-to-end: give it any digraph and get a
//! hierarchical drawing whose layering stage is pluggable — LPL, MinWidth,
//! Promote-refined variants, or the paper's ant colony.
//!
//! Stages:
//! 1. **Cycle removal** — Eades–Lin–Smyth greedy acyclic orientation;
//! 2. **Layering** — any [`LayeringAlgorithm`](antlayer_layering::LayeringAlgorithm);
//! 3. **Crossing minimization** — barycenter/median sweeps over the proper
//!    layering;
//! 4. **Coordinate assignment** — packed + barycenter-relaxed x positions;
//! 5. **Rendering** — SVG or ASCII.
//!
//! ```
//! use antlayer_graph::DiGraph;
//! use antlayer_layering::LongestPath;
//! use antlayer_sugiyama::{draw, PipelineOptions, SvgOptions};
//!
//! let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
//! let drawing = draw(&g, &LongestPath, &PipelineOptions::default());
//! let svg = drawing.to_svg(|v| v.index().to_string(), &SvgOptions::default());
//! assert!(svg.starts_with("<svg"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod coords;
mod cycle;
mod ordering;
mod pipeline;
pub mod render;

pub use coords::{assign_coordinates, CoordOptions, Coordinates};
pub use cycle::{acyclic_orientation, AcyclicOrientation};
pub use ordering::{
    crossings_between, initial_order, minimize_crossings, total_crossings, LayerOrder,
    OrderingHeuristic,
};
pub use pipeline::{draw, Drawing, PipelineOptions};
pub use render::ascii::{render_ascii, render_ascii_ids};
pub use render::dot::write_dot_ranked;
pub use render::svg::{render_svg, SvgOptions};
