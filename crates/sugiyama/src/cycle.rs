//! Cycle removal: the first stage of the Sugiyama framework.
//!
//! Layering requires a DAG; arbitrary digraphs are first given an acyclic
//! orientation by *reversing* the edges of a small feedback set. We
//! implement the Eades–Lin–Smyth (GR) greedy heuristic, which guarantees a
//! feedback set of at most `m/2 − n/6` edges and runs in `O(V + E)`.

use antlayer_graph::{Dag, DiGraph, NodeId};

/// Result of the acyclic orientation of a digraph.
#[derive(Clone, Debug)]
pub struct AcyclicOrientation {
    /// The acyclic graph (same node ids; some edges reversed).
    pub dag: Dag,
    /// The edges of the *input* graph that were reversed, as `(u, v)` pairs
    /// of the original direction.
    pub reversed: Vec<(NodeId, NodeId)>,
}

/// Computes a vertex sequence with few "backward" edges via the
/// Eades–Lin–Smyth greedy heuristic, then reverses those backward edges.
///
/// Self-loops are not representable in [`DiGraph`], so every input is
/// orientable. Multi-edges do not exist either (simple digraphs).
pub fn acyclic_orientation(g: &DiGraph) -> AcyclicOrientation {
    let order = greedy_sequence(g);
    let mut pos = vec![0usize; g.node_count()];
    for (i, v) in order.iter().enumerate() {
        pos[v.index()] = i;
    }
    let mut out = DiGraph::with_capacity(g.node_count(), g.edge_count());
    out.add_nodes(g.node_count());
    let mut reversed = Vec::new();
    for (u, v) in g.edges() {
        if pos[u.index()] < pos[v.index()] {
            let _ = out.add_edge(u, v);
        } else {
            // Backward edge: reverse it (skip silently if the reverse
            // already exists — the orientation stays acyclic).
            if out.add_edge(v, u).is_ok() {
                reversed.push((u, v));
            }
        }
    }
    AcyclicOrientation {
        dag: Dag::new(out).expect("all edges point forward in the sequence"),
        reversed,
    }
}

/// The Eades–Lin–Smyth vertex sequence: repeatedly peel sinks to the back
/// and sources to the front; when neither exists, move the vertex with the
/// largest `outdeg − indeg` to the front.
fn greedy_sequence(g: &DiGraph) -> Vec<NodeId> {
    let n = g.node_count();
    let mut out_deg: Vec<isize> = g.nodes().map(|v| g.out_degree(v) as isize).collect();
    let mut in_deg: Vec<isize> = g.nodes().map(|v| g.in_degree(v) as isize).collect();
    let mut removed = vec![false; n];
    let mut front: Vec<NodeId> = Vec::new();
    let mut back: Vec<NodeId> = Vec::new();
    let mut remaining = n;

    let remove =
        |v: NodeId, out_deg: &mut Vec<isize>, in_deg: &mut Vec<isize>, removed: &mut Vec<bool>| {
            removed[v.index()] = true;
            for &w in g.out_neighbors(v) {
                in_deg[w.index()] -= 1;
            }
            for &u in g.in_neighbors(v) {
                out_deg[u.index()] -= 1;
            }
        };

    while remaining > 0 {
        // Peel sinks.
        loop {
            let sink = g
                .nodes()
                .find(|&v| !removed[v.index()] && out_deg[v.index()] == 0);
            match sink {
                Some(v) => {
                    back.push(v);
                    remove(v, &mut out_deg, &mut in_deg, &mut removed);
                    remaining -= 1;
                }
                None => break,
            }
        }
        // Peel sources.
        loop {
            let source = g
                .nodes()
                .find(|&v| !removed[v.index()] && in_deg[v.index()] == 0);
            match source {
                Some(v) => {
                    front.push(v);
                    remove(v, &mut out_deg, &mut in_deg, &mut removed);
                    remaining -= 1;
                }
                None => break,
            }
        }
        if remaining == 0 {
            break;
        }
        // All remaining vertices are on cycles: take max outdeg − indeg.
        let v = g
            .nodes()
            .filter(|&v| !removed[v.index()])
            .max_by_key(|&v| out_deg[v.index()] - in_deg[v.index()])
            .expect("remaining > 0");
        front.push(v);
        remove(v, &mut out_deg, &mut in_deg, &mut removed);
        remaining -= 1;
    }
    back.reverse();
    front.extend(back);
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use antlayer_graph::is_acyclic;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn dag_input_reverses_nothing() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (0, 3), (3, 2)]).unwrap();
        let o = acyclic_orientation(&g);
        assert!(o.reversed.is_empty());
        assert_eq!(o.dag.edge_count(), 4);
    }

    #[test]
    fn two_cycle_reverses_one_edge() {
        let g = DiGraph::from_edges(2, &[(0, 1), (1, 0)]).unwrap();
        let o = acyclic_orientation(&g);
        // One direction survives; the duplicate reverse is dropped.
        assert!(o.dag.edge_count() >= 1);
        assert!(is_acyclic(&o.dag));
    }

    #[test]
    fn triangle_cycle_is_broken() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let o = acyclic_orientation(&g);
        assert!(is_acyclic(&o.dag));
        assert_eq!(o.dag.edge_count(), 3);
        assert_eq!(o.reversed.len(), 1);
    }

    #[test]
    fn random_digraphs_become_acyclic_with_bounded_reversals() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..20 {
            let n = rng.gen_range(5..40);
            let mut g = DiGraph::new();
            g.add_nodes(n);
            for _ in 0..(3 * n) {
                let u = rng.gen_range(0..n) as u32;
                let v = rng.gen_range(0..n) as u32;
                if u != v {
                    let _ = g.add_edge(NodeId::from(u), NodeId::from(v));
                }
            }
            let m = g.edge_count() as f64;
            let o = acyclic_orientation(&g);
            assert!(is_acyclic(&o.dag));
            // ELS guarantee: |reversed| <= m/2 - n/6 (we allow the exact bound).
            assert!(
                (o.reversed.len() as f64) <= m / 2.0,
                "reversed {} of {} edges",
                o.reversed.len(),
                m
            );
            // Node ids are preserved.
            assert_eq!(o.dag.node_count(), n);
        }
    }

    #[test]
    fn reversed_edges_existed_in_input() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]).unwrap();
        let o = acyclic_orientation(&g);
        for (u, v) in &o.reversed {
            assert!(g.has_edge(*u, *v), "reversed edge not from input");
            assert!(o.dag.has_edge(*v, *u), "reverse not present in output");
        }
    }

    #[test]
    fn empty_graph() {
        let o = acyclic_orientation(&DiGraph::new());
        assert_eq!(o.dag.node_count(), 0);
        assert!(o.reversed.is_empty());
    }
}
