//! Coordinate assignment: turning a layer order into x/y positions.
//!
//! A deliberately simple final stage: vertices are spaced along each layer
//! (respecting their widths plus a gap), then each layer is centred, and a
//! fixed number of barycenter relaxation passes pulls vertices under their
//! neighbours without reordering them. Layers map to y by layer index
//! (layer 1 at the bottom, matching the paper's geometry).

use crate::ordering::LayerOrder;
use antlayer_graph::NodeVec;
use antlayer_layering::{ProperLayering, WidthModel};

/// Computed positions for every node of a proper layering.
#[derive(Clone, Debug)]
pub struct Coordinates {
    /// X centre of every node.
    pub x: NodeVec<f64>,
    /// Y centre of every node (layer 1 at y = 0, higher layers above).
    pub y: NodeVec<f64>,
    /// Total drawing width.
    pub width: f64,
    /// Total drawing height.
    pub height: f64,
}

/// Layout options.
#[derive(Clone, Copy, Debug)]
pub struct CoordOptions {
    /// Horizontal gap between neighbouring vertices on a layer.
    pub h_gap: f64,
    /// Vertical distance between layer centre lines.
    pub v_gap: f64,
    /// Barycenter relaxation passes (0 = plain packed layout).
    pub relax_passes: usize,
}

impl Default for CoordOptions {
    fn default() -> Self {
        CoordOptions {
            h_gap: 1.0,
            v_gap: 2.0,
            relax_passes: 3,
        }
    }
}

/// Assigns coordinates to `order` (the output of crossing minimization).
pub fn assign_coordinates(
    p: &ProperLayering,
    order: &LayerOrder,
    wm: &WidthModel,
    opts: CoordOptions,
) -> Coordinates {
    let n = p.graph.node_count();
    let node_width = |v: antlayer_graph::NodeId| -> f64 {
        if p.kinds[v.index()].is_dummy() {
            wm.dummy_width
        } else {
            wm.node_width(v)
        }
    };
    let mut x = NodeVec::filled(0.0f64, n);
    let mut y = NodeVec::filled(0.0f64, n);

    // Initial packed placement, centred per layer.
    let mut max_span = 0.0f64;
    for (li, layer) in order.iter().enumerate() {
        let total: f64 = layer.iter().map(|&v| node_width(v)).sum::<f64>()
            + opts.h_gap * layer.len().saturating_sub(1) as f64;
        max_span = max_span.max(total);
        let mut cursor = -total / 2.0;
        for &v in layer {
            let w = node_width(v);
            x[v] = cursor + w / 2.0;
            y[v] = li as f64 * opts.v_gap;
            cursor += w + opts.h_gap;
        }
    }

    // Barycenter relaxation: nudge vertices toward the mean x of their
    // neighbours, clamped so the layer's left-to-right order (and minimum
    // gaps) are preserved.
    for _ in 0..opts.relax_passes {
        for layer in order.iter() {
            for (i, &v) in layer.iter().enumerate() {
                let mut neigh: Vec<f64> = p
                    .graph
                    .out_neighbors(v)
                    .iter()
                    .chain(p.graph.in_neighbors(v))
                    .map(|&u| x[u])
                    .collect();
                if neigh.is_empty() {
                    continue;
                }
                neigh.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let target = neigh.iter().sum::<f64>() / neigh.len() as f64;
                // Clamp against left and right neighbours on the layer.
                let mut lo = f64::NEG_INFINITY;
                let mut hi = f64::INFINITY;
                if i > 0 {
                    let l = layer[i - 1];
                    lo = x[l] + node_width(l) / 2.0 + opts.h_gap + node_width(v) / 2.0;
                }
                if i + 1 < layer.len() {
                    let r = layer[i + 1];
                    hi = x[r] - node_width(r) / 2.0 - opts.h_gap - node_width(v) / 2.0;
                }
                if lo <= hi {
                    x[v] = target.clamp(lo, hi);
                }
            }
        }
    }

    // Shift into positive coordinates.
    let min_x = x
        .values()
        .zip(p.kinds.iter())
        .map(|(&xv, _)| xv)
        .fold(f64::INFINITY, f64::min);
    let shift = if min_x.is_finite() { -min_x + 1.0 } else { 0.0 };
    for xv in x.values_mut() {
        *xv += shift;
    }
    let width = x.values().copied().fold(0.0f64, f64::max) + 1.0;
    let height = order.len().saturating_sub(1) as f64 * opts.v_gap + 1.0;
    Coordinates {
        x,
        y,
        width,
        height,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::{initial_order, minimize_crossings, OrderingHeuristic};
    use antlayer_graph::{Dag, NodeId};
    use antlayer_layering::Layering;

    fn fixture() -> (ProperLayering, LayerOrder) {
        let dag = Dag::from_edges(5, &[(0, 2), (0, 3), (1, 3), (2, 4), (3, 4)]).unwrap();
        let layering = Layering::from_slice(&[3, 3, 2, 2, 1]);
        let p = ProperLayering::build(&dag, &layering);
        let order = minimize_crossings(&p, OrderingHeuristic::Barycenter, 4);
        (p, order)
    }

    #[test]
    fn coordinates_cover_every_node() {
        let (p, order) = fixture();
        let c = assign_coordinates(&p, &order, &WidthModel::unit(), CoordOptions::default());
        assert_eq!(c.x.len(), p.graph.node_count());
        assert!(c.width > 0.0 && c.height > 0.0);
    }

    #[test]
    fn layers_map_to_increasing_y() {
        let (p, order) = fixture();
        let c = assign_coordinates(&p, &order, &WidthModel::unit(), CoordOptions::default());
        // Node 4 (layer 1) below nodes 2, 3 (layer 2) below 0, 1 (layer 3).
        assert!(c.y[NodeId::new(4)] < c.y[NodeId::new(2)]);
        assert!(c.y[NodeId::new(2)] < c.y[NodeId::new(0)]);
    }

    #[test]
    fn same_layer_nodes_do_not_overlap() {
        let (p, order) = fixture();
        let wm = WidthModel::unit();
        let opts = CoordOptions::default();
        let c = assign_coordinates(&p, &order, &wm, opts);
        for layer in &order {
            for pair in layer.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                assert!(
                    c.x[b] - c.x[a] >= 1.0 + opts.h_gap - 1e-9,
                    "nodes {a} and {b} overlap: {} vs {}",
                    c.x[a],
                    c.x[b]
                );
            }
        }
    }

    #[test]
    fn relaxation_preserves_order() {
        let (p, order) = fixture();
        let opts = CoordOptions {
            relax_passes: 10,
            ..CoordOptions::default()
        };
        let c = assign_coordinates(&p, &order, &WidthModel::unit(), opts);
        for layer in &order {
            for pair in layer.windows(2) {
                assert!(c.x[pair[0]] < c.x[pair[1]]);
            }
        }
    }

    #[test]
    fn all_coordinates_positive() {
        let (p, order) = fixture();
        let c = assign_coordinates(&p, &order, &WidthModel::unit(), CoordOptions::default());
        for (_, &xv) in c.x.iter() {
            assert!(xv > 0.0);
        }
    }

    #[test]
    fn zero_relax_passes_is_packed_layout() {
        let (p, order) = fixture();
        let opts = CoordOptions {
            relax_passes: 0,
            ..CoordOptions::default()
        };
        let c = assign_coordinates(&p, &order, &WidthModel::unit(), opts);
        // Packed: consecutive distance exactly width + gap.
        for layer in &order {
            for pair in layer.windows(2) {
                let d = c.x[pair[1]] - c.x[pair[0]];
                assert!((d - 2.0).abs() < 1e-9, "expected packed spacing, got {d}");
            }
        }
    }

    #[test]
    fn single_node_graph() {
        let dag = Dag::from_edges(1, &[]).unwrap();
        let p = ProperLayering::build(&dag, &Layering::flat(1));
        let order = initial_order(&p);
        let c = assign_coordinates(&p, &order, &WidthModel::unit(), CoordOptions::default());
        assert!(c.x[NodeId::new(0)] > 0.0);
        assert_eq!(c.y[NodeId::new(0)], 0.0);
    }
}
