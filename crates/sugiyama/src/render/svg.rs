//! SVG rendering of a laid-out DAG.

use crate::coords::Coordinates;
use crate::ordering::LayerOrder;
use antlayer_graph::NodeId;
use antlayer_layering::ProperLayering;
use std::fmt::Write as _;

/// Rendering options for [`render_svg`].
#[derive(Clone, Debug)]
pub struct SvgOptions {
    /// Pixels per layout unit.
    pub scale: f64,
    /// Vertex circle radius in pixels.
    pub node_radius: f64,
    /// Whether to draw dummy vertices as small dots (for debugging
    /// layerings) instead of hiding them inside edge polylines.
    pub show_dummies: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            scale: 40.0,
            node_radius: 10.0,
            show_dummies: false,
        }
    }
}

/// Renders the drawing as a standalone SVG document.
///
/// Long edges are drawn as polylines through their dummy-vertex bend
/// points, which is the visual payoff of the layering step: fewer/narrower
/// dummy columns mean straighter edge bundles.
pub fn render_svg(
    p: &ProperLayering,
    order: &LayerOrder,
    coords: &Coordinates,
    label: impl Fn(NodeId) -> String,
    opts: &SvgOptions,
) -> String {
    let s = opts.scale;
    let margin = 2.0 * opts.node_radius + 10.0;
    let px = |x: f64| x * s + margin;
    // Flip y: SVG grows downward, our layers grow upward.
    let py = |y: f64| (coords.height - y) * s + margin;
    let width_px = coords.width * s + 2.0 * margin;
    let height_px = coords.height * s + 2.0 * margin;

    let mut out = String::with_capacity(1024);
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width_px:.0}" height="{height_px:.0}" viewBox="0 0 {width_px:.0} {height_px:.0}">"#
    );
    let _ = writeln!(out, r#"  <rect width="100%" height="100%" fill="white"/>"#);

    // Edges: one polyline per original-edge chain.
    for chain in &p.chains {
        let pts: Vec<String> = chain
            .iter()
            .map(|&v| format!("{:.1},{:.1}", px(coords.x[v]), py(coords.y[v])))
            .collect();
        let _ = writeln!(
            out,
            r##"  <polyline points="{}" fill="none" stroke="#555" stroke-width="1.5"/>"##,
            pts.join(" ")
        );
    }

    // Vertices on top of edges.
    for layer in order {
        for &v in layer {
            let (x, y) = (px(coords.x[v]), py(coords.y[v]));
            if p.kinds[v.index()].is_dummy() {
                if opts.show_dummies {
                    let _ = writeln!(
                        out,
                        r##"  <circle cx="{x:.1}" cy="{y:.1}" r="{:.1}" fill="#bbb"/>"##,
                        opts.node_radius / 3.0
                    );
                }
                continue;
            }
            let _ = writeln!(
                out,
                r##"  <circle cx="{x:.1}" cy="{y:.1}" r="{:.1}" fill="#4a90d9" stroke="#1c5a96"/>"##,
                opts.node_radius
            );
            let _ = writeln!(
                out,
                r#"  <text x="{x:.1}" y="{:.1}" font-size="{:.0}" text-anchor="middle" fill="white">{}</text>"#,
                y + opts.node_radius * 0.35,
                opts.node_radius,
                escape_xml(&label(v))
            );
        }
    }
    out.push_str("</svg>\n");
    out
}

fn escape_xml(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::{assign_coordinates, CoordOptions};
    use crate::ordering::{minimize_crossings, OrderingHeuristic};
    use antlayer_graph::Dag;
    use antlayer_layering::{Layering, WidthModel};

    fn render_fixture(show_dummies: bool) -> String {
        let dag = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (0, 3)]).unwrap();
        let layering = Layering::from_slice(&[3, 2, 1, 1]);
        let p = ProperLayering::build(&dag, &layering);
        let order = minimize_crossings(&p, OrderingHeuristic::Barycenter, 4);
        let coords = assign_coordinates(&p, &order, &WidthModel::unit(), CoordOptions::default());
        render_svg(
            &p,
            &order,
            &coords,
            |v| format!("v{}", v.index()),
            &SvgOptions {
                show_dummies,
                ..SvgOptions::default()
            },
        )
    }

    #[test]
    fn produces_well_formed_svg() {
        let svg = render_fixture(false);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 4); // real nodes only
        assert_eq!(svg.matches("<polyline").count(), 4); // one per edge
        assert!(svg.contains(">v0<"));
    }

    #[test]
    fn dummy_dots_are_optional() {
        let hidden = render_fixture(false);
        let shown = render_fixture(true);
        assert!(shown.matches("<circle").count() > hidden.matches("<circle").count());
    }

    #[test]
    fn labels_are_escaped() {
        let dag = Dag::from_edges(1, &[]).unwrap();
        let p = ProperLayering::build(&dag, &Layering::flat(1));
        let order = vec![vec![antlayer_graph::NodeId::new(0)]];
        let coords = assign_coordinates(&p, &order, &WidthModel::unit(), CoordOptions::default());
        let svg = render_svg(
            &p,
            &order,
            &coords,
            |_| "<a&b>".into(),
            &SvgOptions::default(),
        );
        assert!(svg.contains("&lt;a&amp;b&gt;"));
    }
}
