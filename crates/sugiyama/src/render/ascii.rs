//! ASCII rendering: a quick terminal view of a layering.
//!
//! Draws one text row per layer (top layer first), showing real vertices by
//! label and dummy vertices as `·`. Useful for eyeballing what a layering
//! algorithm did without leaving the terminal.

use crate::ordering::LayerOrder;
use antlayer_graph::NodeId;
use antlayer_layering::ProperLayering;
use std::fmt::Write as _;

/// Renders one row per layer, top (highest index) first.
pub fn render_ascii(
    p: &ProperLayering,
    order: &LayerOrder,
    label: impl Fn(NodeId) -> String,
) -> String {
    let mut out = String::new();
    let height = order.len();
    for (li, layer) in order.iter().enumerate().rev() {
        let _ = write!(out, "L{:<3} |", li + 1);
        for &v in layer {
            if p.kinds[v.index()].is_dummy() {
                out.push_str("  ·");
            } else {
                let _ = write!(out, "  {}", label(v));
            }
        }
        out.push('\n');
        if li > 0 {
            let _ = writeln!(out, "     |");
        }
    }
    let _ = writeln!(out, "      ({height} layers)");
    out
}

/// Convenience: render with numeric ids.
pub fn render_ascii_ids(p: &ProperLayering, order: &LayerOrder) -> String {
    render_ascii(p, order, |v| v.index().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::initial_order;
    use antlayer_graph::Dag;
    use antlayer_layering::{Layering, ProperLayering};

    #[test]
    fn renders_layers_top_down() {
        let dag = Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let layering = Layering::from_slice(&[3, 2, 1]);
        let p = ProperLayering::build(&dag, &layering);
        let order = initial_order(&p);
        let txt = render_ascii_ids(&p, &order);
        let lines: Vec<&str> = txt.lines().collect();
        assert!(lines[0].starts_with("L3"));
        assert!(lines[0].contains('0'));
        assert!(txt.contains("(3 layers)"));
        // L1 (node 2) appears after L3 in the output.
        let l3 = txt.find("L3").unwrap();
        let l1 = txt.find("L1 ").unwrap();
        assert!(l1 > l3);
    }

    #[test]
    fn dummies_are_dots() {
        let dag = Dag::from_edges(2, &[(0, 1)]).unwrap();
        let layering = Layering::from_slice(&[3, 1]);
        let p = ProperLayering::build(&dag, &layering);
        let order = initial_order(&p);
        let txt = render_ascii_ids(&p, &order);
        assert!(txt.contains('·'));
    }

    #[test]
    fn custom_labels() {
        let dag = Dag::from_edges(2, &[(0, 1)]).unwrap();
        let layering = Layering::from_slice(&[2, 1]);
        let p = ProperLayering::build(&dag, &layering);
        let order = initial_order(&p);
        let txt = render_ascii(&p, &order, |v| format!("node{}", v.index()));
        assert!(txt.contains("node0") && txt.contains("node1"));
    }
}
