//! Drawing back-ends: SVG for documents, ASCII for terminals, ranked DOT
//! for Graphviz interop.

pub mod ascii;
pub mod dot;
pub mod svg;
