//! Graphviz interop: exporting a layering as DOT with `rank=same` groups.
//!
//! The emitted file pins every layer to a Graphviz rank, so `dot -Tsvg`
//! reproduces exactly the layering computed here (Graphviz otherwise runs
//! its own network-simplex ranking). Handy for comparing this library's
//! algorithms inside existing Graphviz tool chains.

use antlayer_graph::{DiGraph, NodeId};
use antlayer_layering::Layering;
use std::fmt::Write as _;

/// Serialises `g` with `layering` as DOT using one `rank=same` subgraph per
/// layer. The top layer is emitted first so the drawing reads downwards.
pub fn write_dot_ranked(
    g: &DiGraph,
    layering: &Layering,
    mut name: impl FnMut(NodeId) -> String,
) -> String {
    assert_eq!(
        layering.len(),
        g.node_count(),
        "layering and graph node counts differ"
    );
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::with_capacity(64 + 24 * (g.node_count() + g.edge_count()));
    out.push_str("digraph G {\n  rankdir=TB;\n");
    for (i, layer) in layering.layers().iter().enumerate().rev() {
        if layer.is_empty() {
            continue;
        }
        let _ = write!(out, "  {{ rank=same; /* L{} */", i + 1);
        for &v in layer {
            let _ = write!(out, " \"{}\";", esc(&name(v)));
        }
        out.push_str(" }\n");
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  \"{}\" -> \"{}\";", esc(&name(u)), esc(&name(v)));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use antlayer_graph::io::dot::parse_dot;
    use antlayer_graph::Dag;
    use antlayer_layering::{LayeringAlgorithm, LongestPath, WidthModel};

    fn fixture() -> (Dag, Layering) {
        let dag = Dag::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap();
        let l = LongestPath.layer(&dag, &WidthModel::unit());
        (dag, l)
    }

    #[test]
    fn emits_one_rank_group_per_layer() {
        let (dag, l) = fixture();
        let dot = write_dot_ranked(&dag, &l, |v| v.index().to_string());
        assert_eq!(dot.matches("rank=same").count(), l.height() as usize);
        assert!(dot.contains("rankdir=TB"));
    }

    #[test]
    fn output_is_parsable_dot_with_same_structure() {
        let (dag, l) = fixture();
        let dot = write_dot_ranked(&dag, &l, |v| format!("n{}", v.index()));
        let parsed = parse_dot(&dot).unwrap();
        assert_eq!(parsed.graph.node_count(), dag.node_count());
        assert_eq!(parsed.graph.edge_count(), dag.edge_count());
    }

    #[test]
    fn top_layer_listed_first() {
        let (dag, l) = fixture();
        let dot = write_dot_ranked(&dag, &l, |v| v.index().to_string());
        let top = dot.find("/* L4 */").expect("layer 4 comment");
        let bottom = dot.find("/* L1 */").expect("layer 1 comment");
        assert!(top < bottom);
    }

    #[test]
    fn names_with_quotes_are_escaped() {
        let dag = Dag::from_edges(2, &[(0, 1)]).unwrap();
        let l = Layering::from_slice(&[2, 1]);
        let dot = write_dot_ranked(&dag, &l, |v| format!("a\"{}", v.index()));
        assert!(dot.contains("a\\\"0"));
        assert!(parse_dot(&dot).is_ok());
    }

    #[test]
    #[should_panic(expected = "node counts differ")]
    fn mismatched_layering_is_rejected() {
        let dag = Dag::from_edges(3, &[(0, 1)]).unwrap();
        let l = Layering::from_slice(&[2, 1]);
        write_dot_ranked(&dag, &l, |v| v.index().to_string());
    }
}
