//! Crossing minimization: ordering the vertices inside each layer.
//!
//! Operates on a [`ProperLayering`] (long edges already subdivided), so all
//! crossings happen between adjacent layers. Implements the classic
//! barycenter and median layer-by-layer sweeps with a crossing counter used
//! both as the sweep's acceptance test and as a quality metric.

use antlayer_graph::{NodeId, NodeVec};
use antlayer_layering::ProperLayering;

/// How a sweep computes the new position key of a vertex.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OrderingHeuristic {
    /// Average position of the neighbours on the fixed layer.
    #[default]
    Barycenter,
    /// Median position of the neighbours on the fixed layer.
    Median,
}

/// A left-to-right order for every layer; entry `i` is layer `i + 1`.
pub type LayerOrder = Vec<Vec<NodeId>>;

/// Initial order: nodes of each layer sorted by id.
pub fn initial_order(p: &ProperLayering) -> LayerOrder {
    p.layering.layers()
}

/// Number of edge crossings between two adjacent ordered layers.
///
/// `upper` is the layer with the higher index; edges go from `upper` to
/// `lower`. Counts inversions among the edge endpoints — `O(E log E)` via
/// merge-sort counting.
pub fn crossings_between(p: &ProperLayering, upper: &[NodeId], lower: &[NodeId]) -> u64 {
    let mut pos_lower: NodeVec<u32> = NodeVec::filled(u32::MAX, p.graph.node_count());
    for (i, &v) in lower.iter().enumerate() {
        pos_lower[v] = i as u32;
    }
    // Collect target positions in upper-order; count inversions.
    let mut seq: Vec<u32> = Vec::new();
    for &u in upper {
        let mut targets: Vec<u32> = p
            .graph
            .out_neighbors(u)
            .iter()
            .map(|&w| pos_lower[w])
            .filter(|&x| x != u32::MAX)
            .collect();
        targets.sort_unstable();
        seq.extend(targets);
    }
    count_inversions(&mut seq)
}

/// Total crossings over all adjacent layer pairs.
pub fn total_crossings(p: &ProperLayering, order: &LayerOrder) -> u64 {
    let mut total = 0;
    for i in (1..order.len()).rev() {
        total += crossings_between(p, &order[i], &order[i - 1]);
    }
    total
}

fn count_inversions(seq: &mut [u32]) -> u64 {
    let n = seq.len();
    if n < 2 {
        return 0;
    }
    let mut buf = vec![0u32; n];
    fn sort(seq: &mut [u32], buf: &mut [u32]) -> u64 {
        let n = seq.len();
        if n < 2 {
            return 0;
        }
        let mid = n / 2;
        let mut inv = sort(&mut seq[..mid], buf) + sort(&mut seq[mid..], buf);
        // Merge.
        let (mut i, mut j, mut k) = (0usize, mid, 0usize);
        while i < mid && j < n {
            if seq[i] <= seq[j] {
                buf[k] = seq[i];
                i += 1;
            } else {
                buf[k] = seq[j];
                j += 1;
                inv += (mid - i) as u64;
            }
            k += 1;
        }
        while i < mid {
            buf[k] = seq[i];
            i += 1;
            k += 1;
        }
        while j < n {
            buf[k] = seq[j];
            j += 1;
            k += 1;
        }
        seq.copy_from_slice(&buf[..n]);
        inv
    }
    sort(seq, &mut buf)
}

/// Runs alternating down/up sweeps of the chosen heuristic until the
/// crossing count stops improving (or `max_sweeps` is reached). Returns the
/// best order found.
pub fn minimize_crossings(
    p: &ProperLayering,
    heuristic: OrderingHeuristic,
    max_sweeps: usize,
) -> LayerOrder {
    let mut order = initial_order(p);
    if order.len() < 2 {
        return order;
    }
    let mut best = order.clone();
    let mut best_crossings = total_crossings(p, &best);
    for sweep in 0..max_sweeps {
        let downward = sweep % 2 == 0;
        sweep_once(p, &mut order, heuristic, downward);
        let c = total_crossings(p, &order);
        if c < best_crossings {
            best_crossings = c;
            best = order.clone();
            if best_crossings == 0 {
                break;
            }
        }
    }
    best
}

/// One sweep: re-sorts every layer by the heuristic key of its neighbours
/// on the previously processed (fixed) layer.
fn sweep_once(
    p: &ProperLayering,
    order: &mut LayerOrder,
    heuristic: OrderingHeuristic,
    downward: bool,
) {
    let h = order.len();
    let mut pos: NodeVec<f64> = NodeVec::filled(0.0, p.graph.node_count());
    let indices: Vec<usize> = if downward {
        // Fix the top layer, re-order downwards (layers h-2 .. 0).
        (0..h - 1).rev().collect()
    } else {
        (1..h).collect()
    };
    // Record positions of every layer first.
    for layer in order.iter() {
        for (i, &v) in layer.iter().enumerate() {
            pos[v] = i as f64;
        }
    }
    for li in indices {
        let fixed_is_upper = downward;
        let layer = &mut order[li];
        let keys: Vec<(f64, u32, NodeId)> = layer
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let neigh: Vec<f64> = if fixed_is_upper {
                    p.graph.in_neighbors(v).iter().map(|&u| pos[u]).collect()
                } else {
                    p.graph.out_neighbors(v).iter().map(|&w| pos[w]).collect()
                };
                let key = if neigh.is_empty() {
                    i as f64 // keep isolated vertices where they are
                } else {
                    match heuristic {
                        OrderingHeuristic::Barycenter => {
                            neigh.iter().sum::<f64>() / neigh.len() as f64
                        }
                        OrderingHeuristic::Median => {
                            let mut s = neigh;
                            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
                            s[s.len() / 2]
                        }
                    }
                };
                (key, i as u32, v)
            })
            .collect();
        let mut sorted = keys;
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        for (i, (_, _, v)) in sorted.iter().enumerate() {
            layer[i] = *v;
            pos[*v] = i as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antlayer_graph::Dag;
    use antlayer_layering::{Layering, ProperLayering};

    /// Two layers, edges forming an X: 2→1' and 3→0' style crossing.
    fn crossing_fixture() -> ProperLayering {
        // upper layer: 0, 1 (layer 2); lower: 2, 3 (layer 1).
        // edges 0→3 and 1→2 cross in id order.
        let dag = Dag::from_edges(4, &[(0, 3), (1, 2)]).unwrap();
        let layering = Layering::from_slice(&[2, 2, 1, 1]);
        ProperLayering::build(&dag, &layering)
    }

    #[test]
    fn counts_single_crossing() {
        let p = crossing_fixture();
        let order = initial_order(&p);
        assert_eq!(total_crossings(&p, &order), 1);
    }

    #[test]
    fn barycenter_removes_crossing() {
        let p = crossing_fixture();
        let order = minimize_crossings(&p, OrderingHeuristic::Barycenter, 4);
        assert_eq!(total_crossings(&p, &order), 0);
    }

    #[test]
    fn median_removes_crossing() {
        let p = crossing_fixture();
        let order = minimize_crossings(&p, OrderingHeuristic::Median, 4);
        assert_eq!(total_crossings(&p, &order), 0);
    }

    #[test]
    fn order_is_a_permutation_of_each_layer() {
        let dag = Dag::from_edges(6, &[(0, 2), (0, 3), (1, 2), (1, 4), (2, 5), (3, 5)]).unwrap();
        let layering = Layering::from_slice(&[3, 3, 2, 2, 2, 1]);
        let p = ProperLayering::build(&dag, &layering);
        let order = minimize_crossings(&p, OrderingHeuristic::Barycenter, 6);
        let init = initial_order(&p);
        assert_eq!(order.len(), init.len());
        for (a, b) in order.iter().zip(init.iter()) {
            let mut a2 = a.clone();
            let mut b2 = b.clone();
            a2.sort();
            b2.sort();
            assert_eq!(a2, b2);
        }
    }

    #[test]
    fn sweeps_never_return_worse_than_initial() {
        let dag = Dag::from_edges(
            8,
            &[
                (0, 4),
                (0, 5),
                (1, 4),
                (1, 6),
                (2, 5),
                (2, 7),
                (3, 6),
                (3, 7),
            ],
        )
        .unwrap();
        let layering = Layering::from_slice(&[2, 2, 2, 2, 1, 1, 1, 1]);
        let p = ProperLayering::build(&dag, &layering);
        let before = total_crossings(&p, &initial_order(&p));
        let after = total_crossings(
            &p,
            &minimize_crossings(&p, OrderingHeuristic::Barycenter, 8),
        );
        assert!(after <= before);
    }

    #[test]
    fn inversion_counter_matches_bruteforce() {
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![1],
            vec![1, 2, 3],
            vec![3, 2, 1],
            vec![2, 1, 3, 5, 4],
            vec![5, 4, 3, 2, 1, 0],
        ];
        for case in cases {
            let brute = {
                let mut c = 0u64;
                for i in 0..case.len() {
                    for j in i + 1..case.len() {
                        if case[i] > case[j] {
                            c += 1;
                        }
                    }
                }
                c
            };
            let mut work = case.clone();
            assert_eq!(count_inversions(&mut work), brute, "case {case:?}");
        }
    }

    #[test]
    fn single_layer_graph_is_trivial() {
        let dag = Dag::from_edges(3, &[]).unwrap();
        let layering = Layering::flat(3);
        let p = ProperLayering::build(&dag, &layering);
        let order = minimize_crossings(&p, OrderingHeuristic::Barycenter, 4);
        assert_eq!(order.len(), 1);
        assert_eq!(total_crossings(&p, &order), 0);
    }

    #[test]
    fn long_edges_cross_via_dummies() {
        // 0→1 (span 2, gets a dummy) and 2 on the middle layer; the dummy
        // participates in ordering like a real vertex.
        let dag = Dag::from_edges(3, &[(0, 1), (0, 2)]).unwrap();
        let layering = Layering::from_slice(&[3, 1, 2]);
        let p = ProperLayering::build(&dag, &layering);
        assert_eq!(p.dummy_count(), 1);
        let order = minimize_crossings(&p, OrderingHeuristic::Barycenter, 4);
        // Middle layer holds node 2 and one dummy.
        assert_eq!(order[1].len(), 2);
    }
}
