//! The end-to-end Sugiyama pipeline.
//!
//! Chains the four classic stages around a pluggable layering algorithm:
//!
//! 1. cycle removal ([`acyclic_orientation`](crate::acyclic_orientation)),
//! 2. **layering** — any [`LayeringAlgorithm`]: LPL, MinWidth, their
//!    PL-refined variants, or the paper's ant colony,
//! 3. crossing minimization ([`minimize_crossings`](crate::minimize_crossings)),
//! 4. coordinate assignment ([`assign_coordinates`](crate::assign_coordinates)).

use crate::coords::{assign_coordinates, CoordOptions, Coordinates};
use crate::cycle::acyclic_orientation;
use crate::ordering::{minimize_crossings, total_crossings, LayerOrder, OrderingHeuristic};
use crate::render::ascii::render_ascii;
use crate::render::svg::{render_svg, SvgOptions};
use antlayer_graph::{DiGraph, NodeId};
use antlayer_layering::{Layering, LayeringAlgorithm, LayeringMetrics, ProperLayering, WidthModel};

/// Configuration of the pipeline stages around the layering algorithm.
#[derive(Clone, Debug)]
pub struct PipelineOptions {
    /// Width model used for layering and layout.
    pub widths: WidthModel,
    /// Crossing-minimization heuristic.
    pub ordering: OrderingHeuristic,
    /// Maximum ordering sweeps.
    pub max_sweeps: usize,
    /// Coordinate options.
    pub coords: CoordOptions,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            widths: WidthModel::unit(),
            ordering: OrderingHeuristic::Barycenter,
            max_sweeps: 8,
            coords: CoordOptions::default(),
        }
    }
}

/// A fully laid-out drawing of a digraph.
#[derive(Clone, Debug)]
pub struct Drawing {
    /// The proper layering (expanded graph + dummy provenance).
    pub proper: ProperLayering,
    /// The (normalized) layering of the original DAG.
    pub layering: Layering,
    /// Vertex order per layer after crossing minimization.
    pub order: LayerOrder,
    /// Node coordinates.
    pub coords: Coordinates,
    /// Edges of the *input* digraph that were reversed for cycle removal.
    pub reversed_edges: Vec<(NodeId, NodeId)>,
    /// Metrics of the layering stage.
    pub metrics: LayeringMetrics,
    /// Edge crossings in the final order.
    pub crossings: u64,
}

impl Drawing {
    /// Renders the drawing as an SVG document.
    pub fn to_svg(&self, label: impl Fn(NodeId) -> String, opts: &SvgOptions) -> String {
        render_svg(&self.proper, &self.order, &self.coords, label, opts)
    }

    /// Renders the drawing as ASCII art (one row per layer).
    pub fn to_ascii(&self, label: impl Fn(NodeId) -> String) -> String {
        render_ascii(&self.proper, &self.order, label)
    }
}

/// Runs the full pipeline on `graph` (which may contain cycles) with the
/// given layering algorithm.
///
/// # Example
/// ```
/// use antlayer_graph::DiGraph;
/// use antlayer_layering::LongestPath;
/// use antlayer_sugiyama::{draw, PipelineOptions};
///
/// let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (1, 3)]).unwrap();
/// let drawing = draw(&g, &LongestPath, &PipelineOptions::default());
/// assert_eq!(drawing.layering.len(), 4);
/// assert!(!drawing.reversed_edges.is_empty()); // the cycle was broken
/// ```
pub fn draw(graph: &DiGraph, algorithm: &dyn LayeringAlgorithm, opts: &PipelineOptions) -> Drawing {
    let oriented = acyclic_orientation(graph);
    let mut layering = algorithm.layer(&oriented.dag, &opts.widths);
    layering.normalize();
    debug_assert!(layering.validate(&oriented.dag).is_ok());
    let metrics = LayeringMetrics::compute(&oriented.dag, &layering, &opts.widths);
    let proper = ProperLayering::build(&oriented.dag, &layering);
    let order = minimize_crossings(&proper, opts.ordering, opts.max_sweeps);
    let crossings = total_crossings(&proper, &order);
    let coords = assign_coordinates(&proper, &order, &opts.widths, opts.coords);
    Drawing {
        proper,
        layering,
        order,
        coords,
        reversed_edges: oriented.reversed,
        metrics,
        crossings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antlayer_layering::{LongestPath, MinWidth};

    fn cyclic_fixture() -> DiGraph {
        DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 1), (2, 4), (4, 5), (5, 0)]).unwrap()
    }

    #[test]
    fn pipeline_handles_cyclic_input() {
        let g = cyclic_fixture();
        let d = draw(&g, &LongestPath, &PipelineOptions::default());
        assert!(!d.reversed_edges.is_empty());
        assert_eq!(d.layering.len(), 6);
        assert!(d.metrics.height >= 2);
    }

    #[test]
    fn different_algorithms_plug_in() {
        let g = cyclic_fixture();
        let lpl = draw(&g, &LongestPath, &PipelineOptions::default());
        let mw = draw(&g, &MinWidth::new(), &PipelineOptions::default());
        assert!(mw.metrics.height >= lpl.metrics.height);
    }

    #[test]
    fn drawing_renders_both_backends() {
        let g = cyclic_fixture();
        let d = draw(&g, &LongestPath, &PipelineOptions::default());
        let svg = d.to_svg(|v| v.index().to_string(), &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        let ascii = d.to_ascii(|v| v.index().to_string());
        assert!(ascii.contains("layers)"));
    }

    #[test]
    fn crossings_metric_is_consistent() {
        let g = cyclic_fixture();
        let d = draw(&g, &LongestPath, &PipelineOptions::default());
        assert_eq!(d.crossings, total_crossings(&d.proper, &d.order));
    }

    #[test]
    fn dag_input_keeps_all_edges_forward() {
        let g = DiGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap();
        let d = draw(&g, &LongestPath, &PipelineOptions::default());
        assert!(d.reversed_edges.is_empty());
        assert_eq!(d.proper.chains.len(), 5);
    }

    #[test]
    fn empty_graph_is_drawable() {
        let d = draw(&DiGraph::new(), &LongestPath, &PipelineOptions::default());
        assert_eq!(d.layering.len(), 0);
        assert_eq!(d.crossings, 0);
    }
}
