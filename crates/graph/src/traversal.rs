//! Graph traversals: BFS, DFS and weak connectivity.

use crate::{DiGraph, NodeId, NodeSet};
use std::collections::VecDeque;

/// Direction along which a traversal follows edges.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Direction {
    /// Follow edges source → target.
    #[default]
    Forward,
    /// Follow edges target → source.
    Backward,
    /// Ignore edge direction (weak connectivity).
    Undirected,
}

fn neighbors<'g>(
    g: &'g DiGraph,
    v: NodeId,
    dir: Direction,
) -> Box<dyn Iterator<Item = NodeId> + 'g> {
    match dir {
        Direction::Forward => Box::new(g.out_neighbors(v).iter().copied()),
        Direction::Backward => Box::new(g.in_neighbors(v).iter().copied()),
        Direction::Undirected => {
            Box::new(g.out_neighbors(v).iter().chain(g.in_neighbors(v)).copied())
        }
    }
}

/// Breadth-first traversal yielding nodes in visit order.
///
/// # Example
/// ```
/// use antlayer_graph::{DiGraph, NodeId, Bfs, Direction};
/// let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3)]).unwrap();
/// let order: Vec<usize> = Bfs::new(&g, NodeId::new(0), Direction::Forward)
///     .map(|n| n.index())
///     .collect();
/// assert_eq!(order, [0, 1, 2, 3]);
/// ```
pub struct Bfs<'g> {
    graph: &'g DiGraph,
    dir: Direction,
    queue: VecDeque<NodeId>,
    seen: NodeSet,
}

impl<'g> Bfs<'g> {
    /// Starts a BFS from `start`.
    pub fn new(graph: &'g DiGraph, start: NodeId, dir: Direction) -> Self {
        let mut seen = NodeSet::with_capacity(graph.node_count());
        seen.insert(start);
        Bfs {
            graph,
            dir,
            queue: VecDeque::from([start]),
            seen,
        }
    }
}

impl Iterator for Bfs<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let v = self.queue.pop_front()?;
        for w in neighbors(self.graph, v, self.dir) {
            if self.seen.insert(w) {
                self.queue.push_back(w);
            }
        }
        Some(v)
    }
}

/// Depth-first (pre-order) traversal yielding nodes in visit order.
pub struct Dfs<'g> {
    graph: &'g DiGraph,
    dir: Direction,
    stack: Vec<NodeId>,
    seen: NodeSet,
}

impl<'g> Dfs<'g> {
    /// Starts a DFS from `start`.
    pub fn new(graph: &'g DiGraph, start: NodeId, dir: Direction) -> Self {
        let mut seen = NodeSet::with_capacity(graph.node_count());
        seen.insert(start);
        Dfs {
            graph,
            dir,
            stack: vec![start],
            seen,
        }
    }
}

impl Iterator for Dfs<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let v = self.stack.pop()?;
        for w in neighbors(self.graph, v, self.dir) {
            if self.seen.insert(w) {
                self.stack.push(w);
            }
        }
        Some(v)
    }
}

/// The set of nodes reachable from `start` (inclusive) in direction `dir`.
pub fn reachable_set(g: &DiGraph, start: NodeId, dir: Direction) -> NodeSet {
    let mut set = NodeSet::with_capacity(g.node_count());
    for v in Bfs::new(g, start, dir) {
        set.insert(v);
    }
    set
}

/// Weakly connected components, each a sorted list of node ids.
///
/// Components are returned ordered by their smallest member.
pub fn weak_components(g: &DiGraph) -> Vec<Vec<NodeId>> {
    let mut assigned = NodeSet::with_capacity(g.node_count());
    let mut comps = Vec::new();
    for v in g.nodes() {
        if assigned.contains(v) {
            continue;
        }
        let mut comp: Vec<NodeId> = Bfs::new(g, v, Direction::Undirected).collect();
        for &u in &comp {
            assigned.insert(u);
        }
        comp.sort();
        comps.push(comp);
    }
    comps
}

/// Whether the graph is weakly connected (the empty graph counts as connected).
pub fn is_weakly_connected(g: &DiGraph) -> bool {
    weak_components(g).len() <= 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn bfs_visits_each_node_once() {
        // Diamond: both paths reach 3, it must appear once.
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let order: Vec<_> = Bfs::new(&g, n(0), Direction::Forward).collect();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], n(0));
    }

    #[test]
    fn bfs_backward_follows_in_edges() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let order: Vec<_> = Bfs::new(&g, n(2), Direction::Backward).collect();
        assert_eq!(order, vec![n(2), n(1), n(0)]);
    }

    #[test]
    fn dfs_reaches_everything_reachable() {
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (0, 3)]).unwrap();
        let seen: Vec<_> = Dfs::new(&g, n(0), Direction::Forward).collect();
        assert_eq!(seen.len(), 4); // node 4 is unreachable
        assert!(!seen.contains(&n(4)));
    }

    #[test]
    fn undirected_traversal_crosses_both_ways() {
        let g = DiGraph::from_edges(3, &[(0, 1), (2, 1)]).unwrap();
        let set = reachable_set(&g, n(0), Direction::Undirected);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn reachable_set_forward_only() {
        let g = DiGraph::from_edges(3, &[(0, 1), (2, 1)]).unwrap();
        let set = reachable_set(&g, n(0), Direction::Forward);
        assert!(set.contains(n(0)) && set.contains(n(1)) && !set.contains(n(2)));
    }

    #[test]
    fn weak_components_partition() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let comps = weak_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![n(0), n(1), n(2)]);
        assert_eq!(comps[1], vec![n(3), n(4)]);
        assert_eq!(comps[2], vec![n(5)]);
        assert!(!is_weakly_connected(&g));
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_weakly_connected(&DiGraph::new()));
    }

    #[test]
    fn single_node_component() {
        let mut g = DiGraph::new();
        g.add_node();
        assert!(is_weakly_connected(&g));
        assert_eq!(weak_components(&g).len(), 1);
    }
}
