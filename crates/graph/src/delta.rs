//! Edge diffs between two graphs sharing a node set.
//!
//! Interactive diagram editing changes a few edges at a time; re-sending
//! the whole graph for every keystroke wastes bandwidth and — worse —
//! discards the identity that lets the serving layer reuse the previous
//! layering as a warm start. [`GraphDelta`] captures exactly that edit:
//! a set of edges to remove and a set to add, applied to a [`DiGraph`]
//! with full validation (endpoints in bounds, removed edges present,
//! added edges absent, no self-loops) so a malformed client diff can
//! never corrupt a cached base graph.
//!
//! Deltas are invertible: [`GraphDelta::inverse`] swaps the two sets, and
//! `apply(delta)` followed by `apply(inverse(delta))` restores the
//! original graph bit for bit (the property tests pin this down). The
//! node set is deliberately fixed — node ids are the join key between a
//! delta, the base graph, and the base *layering*; growing the node set
//! is a full re-layout, not an edit.

use crate::{Dag, DiGraph, GraphError, NodeId};
use std::fmt;

/// An edge edit: remove `removed`, then add `added`.
///
/// Removal happens before addition, so a delta may move an edge by
/// listing it in `removed` and a replacement in `added` even when the
/// two overlap. Within each list, duplicates are invalid (the second
/// removal sees the edge already gone; the second addition sees it
/// already present).
///
/// # Example
/// ```
/// use antlayer_graph::{DiGraph, GraphDelta};
///
/// let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// let delta = GraphDelta::new(vec![(0, 2)], vec![(0, 1)]);
/// let edited = delta.apply(&g).unwrap();
/// assert!(edited.has_edge(0.into(), 2.into()));
/// assert!(!edited.has_edge(0.into(), 1.into()));
/// let restored = delta.inverse().apply(&edited).unwrap();
/// assert_eq!(restored.edge_count(), g.edge_count());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// Edges to insert, as `(source, target)` index pairs.
    pub added: Vec<(u32, u32)>,
    /// Edges to delete, as `(source, target)` index pairs.
    pub removed: Vec<(u32, u32)>,
}

/// Why a delta could not be applied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// An edge listed in `removed` is not present in the base graph.
    MissingEdge(u32, u32),
    /// Adding an edge failed (out of bounds, self-loop, or duplicate).
    BadAddition(GraphError),
    /// An endpoint of a removed edge is out of bounds.
    RemovedOutOfBounds(u32, u32),
    /// Applying the delta to a DAG produced a directed cycle.
    CreatesCycle(Vec<NodeId>),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::MissingEdge(u, v) => {
                write!(f, "cannot remove edge ({u}, {v}): not present")
            }
            DeltaError::BadAddition(e) => write!(f, "cannot add edge: {e}"),
            DeltaError::RemovedOutOfBounds(u, v) => {
                write!(f, "removed edge ({u}, {v}) has an out-of-bounds endpoint")
            }
            DeltaError::CreatesCycle(nodes) => {
                write!(f, "delta creates a directed cycle through [")?;
                for (i, n) in nodes.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

impl GraphDelta {
    /// A delta adding `added` and removing `removed`.
    pub fn new(added: Vec<(u32, u32)>, removed: Vec<(u32, u32)>) -> Self {
        GraphDelta { added, removed }
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Number of edge edits (`added + removed`).
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// The delta that undoes this one: added edges are removed and vice
    /// versa. `apply(d)` followed by `apply(d.inverse())` restores the
    /// original graph exactly (including edge insertion order up to the
    /// canonical sorted form the digests use).
    pub fn inverse(&self) -> GraphDelta {
        GraphDelta {
            added: self.removed.clone(),
            removed: self.added.clone(),
        }
    }

    /// The single delta with the net effect of applying `self` and then
    /// `next` — the coalescing step of a live edit session: a burst of
    /// deltas arriving while a solve is in flight folds into one edit,
    /// and one re-solve covers the burst.
    ///
    /// Per edge, the occurrences across both deltas are summed (`+1`
    /// add, `-1` remove, removals-first within each delta as
    /// [`apply`](Self::apply) orders them): a positive net is an
    /// addition, a negative net a removal, and zero — an edge added
    /// then removed, or removed then re-added — drops out entirely. For
    /// any base graph on which the two deltas apply in sequence,
    /// `d1.compose(&d2).apply(g)` equals `d2.apply(&d1.apply(g)?)` (the
    /// property tests pin this down). Edges are emitted in sorted
    /// order, so composition is canonical regardless of arrival order
    /// within the burst.
    pub fn compose(&self, next: &GraphDelta) -> GraphDelta {
        let mut net: std::collections::BTreeMap<(u32, u32), i32> = std::collections::BTreeMap::new();
        for delta in [self, next] {
            for &e in &delta.removed {
                *net.entry(e).or_insert(0) -= 1;
            }
            for &e in &delta.added {
                *net.entry(e).or_insert(0) += 1;
            }
        }
        let mut added = Vec::new();
        let mut removed = Vec::new();
        for ((u, v), n) in net {
            match n.cmp(&0) {
                std::cmp::Ordering::Greater => added.push((u, v)),
                std::cmp::Ordering::Less => removed.push((u, v)),
                std::cmp::Ordering::Equal => {}
            }
        }
        GraphDelta { added, removed }
    }

    /// Applies the delta to `graph`, returning the edited graph.
    ///
    /// Validation is all-or-nothing: every removed edge must exist in
    /// `graph`, and every added edge must be addable *after* the
    /// removals (in bounds, no self-loop, not already present). The base
    /// graph is never mutated.
    pub fn apply(&self, graph: &DiGraph) -> Result<DiGraph, DeltaError> {
        let n = graph.node_count();
        // Set-based membership keeps application linear in E + delta
        // size: deltas run on the serving path against cached base
        // graphs, where a per-edge scan of the removal list would turn
        // one large request into minutes of CPU.
        let mut removed = std::collections::HashSet::with_capacity(self.removed.len());
        for &(u, v) in &self.removed {
            if u as usize >= n || v as usize >= n {
                return Err(DeltaError::RemovedOutOfBounds(u, v));
            }
            if !graph.has_edge(NodeId::new(u as usize), NodeId::new(v as usize)) {
                return Err(DeltaError::MissingEdge(u, v));
            }
            // A doubly-listed removal is a removal of an edge that is
            // (by then) gone — reject it like any other missing edge.
            if !removed.insert((u, v)) {
                return Err(DeltaError::MissingEdge(u, v));
            }
        }
        let mut edited =
            graph.filter_edges(|u, v| !removed.contains(&(u.index() as u32, v.index() as u32)));
        for &(u, v) in &self.added {
            edited
                .add_edge(NodeId::new(u as usize), NodeId::new(v as usize))
                .map_err(DeltaError::BadAddition)?;
        }
        Ok(edited)
    }

    /// Applies the delta to a [`Dag`], re-checking acyclicity.
    ///
    /// Edge additions can close a directed cycle; this re-runs the
    /// topological check (the same machinery [`Dag::new`] uses) and
    /// reports the witness cycle on failure.
    pub fn apply_to_dag(&self, dag: &Dag) -> Result<Dag, DeltaError> {
        let edited = self.apply(dag.graph())?;
        Dag::new(edited).map_err(|e| match e {
            GraphError::Cycle(nodes) => DeltaError::CreatesCycle(nodes),
            other => DeltaError::BadAddition(other),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn apply_adds_and_removes() {
        let g = diamond();
        let d = GraphDelta::new(vec![(0, 3)], vec![(0, 1), (1, 3)]);
        let e = d.apply(&g).unwrap();
        assert_eq!(e.edge_count(), 3);
        assert!(e.has_edge(NodeId::new(0), NodeId::new(3)));
        assert!(!e.has_edge(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn removal_happens_before_addition() {
        // Re-adding a removed edge is a no-op delta overall but must be
        // accepted: remove-then-add.
        let g = diamond();
        let d = GraphDelta::new(vec![(0, 1)], vec![(0, 1)]);
        let e = d.apply(&g).unwrap();
        assert_eq!(e.edge_count(), 4);
        assert!(e.has_edge(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn missing_removed_edge_is_rejected() {
        let g = diamond();
        let d = GraphDelta::new(vec![], vec![(3, 0)]);
        assert_eq!(d.apply(&g).unwrap_err(), DeltaError::MissingEdge(3, 0));
        let dup = GraphDelta::new(vec![], vec![(0, 1), (0, 1)]);
        assert_eq!(dup.apply(&g).unwrap_err(), DeltaError::MissingEdge(0, 1));
    }

    #[test]
    fn out_of_bounds_and_bad_additions_are_rejected() {
        let g = diamond();
        assert!(matches!(
            GraphDelta::new(vec![], vec![(9, 0)]).apply(&g),
            Err(DeltaError::RemovedOutOfBounds(9, 0))
        ));
        assert!(matches!(
            GraphDelta::new(vec![(2, 2)], vec![]).apply(&g),
            Err(DeltaError::BadAddition(GraphError::SelfLoop(_)))
        ));
        assert!(matches!(
            GraphDelta::new(vec![(0, 1)], vec![]).apply(&g),
            Err(DeltaError::BadAddition(GraphError::DuplicateEdge(_, _)))
        ));
        assert!(matches!(
            GraphDelta::new(vec![(0, 9)], vec![]).apply(&g),
            Err(DeltaError::BadAddition(GraphError::NodeOutOfBounds { .. }))
        ));
    }

    #[test]
    fn base_graph_is_untouched_on_failure() {
        let g = diamond();
        let d = GraphDelta::new(vec![(0, 1)], vec![]); // duplicate
        assert!(d.apply(&g).is_err());
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn inverse_round_trips() {
        let g = diamond();
        let d = GraphDelta::new(vec![(0, 3), (3, 1)], vec![(0, 2)]);
        let edited = d.apply(&g).unwrap();
        let restored = d.inverse().apply(&edited).unwrap();
        assert_eq!(restored.node_count(), g.node_count());
        assert_eq!(restored.edge_count(), g.edge_count());
        for (u, v) in g.edges() {
            assert!(restored.has_edge(u, v));
        }
    }

    #[test]
    fn dag_application_rechecks_cycles() {
        let dag = Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let ok = GraphDelta::new(vec![(0, 2)], vec![]).apply_to_dag(&dag);
        assert_eq!(ok.unwrap().edge_count(), 3);
        let cycle = GraphDelta::new(vec![(2, 0)], vec![]).apply_to_dag(&dag);
        assert!(matches!(cycle, Err(DeltaError::CreatesCycle(_))));
    }

    #[test]
    fn compose_folds_two_edits_into_their_net_effect() {
        let g = diamond();
        // d1 removes (0,1) and adds (0,3); d2 re-adds (0,1) and removes
        // (0,3) again — the two cancel completely.
        let d1 = GraphDelta::new(vec![(0, 3)], vec![(0, 1)]);
        let d2 = GraphDelta::new(vec![(0, 1)], vec![(0, 3)]);
        let folded = d1.compose(&d2);
        assert!(folded.is_empty());
        let stepped = d2.apply(&d1.apply(&g).unwrap()).unwrap();
        assert_eq!(stepped.edge_count(), g.edge_count());

        // Non-cancelling edits survive, sorted.
        let d3 = GraphDelta::new(vec![(3, 1)], vec![(0, 2)]);
        let folded = d1.compose(&d3);
        assert_eq!(folded.added, vec![(0, 3), (3, 1)]);
        assert_eq!(folded.removed, vec![(0, 1), (0, 2)]);
        let via_compose = folded.apply(&g).unwrap();
        let via_steps = d3.apply(&d1.apply(&g).unwrap()).unwrap();
        assert_eq!(via_compose.edge_count(), via_steps.edge_count());
        for (u, v) in via_steps.edges() {
            assert!(via_compose.has_edge(u, v));
        }
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = diamond();
        let d = GraphDelta::default();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        let e = d.apply(&g).unwrap();
        assert_eq!(e.edge_count(), g.edge_count());
    }
}
