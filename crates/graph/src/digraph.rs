//! The core directed-graph container.
//!
//! [`DiGraph`] is a simple (no parallel edges, no self-loops) directed graph
//! stored as forward and reverse adjacency lists. It is the substrate the
//! paper obtained from LEDA's `GRAPH<int,int>`; everything above it (layering
//! algorithms, the ant colony, the Sugiyama stages) only needs the operations
//! provided here.
//!
//! Node payloads are deliberately *not* stored inside the graph: algorithms
//! keep side tables ([`NodeVec`](crate::NodeVec)) instead, which keeps the hot
//! adjacency data compact (structure-of-arrays layout).

use crate::{EdgeId, GraphError, NodeId};
use std::fmt;

/// A simple directed graph with dense `u32` node ids.
///
/// # Example
/// ```
/// use antlayer_graph::DiGraph;
///
/// let mut g = DiGraph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let c = g.add_node();
/// g.add_edge(a, b).unwrap();
/// g.add_edge(b, c).unwrap();
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.out_neighbors(a), &[b]);
/// assert_eq!(g.in_neighbors(c), &[b]);
/// ```
#[derive(Clone, Default)]
pub struct DiGraph {
    out_adj: Vec<Vec<NodeId>>,
    in_adj: Vec<Vec<NodeId>>,
    /// Edge list in insertion order; `edges[e] = (source, target)`.
    edges: Vec<(NodeId, NodeId)>,
}

impl DiGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph::default()
    }

    /// Creates an empty graph with capacity reserved for `nodes` nodes.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DiGraph {
            out_adj: Vec::with_capacity(nodes),
            in_adj: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.out_adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.out_adj.is_empty()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.out_adj.len());
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Adds `count` nodes, returning their ids in order.
    pub fn add_nodes(&mut self, count: usize) -> Vec<NodeId> {
        (0..count).map(|_| self.add_node()).collect()
    }

    /// Checks that `id` names a node of this graph.
    #[inline]
    fn check_node(&self, id: NodeId) -> Result<(), GraphError> {
        if id.index() < self.node_count() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfBounds {
                id,
                node_count: self.node_count(),
            })
        }
    }

    /// Adds the edge `(u, v)`.
    ///
    /// Rejects out-of-bounds endpoints, self-loops and duplicates. Returns
    /// the id of the new edge.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<EdgeId, GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if self.has_edge(u, v) {
            return Err(GraphError::DuplicateEdge(u, v));
        }
        let id = EdgeId::new(self.edges.len());
        self.out_adj[u.index()].push(v);
        self.in_adj[v.index()].push(u);
        self.edges.push((u, v));
        Ok(id)
    }

    /// Membership test for the edge `(u, v)`.
    ///
    /// Linear in `deg(u)`; adjacency lists of the sparse graphs this library
    /// targets are short, so a scan beats maintaining sorted lists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        match self.out_adj.get(u.index()) {
            Some(adj) => adj.contains(&v),
            None => false,
        }
    }

    /// Successors of `v` (targets of edges leaving `v`).
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.out_adj[v.index()]
    }

    /// Predecessors of `v` (sources of edges entering `v`).
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.in_adj[v.index()]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_adj[v.index()].len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_adj[v.index()].len()
    }

    /// Total degree (in + out) of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.in_degree(v) + self.out_degree(v)
    }

    /// Iterates over all node ids `0..n`.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterates over all edges as `(source, target)` pairs in insertion order.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = (NodeId, NodeId)> + Clone + '_ {
        self.edges.iter().copied()
    }

    /// The endpoints of edge `e`.
    pub fn edge_endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e.index()]
    }

    /// Nodes with no incoming edges.
    pub fn sources(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.in_degree(v) == 0).collect()
    }

    /// Nodes with no outgoing edges.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.out_degree(v) == 0).collect()
    }

    /// Nodes with no edges at all.
    pub fn isolated_nodes(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.degree(v) == 0).collect()
    }

    /// Builds a graph with `n` nodes from raw `(source, target)` index pairs.
    ///
    /// # Example
    /// ```
    /// use antlayer_graph::DiGraph;
    /// let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
    /// assert_eq!(g.edge_count(), 2);
    /// ```
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Result<Self, GraphError> {
        let mut g = DiGraph::with_capacity(n, edges.len());
        g.add_nodes(n);
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v))?;
        }
        Ok(g)
    }

    /// The reverse graph: every edge `(u, v)` becomes `(v, u)`.
    pub fn reversed(&self) -> DiGraph {
        let mut g = DiGraph::with_capacity(self.node_count(), self.edge_count());
        g.add_nodes(self.node_count());
        for (u, v) in self.edges() {
            g.add_edge(v, u)
                .expect("reversing a simple graph stays simple");
        }
        g
    }

    /// A copy keeping only the edges for which `keep` returns `true`.
    ///
    /// Node ids are preserved. This is the substrate's replacement for
    /// individual edge removal: edge ids stay dense and algorithms never see
    /// tombstones.
    pub fn filter_edges(&self, mut keep: impl FnMut(NodeId, NodeId) -> bool) -> DiGraph {
        let mut g = DiGraph::with_capacity(self.node_count(), self.edge_count());
        g.add_nodes(self.node_count());
        for (u, v) in self.edges() {
            if keep(u, v) {
                g.add_edge(u, v)
                    .expect("subset of a simple graph stays simple");
            }
        }
        g
    }

    /// The subgraph induced by `nodes`.
    ///
    /// Returns the new graph together with the mapping from old ids to new
    /// ids (entries for excluded nodes are `None`).
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (DiGraph, Vec<Option<NodeId>>) {
        let mut map: Vec<Option<NodeId>> = vec![None; self.node_count()];
        let mut g = DiGraph::with_capacity(nodes.len(), 0);
        for &v in nodes {
            assert!(map[v.index()].is_none(), "duplicate node in subgraph list");
            map[v.index()] = Some(g.add_node());
        }
        for (u, v) in self.edges() {
            if let (Some(nu), Some(nv)) = (map[u.index()], map[v.index()]) {
                g.add_edge(nu, nv)
                    .expect("subset of a simple graph stays simple");
            }
        }
        (g, map)
    }
}

impl fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DiGraph {{ nodes: {}, edges: {} }}",
            self.node_count(),
            self.edge_count()
        )?;
        for (u, v) in self.edges() {
            writeln!(f, "  {u} -> {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.nodes().count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn add_nodes_assigns_dense_ids() {
        let mut g = DiGraph::new();
        let ids = g.add_nodes(3);
        assert_eq!(ids.iter().map(|i| i.index()).collect::<Vec<_>>(), [0, 1, 2]);
    }

    #[test]
    fn adjacency_is_consistent() {
        let g = diamond();
        let n = |i| NodeId::new(i);
        assert_eq!(g.out_neighbors(n(0)), &[n(1), n(2)]);
        assert_eq!(g.in_neighbors(n(3)), &[n(1), n(2)]);
        assert_eq!(g.out_degree(n(0)), 2);
        assert_eq!(g.in_degree(n(0)), 0);
        assert_eq!(g.degree(n(1)), 2);
        assert!(g.has_edge(n(0), n(1)));
        assert!(!g.has_edge(n(1), n(0)));
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        assert_eq!(g.add_edge(a, a), Err(GraphError::SelfLoop(a)));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b).unwrap();
        assert_eq!(g.add_edge(a, b), Err(GraphError::DuplicateEdge(a, b)));
        // The reverse direction is a different edge and must be accepted.
        assert!(g.add_edge(b, a).is_ok());
    }

    #[test]
    fn rejects_out_of_bounds() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let ghost = NodeId::new(7);
        assert!(matches!(
            g.add_edge(a, ghost),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
    }

    #[test]
    fn from_edges_propagates_errors() {
        assert!(DiGraph::from_edges(2, &[(0, 0)]).is_err());
        assert!(DiGraph::from_edges(2, &[(0, 5)]).is_err());
        assert!(DiGraph::from_edges(2, &[(0, 1), (0, 1)]).is_err());
    }

    #[test]
    fn sources_sinks_isolated() {
        let mut g = diamond();
        let iso = g.add_node();
        assert_eq!(g.sources(), vec![NodeId::new(0), iso]);
        assert_eq!(g.sinks(), vec![NodeId::new(3), iso]);
        assert_eq!(g.isolated_nodes(), vec![iso]);
    }

    #[test]
    fn edge_ids_and_endpoints() {
        let g = diamond();
        assert_eq!(
            g.edge_endpoints(EdgeId::new(2)),
            (NodeId::new(1), NodeId::new(3))
        );
    }

    #[test]
    fn reversed_swaps_directions() {
        let g = diamond().reversed();
        let n = |i| NodeId::new(i);
        assert!(g.has_edge(n(1), n(0)));
        assert!(g.has_edge(n(3), n(2)));
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.sources(), vec![n(3)]);
    }

    #[test]
    fn filter_edges_keeps_ids() {
        let g = diamond();
        let n = |i| NodeId::new(i);
        let f = g.filter_edges(|u, _| u != n(0));
        assert_eq!(f.node_count(), 4);
        assert_eq!(f.edge_count(), 2);
        assert!(!f.has_edge(n(0), n(1)));
        assert!(f.has_edge(n(1), n(3)));
    }

    #[test]
    fn induced_subgraph_remaps_ids() {
        let g = diamond();
        let n = |i| NodeId::new(i);
        let (sub, map) = g.induced_subgraph(&[n(0), n(1), n(3)]);
        assert_eq!(sub.node_count(), 3);
        // Edges 0->1 and 1->3 survive; 0->2 and 2->3 drop.
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(map[n(2).index()], None);
        let n0 = map[n(0).index()].unwrap();
        let n1 = map[n(1).index()].unwrap();
        assert!(sub.has_edge(n0, n1));
    }

    #[test]
    fn debug_format_lists_edges() {
        let g = DiGraph::from_edges(2, &[(0, 1)]).unwrap();
        let s = format!("{g:?}");
        assert!(s.contains("nodes: 2"));
        assert!(s.contains("0 -> 1"));
    }
}
