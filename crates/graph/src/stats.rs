//! Descriptive statistics of a digraph, used by the dataset suite reports.

use crate::{topological_sort, weak_components, DiGraph};

/// Summary statistics of a directed graph.
#[derive(Clone, PartialEq, Debug)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
    /// Number of source nodes (in-degree 0).
    pub sources: usize,
    /// Number of sink nodes (out-degree 0).
    pub sinks: usize,
    /// Number of isolated nodes.
    pub isolated: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Mean total degree `2m / n` (0 for the empty graph).
    pub mean_degree: f64,
    /// Edges per node `m / n` (0 for the empty graph).
    pub edge_node_ratio: f64,
    /// Number of weakly connected components.
    pub weak_components: usize,
    /// Length in edges of the longest directed path, when acyclic.
    pub longest_path: Option<u32>,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn of(g: &DiGraph) -> GraphStats {
        let n = g.node_count();
        let m = g.edge_count();
        let longest_path = topological_sort(g)
            .ok()
            .map(|topo| crate::critical_path_length(g, &topo));
        GraphStats {
            nodes: n,
            edges: m,
            sources: g.sources().len(),
            sinks: g.sinks().len(),
            isolated: g.isolated_nodes().len(),
            max_out_degree: g.nodes().map(|v| g.out_degree(v)).max().unwrap_or(0),
            max_in_degree: g.nodes().map(|v| g.in_degree(v)).max().unwrap_or(0),
            mean_degree: if n == 0 {
                0.0
            } else {
                2.0 * m as f64 / n as f64
            },
            edge_node_ratio: if n == 0 { 0.0 } else { m as f64 / n as f64 },
            weak_components: weak_components(g).len(),
            longest_path,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_diamond() {
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.sources, 1);
        assert_eq!(s.sinks, 1);
        assert_eq!(s.isolated, 0);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 2);
        assert!((s.mean_degree - 2.0).abs() < 1e-12);
        assert_eq!(s.weak_components, 1);
        assert_eq!(s.longest_path, Some(2));
    }

    #[test]
    fn stats_of_empty() {
        let s = GraphStats::of(&DiGraph::new());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.mean_degree, 0.0);
        assert_eq!(s.longest_path, Some(0));
    }

    #[test]
    fn cyclic_graph_has_no_longest_path() {
        let g = DiGraph::from_edges(2, &[(0, 1), (1, 0)]).unwrap();
        assert_eq!(GraphStats::of(&g).longest_path, None);
    }
}
