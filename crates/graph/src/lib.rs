//! # antlayer-graph
//!
//! Directed-graph substrate for the `antlayer` project — a from-scratch
//! replacement for the slice of LEDA 5.0 that the IPPS 2007 ACO-layering
//! paper's implementation relied on.
//!
//! The crate provides:
//!
//! * [`DiGraph`] — a compact simple digraph with dense `u32` node ids and
//!   forward/reverse adjacency (structure-of-arrays: payloads live in
//!   [`NodeVec`] side tables, not inside the graph).
//! * [`Dag`] — a digraph whose acyclicity is proven at construction, carrying
//!   a cached topological order. All layering algorithms take a `Dag`.
//! * [`CsrView`] / [`Adjacency`] — a flat compressed-sparse-row snapshot of
//!   the adjacency (both directions) for cache-local hot loops, and the
//!   representation-agnostic neighbor-scan trait shared with `DiGraph`/`Dag`.
//! * [`GraphDelta`] — validated edge diffs (add/remove) with inverses, the
//!   substrate of the serving layer's incremental re-layout.
//! * Topological algorithms ([`topological_sort`], [`longest_path_to_sink`],
//!   …) and traversals ([`Bfs`], [`Dfs`], [`weak_components`]).
//! * Seeded random DAG [`generators`](generate) used by the benchmark suite.
//! * [`io::dot`] and [`io::gml`] readers/writers (GML is the format of the
//!   AT&T/Rome graphs the paper evaluated on).
//!
//! ## Quick start
//! ```
//! use antlayer_graph::{Dag, GraphStats};
//!
//! let dag = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
//! assert_eq!(GraphStats::of(&dag).longest_path, Some(2));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod acyclic;
mod csr;
mod delta;
mod digraph;
mod error;
pub mod generate;
mod id;
pub mod io;
mod scc;
mod stats;
mod topo;
mod traversal;

pub use acyclic::Dag;
pub use csr::{Adjacency, CsrView};
pub use delta::{DeltaError, GraphDelta};
pub use digraph::DiGraph;
pub use error::{GraphError, ParseError};
pub use id::{EdgeId, NodeId, NodeSet, NodeVec};
pub use scc::{condensation, strongly_connected_components};
pub use stats::GraphStats;
pub use topo::{
    critical_path_length, is_acyclic, longest_path_from_source, longest_path_to_sink,
    topological_sort,
};
pub use traversal::{is_weakly_connected, reachable_set, weak_components, Bfs, Dfs, Direction};
