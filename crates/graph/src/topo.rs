//! Topological algorithms: ordering, cycle detection, longest paths.

use crate::{DiGraph, GraphError, NodeId, NodeVec};

/// Computes a topological order of `g` with Kahn's algorithm.
///
/// Returns the nodes in an order where every edge points from an earlier to a
/// later node, or [`GraphError::Cycle`] naming the nodes of a strongly
/// connected remainder when `g` is cyclic. Runs in `O(V + E)`.
///
/// # Example
/// ```
/// use antlayer_graph::{DiGraph, topological_sort};
/// let g = DiGraph::from_edges(3, &[(2, 1), (1, 0)]).unwrap();
/// let order = topological_sort(&g).unwrap();
/// assert_eq!(order.iter().map(|n| n.index()).collect::<Vec<_>>(), [2, 1, 0]);
/// ```
pub fn topological_sort(g: &DiGraph) -> Result<Vec<NodeId>, GraphError> {
    let mut in_deg = NodeVec::from_fn(g.node_count(), |v| g.in_degree(v));
    let mut queue: Vec<NodeId> = g.nodes().filter(|&v| in_deg[v] == 0).collect();
    let mut order = Vec::with_capacity(g.node_count());
    // A plain stack keeps this O(V+E); the specific tie-breaking order is
    // irrelevant to callers (all downstream algorithms only need *a* valid
    // topological order).
    while let Some(v) = queue.pop() {
        order.push(v);
        for &w in g.out_neighbors(v) {
            in_deg[w] -= 1;
            if in_deg[w] == 0 {
                queue.push(w);
            }
        }
    }
    if order.len() == g.node_count() {
        Ok(order)
    } else {
        let leftovers: Vec<NodeId> = g.nodes().filter(|&v| in_deg[v] > 0).collect();
        Err(GraphError::Cycle(trim_to_cycle(g, leftovers)))
    }
}

/// Shrinks a set of nodes known to contain a cycle down to one concrete cycle,
/// so error messages point at an actual offending loop rather than the whole
/// cyclic core.
fn trim_to_cycle(g: &DiGraph, candidates: Vec<NodeId>) -> Vec<NodeId> {
    if candidates.is_empty() {
        return candidates;
    }
    let mut in_set = {
        let mut s = vec![false; g.node_count()];
        for &v in &candidates {
            s[v.index()] = true;
        }
        s
    };
    // The unprocessed remainder also contains acyclic appendages *downstream*
    // of cycles; peel nodes without a successor in the set (reverse Kahn)
    // until every remaining node can step forward, then walk to find a loop.
    let mut out_in_set = NodeVec::from_fn(g.node_count(), |v| {
        if in_set[v.index()] {
            g.out_neighbors(v)
                .iter()
                .filter(|w| in_set[w.index()])
                .count()
        } else {
            0
        }
    });
    let mut peel: Vec<NodeId> = candidates
        .iter()
        .copied()
        .filter(|&v| out_in_set[v] == 0)
        .collect();
    while let Some(v) = peel.pop() {
        in_set[v.index()] = false;
        for &u in g.in_neighbors(v) {
            if in_set[u.index()] {
                out_in_set[u] -= 1;
                if out_in_set[u] == 0 {
                    peel.push(u);
                }
            }
        }
    }
    let candidates: Vec<NodeId> = candidates
        .into_iter()
        .filter(|&v| v.index() < in_set.len() && in_set[v.index()])
        .collect();
    // Walk forward through the cyclic core; after at most n steps we must
    // revisit a node, and the walk since that node is a cycle.
    let mut seen_at: Vec<Option<usize>> = vec![None; g.node_count()];
    let mut walk = Vec::new();
    let mut cur = candidates[0];
    loop {
        if let Some(start) = seen_at[cur.index()] {
            return walk[start..].to_vec();
        }
        seen_at[cur.index()] = Some(walk.len());
        walk.push(cur);
        cur = *g
            .out_neighbors(cur)
            .iter()
            .find(|w| in_set[w.index()])
            .expect("every node of the cyclic core has a successor in the core");
    }
}

/// Whether `g` contains no directed cycle.
pub fn is_acyclic(g: &DiGraph) -> bool {
    topological_sort(g).is_ok()
}

/// Longest path lengths (in edges) from each node to any sink, following
/// edge directions.
///
/// `result[v] = 0` when `v` is a sink; otherwise
/// `result[v] = 1 + max over successors`. This is exactly the layer index
/// (0-based) that Longest-Path Layering assigns. `g` must be acyclic.
pub fn longest_path_to_sink(g: &DiGraph, topo: &[NodeId]) -> NodeVec<u32> {
    let mut dist = NodeVec::filled(0u32, g.node_count());
    // Process in reverse topological order so successors are final.
    for &v in topo.iter().rev() {
        for &w in g.out_neighbors(v) {
            dist[v] = dist[v].max(dist[w] + 1);
        }
    }
    dist
}

/// Longest path lengths (in edges) from any source to each node.
///
/// `result[v] = 0` when `v` is a source. `g` must be acyclic.
pub fn longest_path_from_source(g: &DiGraph, topo: &[NodeId]) -> NodeVec<u32> {
    let mut dist = NodeVec::filled(0u32, g.node_count());
    for &v in topo.iter() {
        for &w in g.out_neighbors(v) {
            dist[w] = dist[w].max(dist[v] + 1);
        }
    }
    dist
}

/// Length (in edges) of the longest directed path anywhere in the DAG.
pub fn critical_path_length(g: &DiGraph, topo: &[NodeId]) -> u32 {
    longest_path_to_sink(g, topo)
        .values()
        .copied()
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> DiGraph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        DiGraph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn topo_sort_chain() {
        let g = chain(5);
        let order = topological_sort(&g).unwrap();
        assert_eq!(
            order.iter().copied().map(NodeId::index).collect::<Vec<_>>(),
            [0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn topo_sort_respects_all_edges() {
        let g = DiGraph::from_edges(6, &[(0, 3), (1, 3), (2, 4), (3, 5), (4, 5)]).unwrap();
        let order = topological_sort(&g).unwrap();
        let pos = {
            let mut p = vec![0; 6];
            for (i, v) in order.iter().enumerate() {
                p[v.index()] = i;
            }
            p
        };
        for (u, v) in g.edges() {
            assert!(pos[u.index()] < pos[v.index()], "edge {u}->{v} violated");
        }
    }

    #[test]
    fn topo_sort_empty_graph() {
        assert!(topological_sort(&DiGraph::new()).unwrap().is_empty());
    }

    #[test]
    fn detects_two_cycle() {
        let g = DiGraph::from_edges(2, &[(0, 1), (1, 0)]).unwrap();
        match topological_sort(&g) {
            Err(GraphError::Cycle(nodes)) => assert_eq!(nodes.len(), 2),
            other => panic!("expected cycle, got {other:?}"),
        }
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn reported_cycle_is_a_real_cycle() {
        // Cyclic core 1->2->3->1 plus acyclic appendage 0->1, 3->4.
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 1), (3, 4)]).unwrap();
        let Err(GraphError::Cycle(cyc)) = topological_sort(&g) else {
            panic!("expected cycle");
        };
        assert!(cyc.len() >= 2);
        // Consecutive members (wrapping) must be connected by edges.
        for i in 0..cyc.len() {
            let u = cyc[i];
            let v = cyc[(i + 1) % cyc.len()];
            assert!(g.has_edge(u, v), "cycle witness broken at {u}->{v}");
        }
    }

    #[test]
    fn longest_paths_chain() {
        let g = chain(4);
        let topo = topological_sort(&g).unwrap();
        let to_sink = longest_path_to_sink(&g, &topo);
        assert_eq!(to_sink.as_slice(), &[3, 2, 1, 0]);
        let from_source = longest_path_from_source(&g, &topo);
        assert_eq!(from_source.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(critical_path_length(&g, &topo), 3);
    }

    #[test]
    fn longest_path_takes_max_branch() {
        // 0 -> 1 -> 2 -> 4 and 0 -> 3 -> 4: node 0 must see the long branch.
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 4), (0, 3), (3, 4)]).unwrap();
        let topo = topological_sort(&g).unwrap();
        let d = longest_path_to_sink(&g, &topo);
        assert_eq!(d[NodeId::new(0)], 3);
        assert_eq!(d[NodeId::new(3)], 1);
        assert_eq!(critical_path_length(&g, &topo), 3);
    }

    #[test]
    fn isolated_nodes_have_zero_lengths() {
        let mut g = DiGraph::new();
        g.add_nodes(3);
        let topo = topological_sort(&g).unwrap();
        assert_eq!(critical_path_length(&g, &topo), 0);
        assert_eq!(longest_path_to_sink(&g, &topo).as_slice(), &[0, 0, 0]);
    }
}
