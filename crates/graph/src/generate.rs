//! Seeded random DAG generators.
//!
//! All generators take an explicit `&mut impl Rng` so experiments are fully
//! reproducible from a seed. Every generator returns a validated [`Dag`].

use crate::{Dag, DiGraph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Random DAG in the `G(n, p)` style: nodes are placed in a random linear
/// order and each forward pair becomes an edge independently with
/// probability `p`.
///
/// The random order (rather than id order) removes the correlation between
/// node id and topological depth that would otherwise leak into algorithms
/// that iterate nodes in id order.
pub fn gnp_dag(n: usize, p: f64, rng: &mut impl Rng) -> Dag {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut g = DiGraph::with_capacity(n, (p * (n * n) as f64 / 2.0) as usize);
    g.add_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(NodeId(order[i]), NodeId(order[j]))
                    .expect("forward edges in an order are acyclic");
            }
        }
    }
    Dag::new(g).expect("construction is acyclic by design")
}

/// Random DAG with exactly `m` edges (or the maximum possible if `m` exceeds
/// `n·(n−1)/2`), sampled uniformly over forward pairs of a random order.
pub fn random_dag_with_edges(n: usize, m: usize, rng: &mut impl Rng) -> Dag {
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let max_m = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(max_m);
    let mut g = DiGraph::with_capacity(n, m);
    g.add_nodes(n);
    let mut added = 0usize;
    // Rejection sampling is fast while m is well below max_m (our suites are
    // sparse); fall back to exhaustive choice when the graph gets dense.
    let mut attempts = 0usize;
    while added < m {
        attempts += 1;
        if attempts > 20 * m + 100 {
            // Dense regime: enumerate the remaining free pairs and sample.
            let mut free: Vec<(u32, u32)> = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    if !g.has_edge(NodeId(order[i]), NodeId(order[j])) {
                        free.push((order[i], order[j]));
                    }
                }
            }
            free.shuffle(rng);
            for &(u, v) in free.iter().take(m - added) {
                g.add_edge(NodeId(u), NodeId(v)).unwrap();
            }
            break;
        }
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i == j {
            continue;
        }
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        if g.add_edge(NodeId(order[i]), NodeId(order[j])).is_ok() {
            added += 1;
        }
    }
    Dag::new(g).expect("construction is acyclic by design")
}

/// Random "layered" DAG: `n` nodes are spread over `n_layers` ranks and each
/// node (except those on the first rank) receives at least one incoming edge
/// from a strictly higher rank, plus extra edges with probability `p_extra`
/// per higher-ranked candidate within a window of `span_window` ranks.
///
/// This mimics the shape of real hierarchical graphs (call graphs, schedules)
/// where most edges connect nearby ranks.
pub fn layered_dag(
    n: usize,
    n_layers: usize,
    p_extra: f64,
    span_window: usize,
    rng: &mut impl Rng,
) -> Dag {
    assert!(n_layers >= 1, "need at least one layer");
    let mut g = DiGraph::with_capacity(n, n * 2);
    g.add_nodes(n);
    // rank[v] in 0..n_layers; rank 0 is the "top" (sources live there).
    let rank: Vec<usize> = (0..n)
        .map(|i| {
            if i < n_layers {
                i // guarantee no rank is empty
            } else {
                rng.gen_range(0..n_layers)
            }
        })
        .collect();
    let mut by_rank: Vec<Vec<u32>> = vec![Vec::new(); n_layers];
    for (v, &r) in rank.iter().enumerate() {
        by_rank[r].push(v as u32);
    }
    for (v, &r) in rank.iter().enumerate() {
        if r == 0 {
            continue;
        }
        // Mandatory parent from some higher rank within the window.
        let lo = r.saturating_sub(span_window.max(1));
        let parent_rank = rng.gen_range(lo..r);
        if let Some(&u) = by_rank[parent_rank].choose(rng) {
            let _ = g.add_edge(NodeId(u), NodeId(v as u32));
        }
        // Optional extras.
        for higher in &by_rank[lo..r] {
            for &u in higher {
                if rng.gen_bool(p_extra) {
                    let _ = g.add_edge(NodeId(u), NodeId(v as u32));
                }
            }
        }
    }
    Dag::new(g).expect("edges only go from higher to lower rank")
}

/// Random rooted out-tree: node `i > 0` gets exactly one parent drawn among
/// nodes `0..i`. Node 0 is the root.
pub fn random_tree(n: usize, rng: &mut impl Rng) -> Dag {
    let mut g = DiGraph::with_capacity(n, n.saturating_sub(1));
    g.add_nodes(n);
    for v in 1..n {
        let parent = rng.gen_range(0..v);
        g.add_edge(NodeId(parent as u32), NodeId(v as u32))
            .expect("parent id is smaller, acyclic");
    }
    Dag::new(g).expect("trees are acyclic")
}

/// Random two-terminal series-parallel DAG with roughly `n` nodes.
///
/// Starts from a single edge and repeatedly applies series or parallel
/// expansions. Parallel expansion duplicates an edge through a new node
/// (keeping the graph simple); series expansion subdivides an edge.
pub fn series_parallel_dag(n: usize, p_series: f64, rng: &mut impl Rng) -> Dag {
    assert!((0.0..=1.0).contains(&p_series));
    let mut g = DiGraph::new();
    let s = g.add_node();
    let t = g.add_node();
    let mut edges: Vec<(NodeId, NodeId)> = vec![(s, t)];
    g.add_edge(s, t).unwrap();
    while g.node_count() < n {
        let idx = rng.gen_range(0..edges.len());
        let (u, v) = edges[idx];
        let w = g.add_node();
        if rng.gen_bool(p_series) {
            // Series: u -> w -> v replaces u -> v. The old edge stays in the
            // graph-less edge list only; rebuild graph edges lazily instead:
            // we simply keep u->v and still add the subdivision, which keeps
            // the graph simple and series-parallel-ish while monotonically
            // growing; to stay faithful to SP structure we drop u->v.
            edges.swap_remove(idx);
            let _ = g.add_edge(u, w);
            let _ = g.add_edge(w, v);
            edges.push((u, w));
            edges.push((w, v));
        } else {
            // Parallel through a fresh node: u -> w -> v alongside u -> v.
            let _ = g.add_edge(u, w);
            let _ = g.add_edge(w, v);
            edges.push((u, w));
            edges.push((w, v));
        }
    }
    // Drop edges that were "replaced" by series expansions but kept in `g`:
    // rebuild from the tracked edge list for exact SP structure.
    let mut clean = DiGraph::with_capacity(g.node_count(), edges.len());
    clean.add_nodes(g.node_count());
    for &(u, v) in &edges {
        let _ = clean.add_edge(u, v);
    }
    Dag::new(clean).expect("series-parallel construction is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn gnp_produces_requested_nodes() {
        let dag = gnp_dag(30, 0.1, &mut rng(1));
        assert_eq!(dag.node_count(), 30);
    }

    #[test]
    fn gnp_extremes() {
        let empty = gnp_dag(10, 0.0, &mut rng(2));
        assert_eq!(empty.edge_count(), 0);
        let full = gnp_dag(10, 1.0, &mut rng(3));
        assert_eq!(full.edge_count(), 45); // complete DAG: n(n-1)/2
    }

    #[test]
    fn gnp_is_deterministic_per_seed() {
        let a = gnp_dag(20, 0.2, &mut rng(7));
        let b = gnp_dag(20, 0.2, &mut rng(7));
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn exact_edge_count() {
        let dag = random_dag_with_edges(25, 40, &mut rng(4));
        assert_eq!(dag.node_count(), 25);
        assert_eq!(dag.edge_count(), 40);
    }

    #[test]
    fn edge_count_clamped_to_max() {
        let dag = random_dag_with_edges(5, 1000, &mut rng(5));
        assert_eq!(dag.edge_count(), 10);
    }

    #[test]
    fn dense_request_falls_back_gracefully() {
        let dag = random_dag_with_edges(12, 60, &mut rng(6));
        assert_eq!(dag.edge_count(), 60);
    }

    #[test]
    fn layered_dag_every_nonroot_rank_connected() {
        let dag = layered_dag(40, 6, 0.05, 2, &mut rng(8));
        assert_eq!(dag.node_count(), 40);
        // At least n - n_layers mandatory edges (every node off rank 0 gets a parent,
        // modulo duplicate-suppression which is rare).
        assert!(dag.edge_count() >= 25, "edges = {}", dag.edge_count());
    }

    #[test]
    fn random_tree_shape() {
        let dag = random_tree(50, &mut rng(9));
        assert_eq!(dag.edge_count(), 49);
        // Exactly one source (the root).
        assert_eq!(dag.sources().len(), 1);
        for v in dag.nodes().skip(1) {
            assert_eq!(dag.in_degree(v), 1);
        }
    }

    #[test]
    fn series_parallel_two_terminals() {
        let dag = series_parallel_dag(30, 0.5, &mut rng(10));
        assert!(dag.node_count() >= 30);
        // s and t remain the unique source / sink.
        assert_eq!(dag.sources(), vec![NodeId::new(0)]);
        assert_eq!(dag.sinks(), vec![NodeId::new(1)]);
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(random_tree(1, &mut rng(11)).node_count(), 1);
        assert_eq!(gnp_dag(0, 0.5, &mut rng(12)).node_count(), 0);
        assert_eq!(layered_dag(1, 1, 0.1, 1, &mut rng(13)).node_count(), 1);
    }
}
