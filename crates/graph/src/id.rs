//! Compact, type-safe handles for graph entities.
//!
//! Nodes and edges are addressed by 32-bit indices ([`NodeId`], [`EdgeId`])
//! rather than `usize` so that hot, per-node tables stay small (see the
//! "Smaller Integers" guidance of the Rust Performance Book). The indices are
//! dense: a graph with `n` nodes uses exactly the ids `0..n`.

use std::fmt;

/// Identifier of a node inside one [`DiGraph`](crate::DiGraph).
///
/// Ids are dense indices assigned in insertion order; they are only
/// meaningful relative to the graph that created them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Largest representable id, used as a sentinel bound.
    pub const MAX: NodeId = NodeId(u32::MAX);

    /// Creates a node id from a raw index.
    ///
    /// Panics if `index` does not fit in 32 bits.
    #[inline]
    pub fn new(index: usize) -> Self {
        debug_assert!(index < u32::MAX as usize, "node index overflows u32");
        NodeId(index as u32)
    }

    /// The id as a `usize` index, suitable for indexing side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw 32-bit value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identifier of an edge inside one [`DiGraph`](crate::DiGraph).
///
/// Edge ids are assigned densely in insertion order and remain stable for the
/// lifetime of the graph (edges cannot be removed individually; build a new
/// graph via [`DiGraph::filter_edges`](crate::DiGraph::filter_edges) instead).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// Creates an edge id from a raw index.
    #[inline]
    pub fn new(index: usize) -> Self {
        debug_assert!(index < u32::MAX as usize, "edge index overflows u32");
        EdgeId(index as u32)
    }

    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A dense table keyed by [`NodeId`].
///
/// A thin wrapper over `Vec<T>` that only accepts `NodeId` indices, keeping
/// node-keyed side data (layer assignments, widths, marks…) type-safe without
/// hashing.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct NodeVec<T> {
    data: Vec<T>,
}

impl<T> NodeVec<T> {
    /// An empty table.
    pub fn new() -> Self {
        NodeVec { data: Vec::new() }
    }

    /// A table of `n` entries, each initialised to `value`.
    pub fn filled(value: T, n: usize) -> Self
    where
        T: Clone,
    {
        NodeVec {
            data: vec![value; n],
        }
    }

    /// Builds the table by evaluating `f` on every id `0..n`.
    pub fn from_fn(n: usize, mut f: impl FnMut(NodeId) -> T) -> Self {
        NodeVec {
            data: (0..n).map(|i| f(NodeId::new(i))).collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends an entry for the next node id and returns that id.
    pub fn push(&mut self, value: T) -> NodeId {
        let id = NodeId::new(self.data.len());
        self.data.push(value);
        id
    }

    /// Iterates over `(id, &value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &T)> {
        self.data
            .iter()
            .enumerate()
            .map(|(i, v)| (NodeId::new(i), v))
    }

    /// Iterates over the raw values in id order.
    pub fn values(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Mutable iteration over the raw values in id order.
    pub fn values_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.data.iter_mut()
    }

    /// Borrows the underlying slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

impl<T> std::ops::Index<NodeId> for NodeVec<T> {
    type Output = T;
    #[inline]
    fn index(&self, id: NodeId) -> &T {
        &self.data[id.index()]
    }
}

impl<T> std::ops::IndexMut<NodeId> for NodeVec<T> {
    #[inline]
    fn index_mut(&mut self, id: NodeId) -> &mut T {
        &mut self.data[id.index()]
    }
}

impl<T> FromIterator<T> for NodeVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        NodeVec {
            data: iter.into_iter().collect(),
        }
    }
}

/// A fixed-capacity bit set over node ids.
///
/// Used for reachability and visited marks where a `HashSet<NodeId>` would
/// waste both space and hashing time.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NodeSet {
    words: Vec<u64>,
    capacity: usize,
}

impl NodeSet {
    /// An empty set able to hold ids `0..n`.
    pub fn with_capacity(n: usize) -> Self {
        NodeSet {
            words: vec![0; n.div_ceil(64)],
            capacity: n,
        }
    }

    /// Capacity (the `n` this set was created with).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `id`; returns `true` if it was not yet present.
    #[inline]
    pub fn insert(&mut self, id: NodeId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        assert!(id.index() < self.capacity, "NodeSet index out of range");
        let missing = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        missing
    }

    /// Removes `id`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, id: NodeId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        assert!(id.index() < self.capacity, "NodeSet index out of range");
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        if id.index() >= self.capacity {
            return false;
        }
        let (w, b) = (id.index() / 64, id.index() % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all members, keeping the capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterates over members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(NodeId::new(wi * 64 + b))
                }
            })
        })
    }

    /// In-place union with `other` (capacities must match).
    pub fn union_with(&mut self, other: &NodeSet) {
        assert_eq!(self.capacity, other.capacity, "NodeSet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.raw(), 42);
        assert_eq!(format!("{id}"), "42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    fn edge_id_roundtrip() {
        let id = EdgeId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id:?}"), "e7");
    }

    #[test]
    fn node_ids_order_like_indices() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::from(3u32), NodeId::new(3));
    }

    #[test]
    fn node_vec_indexing_and_iteration() {
        let mut v = NodeVec::filled(0i32, 3);
        v[NodeId::new(1)] = 5;
        assert_eq!(v[NodeId::new(1)], 5);
        assert_eq!(v.len(), 3);
        let pairs: Vec<_> = v.iter().map(|(id, &x)| (id.index(), x)).collect();
        assert_eq!(pairs, vec![(0, 0), (1, 5), (2, 0)]);
    }

    #[test]
    fn node_vec_push_assigns_sequential_ids() {
        let mut v = NodeVec::new();
        assert_eq!(v.push("a").index(), 0);
        assert_eq!(v.push("b").index(), 1);
        assert_eq!(v.as_slice(), &["a", "b"]);
    }

    #[test]
    fn node_vec_from_fn() {
        let v = NodeVec::from_fn(4, |id| id.index() * 2);
        assert_eq!(v.as_slice(), &[0, 2, 4, 6]);
    }

    #[test]
    fn node_set_insert_remove_contains() {
        let mut s = NodeSet::with_capacity(130);
        assert!(s.insert(NodeId::new(0)));
        assert!(s.insert(NodeId::new(64)));
        assert!(s.insert(NodeId::new(129)));
        assert!(!s.insert(NodeId::new(64)), "double insert reports false");
        assert_eq!(s.len(), 3);
        assert!(s.contains(NodeId::new(129)));
        assert!(!s.contains(NodeId::new(1)));
        assert!(s.remove(NodeId::new(64)));
        assert!(!s.remove(NodeId::new(64)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn node_set_iterates_in_order() {
        let mut s = NodeSet::with_capacity(200);
        for i in [199, 3, 64, 65, 0] {
            s.insert(NodeId::new(i));
        }
        let ids: Vec<_> = s.iter().map(NodeId::index).collect();
        assert_eq!(ids, vec![0, 3, 64, 65, 199]);
    }

    #[test]
    fn node_set_union() {
        let mut a = NodeSet::with_capacity(10);
        let mut b = NodeSet::with_capacity(10);
        a.insert(NodeId::new(1));
        b.insert(NodeId::new(2));
        a.union_with(&b);
        assert!(a.contains(NodeId::new(1)) && a.contains(NodeId::new(2)));
    }

    #[test]
    fn node_set_clear() {
        let mut s = NodeSet::with_capacity(10);
        s.insert(NodeId::new(5));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 10);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = NodeSet::with_capacity(4);
        assert!(!s.contains(NodeId::new(1000)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        let mut s = NodeSet::with_capacity(4);
        s.insert(NodeId::new(64));
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn union_capacity_mismatch_panics() {
        let mut a = NodeSet::with_capacity(4);
        let b = NodeSet::with_capacity(8);
        a.union_with(&b);
    }

    #[test]
    fn node_vec_values_mut_iterates_in_order() {
        let mut v = NodeVec::filled(1i32, 3);
        for (i, x) in v.values_mut().enumerate() {
            *x += i as i32;
        }
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        assert!(!v.is_empty());
        assert!(NodeVec::<i32>::new().is_empty());
    }
}
