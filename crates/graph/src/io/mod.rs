//! Textual graph formats.
//!
//! * [`dot`] — a practical subset of Graphviz DOT (what `antlayer` emits and
//!   what typical hand-written digraph files contain).
//! * [`gml`] — the GML dialect used by the AT&T/Rome benchmark graphs of
//!   graphdrawing.org, which the paper's evaluation is based on.

pub mod dot;
pub mod gml;
