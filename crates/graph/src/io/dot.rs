//! Graphviz DOT reading and writing (directed graphs, subset).
//!
//! Supported input grammar (a pragmatic subset of DOT):
//!
//! ```text
//! digraph NAME? {
//!     stmt*            // statements, optionally ';'-terminated
//! }
//! stmt := node_id (-> node_id)* attr_list?
//!       | node_id attr_list?           // bare node declaration
//! node_id := identifier | "quoted string" | number
//! attr_list := '[' ... ']'             // attributes are skipped
//! ```
//!
//! Comments (`//…`, `#…`, `/*…*/`) are ignored. Node names are arbitrary
//! strings; they are assigned dense [`NodeId`]s in order of first appearance.

use crate::{DiGraph, GraphError, NodeId, ParseError};
use std::collections::HashMap;
use std::fmt::Write as _;

/// A digraph plus the node names it was parsed with.
#[derive(Clone, Debug)]
pub struct NamedGraph {
    /// The structure.
    pub graph: DiGraph,
    /// `names[v]` is the DOT identifier of node `v`.
    pub names: Vec<String>,
}

impl NamedGraph {
    /// Looks up a node by name (linear scan; parsing keeps its own map).
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.names.iter().position(|n| n == name).map(NodeId::new)
    }
}

/// Serialises `g` to DOT. `name(v)` provides node labels.
pub fn write_dot(g: &DiGraph, mut name: impl FnMut(NodeId) -> String) -> String {
    let mut out = String::with_capacity(32 + 16 * g.edge_count());
    out.push_str("digraph G {\n");
    for v in g.nodes() {
        let _ = writeln!(out, "  \"{}\";", escape(&name(v)));
    }
    for (u, v) in g.edges() {
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\";",
            escape(&name(u)),
            escape(&name(v))
        );
    }
    out.push_str("}\n");
    out
}

/// Serialises `g` to DOT with nodes labelled by their numeric id.
pub fn write_dot_ids(g: &DiGraph) -> String {
    write_dot(g, |v| v.index().to_string())
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[derive(Clone, PartialEq, Debug)]
enum Tok {
    Ident(String),
    Arrow,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Equals,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.line, self.col, msg)
    }

    fn bump(&mut self) -> Option<u8> {
        let c = *self.src.get(self.pos)?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'#') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') => match self.src.get(self.pos + 1) {
                    Some(b'/') => {
                        while let Some(c) = self.bump() {
                            if c == b'\n' {
                                break;
                            }
                        }
                    }
                    Some(b'*') => {
                        self.bump();
                        self.bump();
                        loop {
                            match self.bump() {
                                Some(b'*') if self.peek() == Some(b'/') => {
                                    self.bump();
                                    break;
                                }
                                Some(_) => {}
                                None => return Err(self.error("unterminated block comment")),
                            }
                        }
                    }
                    _ => return Ok(()),
                },
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Option<(Tok, usize, usize)>, ParseError> {
        self.skip_trivia()?;
        let (line, col) = (self.line, self.col);
        let Some(c) = self.peek() else {
            return Ok(None);
        };
        let tok = match c {
            b'{' => {
                self.bump();
                Tok::LBrace
            }
            b'}' => {
                self.bump();
                Tok::RBrace
            }
            b'[' => {
                self.bump();
                Tok::LBracket
            }
            b']' => {
                self.bump();
                Tok::RBracket
            }
            b';' => {
                self.bump();
                Tok::Semi
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b'=' => {
                self.bump();
                Tok::Equals
            }
            b'-' => {
                self.bump();
                match self.bump() {
                    Some(b'>') => Tok::Arrow,
                    _ => return Err(ParseError::new(line, col, "expected '->'")),
                }
            }
            b'"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'"') => break,
                        Some(b'\\') => match self.bump() {
                            Some(c2) => s.push(c2 as char),
                            None => return Err(self.error("unterminated string")),
                        },
                        Some(c2) => s.push(c2 as char),
                        None => return Err(self.error("unterminated string")),
                    }
                }
                Tok::Ident(s)
            }
            c if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' => {
                let mut s = String::new();
                while let Some(c2) = self.peek() {
                    if c2.is_ascii_alphanumeric() || c2 == b'_' || c2 == b'.' {
                        s.push(c2 as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Tok::Ident(s)
            }
            other => {
                return Err(ParseError::new(
                    line,
                    col,
                    format!("unexpected character '{}'", other as char),
                ))
            }
        };
        Ok(Some((tok, line, col)))
    }
}

/// Parses a DOT digraph (see module docs for the supported subset).
pub fn parse_dot(src: &str) -> Result<NamedGraph, GraphError> {
    let mut lx = Lexer::new(src);
    let mut toks = Vec::new();
    while let Some(t) = lx.next_token()? {
        toks.push(t);
    }
    let mut i = 0usize;
    let expect_ident = |toks: &[(Tok, usize, usize)], i: &mut usize, what: &str| match toks.get(*i)
    {
        Some((Tok::Ident(s), _, _)) => {
            *i += 1;
            Ok(s.clone())
        }
        Some((_, l, c)) => Err(ParseError::new(*l, *c, format!("expected {what}"))),
        None => Err(ParseError::new(0, 0, format!("expected {what}, got EOF"))),
    };

    // Header: digraph NAME? {
    let kw = expect_ident(&toks, &mut i, "'digraph'")?;
    if kw != "digraph" {
        return Err(ParseError::new(1, 1, "only 'digraph' inputs are supported").into());
    }
    if matches!(toks.get(i), Some((Tok::Ident(_), _, _))) {
        i += 1; // optional graph name
    }
    match toks.get(i) {
        Some((Tok::LBrace, _, _)) => i += 1,
        Some((_, l, c)) => return Err(ParseError::new(*l, *c, "expected '{'").into()),
        None => return Err(ParseError::new(0, 0, "expected '{', got EOF").into()),
    }

    let mut graph = DiGraph::new();
    let mut names: Vec<String> = Vec::new();
    let mut by_name: HashMap<String, NodeId> = HashMap::new();
    let intern = |graph: &mut DiGraph,
                  names: &mut Vec<String>,
                  by_name: &mut HashMap<String, NodeId>,
                  name: String| {
        *by_name.entry(name.clone()).or_insert_with(|| {
            names.push(name);
            graph.add_node()
        })
    };
    let skip_attrs = |toks: &[(Tok, usize, usize)], i: &mut usize| -> Result<(), ParseError> {
        if matches!(toks.get(*i), Some((Tok::LBracket, _, _))) {
            let mut depth = 0usize;
            loop {
                match toks.get(*i) {
                    Some((Tok::LBracket, _, _)) => {
                        depth += 1;
                        *i += 1;
                    }
                    Some((Tok::RBracket, _, _)) => {
                        depth -= 1;
                        *i += 1;
                        if depth == 0 {
                            return Ok(());
                        }
                    }
                    Some((_, _, _)) => *i += 1,
                    None => return Err(ParseError::new(0, 0, "unterminated attribute list")),
                }
            }
        }
        Ok(())
    };

    // Anonymous subgraph blocks `{ ... }` (e.g. rank=same groups) share the
    // enclosing graph's namespace; we only track nesting depth.
    let mut depth = 0usize;
    loop {
        match toks.get(i) {
            Some((Tok::RBrace, _, _)) => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
                i += 1;
            }
            Some((Tok::LBrace, _, _)) => {
                depth += 1;
                i += 1;
            }
            Some((Tok::Semi, _, _)) => {
                i += 1;
            }
            Some((Tok::Ident(name), _, _)) => {
                // Skip graph-level attribute statements: ident = ident.
                if matches!(toks.get(i + 1), Some((Tok::Equals, _, _))) {
                    i += 2;
                    expect_ident(&toks, &mut i, "attribute value")?;
                    continue;
                }
                let mut prev = intern(&mut graph, &mut names, &mut by_name, name.clone());
                i += 1;
                skip_attrs(&toks, &mut i)?;
                while matches!(toks.get(i), Some((Tok::Arrow, _, _))) {
                    i += 1;
                    let next_name = expect_ident(&toks, &mut i, "node after '->'")?;
                    let next = intern(&mut graph, &mut names, &mut by_name, next_name);
                    skip_attrs(&toks, &mut i)?;
                    // Tolerate repeated edges in the input (DOT multigraphs):
                    // the substrate stores simple digraphs.
                    match graph.add_edge(prev, next) {
                        Ok(_) | Err(GraphError::DuplicateEdge(..)) => {}
                        Err(e) => return Err(e),
                    }
                    prev = next;
                }
            }
            Some((_, l, c)) => {
                return Err(ParseError::new(*l, *c, "expected statement or '}'").into())
            }
            None => return Err(ParseError::new(0, 0, "missing closing '}'").into()),
        }
    }
    Ok(NamedGraph { graph, names })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_digraph() {
        let g = parse_dot("digraph { a -> b; b -> c; }").unwrap();
        assert_eq!(g.graph.node_count(), 3);
        assert_eq!(g.graph.edge_count(), 2);
        assert_eq!(g.names, vec!["a", "b", "c"]);
    }

    #[test]
    fn parses_chains_and_reuses_nodes() {
        let g = parse_dot("digraph X { a -> b -> c a -> c }").unwrap();
        assert_eq!(g.graph.node_count(), 3);
        assert_eq!(g.graph.edge_count(), 3);
        let a = g.node_by_name("a").unwrap();
        let c = g.node_by_name("c").unwrap();
        assert!(g.graph.has_edge(a, c));
    }

    #[test]
    fn parses_quoted_names_and_attrs() {
        let src = r#"
            digraph {
                rankdir = TB;
                "node one" [shape=box, label="N 1"];
                "node one" -> x [weight=2];
            }
        "#;
        let g = parse_dot(src).unwrap();
        assert_eq!(g.graph.node_count(), 2);
        assert!(g.node_by_name("node one").is_some());
    }

    #[test]
    fn ignores_comments() {
        let src = "digraph { // line\n# hash\n/* block */ a -> b }";
        let g = parse_dot(src).unwrap();
        assert_eq!(g.graph.edge_count(), 1);
    }

    #[test]
    fn anonymous_subgraph_blocks_share_the_namespace() {
        let src = r#"digraph {
            { rank=same; a; b; }
            { rank=same; c; }
            a -> c; b -> c;
        }"#;
        let g = parse_dot(src).unwrap();
        assert_eq!(g.graph.node_count(), 3);
        assert_eq!(g.graph.edge_count(), 2);
        // Nested blocks are fine too.
        let nested = parse_dot("digraph { { { x -> y } } }").unwrap();
        assert_eq!(nested.graph.edge_count(), 1);
    }

    #[test]
    fn unterminated_subgraph_is_an_error() {
        assert!(parse_dot("digraph { { a ").is_err());
    }

    #[test]
    fn duplicate_edges_are_tolerated() {
        let g = parse_dot("digraph { a -> b; a -> b; }").unwrap();
        assert_eq!(g.graph.edge_count(), 1);
    }

    #[test]
    fn rejects_undirected_graph() {
        assert!(parse_dot("graph { a -- b }").is_err());
    }

    #[test]
    fn rejects_garbage_with_position() {
        let err = parse_dot("digraph { a -> }").unwrap_err();
        let GraphError::Parse(p) = err else {
            panic!("expected parse error")
        };
        assert!(p.message.contains("node after '->'"), "{p}");
    }

    #[test]
    fn rejects_unterminated() {
        assert!(parse_dot("digraph { a -> b").is_err());
        assert!(parse_dot("digraph { \"abc }").is_err());
    }

    #[test]
    fn roundtrip_write_then_parse() {
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (2, 3)]).unwrap();
        let dot = write_dot_ids(&g);
        let parsed = parse_dot(&dot).unwrap();
        assert_eq!(parsed.graph.node_count(), 4);
        assert_eq!(parsed.graph.edge_count(), 3);
        // Names are ids, so structure must match exactly after renumbering.
        for (u, v) in g.edges() {
            let pu = parsed.node_by_name(&u.index().to_string()).unwrap();
            let pv = parsed.node_by_name(&v.index().to_string()).unwrap();
            assert!(parsed.graph.has_edge(pu, pv));
        }
    }

    #[test]
    fn write_escapes_quotes() {
        let mut g = DiGraph::new();
        g.add_node();
        let dot = write_dot(&g, |_| "we \"quote\"".to_string());
        assert!(dot.contains("\\\""));
        assert!(parse_dot(&dot).is_ok());
    }

    #[test]
    fn self_loop_in_input_is_error() {
        assert!(parse_dot("digraph { a -> a }").is_err());
    }
}
