//! GML (Graph Modelling Language) reading and writing.
//!
//! This is the format of the AT&T / Rome graphs from graphdrawing.org that
//! the paper's evaluation used. Supported structure:
//!
//! ```text
//! graph [
//!   directed 1
//!   node [ id 3 label "..." ... ]
//!   edge [ source 3 target 5 ... ]
//! ]
//! ```
//!
//! Unknown keys and nested sections are skipped. Node `id`s may be arbitrary
//! integers; they are mapped to dense [`NodeId`]s in order of appearance.

use crate::{DiGraph, GraphError, NodeId, ParseError};
use std::collections::HashMap;
use std::fmt::Write as _;

/// A graph parsed from GML: structure plus original ids/labels.
#[derive(Clone, Debug)]
pub struct GmlGraph {
    /// The structure.
    pub graph: DiGraph,
    /// `original_ids[v]` is the GML `id` of node `v`.
    pub original_ids: Vec<i64>,
    /// `labels[v]` is the GML `label` of node `v` (empty when absent).
    pub labels: Vec<String>,
    /// Whether the file declared `directed 1`.
    pub directed: bool,
}

/// Serialises a graph to GML, labelling nodes with `label(v)`.
pub fn write_gml(g: &DiGraph, mut label: impl FnMut(NodeId) -> String) -> String {
    let mut out = String::with_capacity(64 + 32 * (g.node_count() + g.edge_count()));
    out.push_str("graph [\n  directed 1\n");
    for v in g.nodes() {
        let _ = writeln!(
            out,
            "  node [\n    id {}\n    label \"{}\"\n  ]",
            v.index(),
            label(v).replace('"', "'")
        );
    }
    for (u, v) in g.edges() {
        let _ = writeln!(
            out,
            "  edge [\n    source {}\n    target {}\n  ]",
            u.index(),
            v.index()
        );
    }
    out.push_str("]\n");
    out
}

#[derive(Clone, PartialEq, Debug)]
enum Tok {
    Key(String),
    Int(i64),
    Real(f64),
    Str(String),
    LBracket,
    RBracket,
}

fn tokenize(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let bytes = src.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'[' => {
                toks.push((Tok::LBracket, line));
                i += 1;
            }
            b']' => {
                toks.push((Tok::RBracket, line));
                i += 1;
            }
            b'"' => {
                i += 1;
                let start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(ParseError::new(line, 1, "unterminated string"));
                }
                toks.push((Tok::Str(src[start..i].to_string()), line));
                i += 1;
            }
            c if c == b'-' || c == b'+' || c.is_ascii_digit() => {
                let start = i;
                i += 1;
                let mut is_real = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || bytes[i] == b'-'
                        || bytes[i] == b'+')
                {
                    if bytes[i] == b'.' || bytes[i] == b'e' || bytes[i] == b'E' {
                        is_real = true;
                    }
                    i += 1;
                }
                let text = &src[start..i];
                if is_real {
                    let v = text
                        .parse::<f64>()
                        .map_err(|_| ParseError::new(line, 1, format!("bad number '{text}'")))?;
                    toks.push((Tok::Real(v), line));
                } else {
                    let v = text
                        .parse::<i64>()
                        .map_err(|_| ParseError::new(line, 1, format!("bad integer '{text}'")))?;
                    toks.push((Tok::Int(v), line));
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push((Tok::Key(src[start..i].to_string()), line));
            }
            other => {
                return Err(ParseError::new(
                    line,
                    1,
                    format!("unexpected character '{}'", other as char),
                ))
            }
        }
    }
    Ok(toks)
}

/// Skips one value (scalar or bracketed section) starting at `*i`.
fn skip_value(toks: &[(Tok, usize)], i: &mut usize) -> Result<(), ParseError> {
    match toks.get(*i) {
        Some((Tok::LBracket, _)) => {
            *i += 1;
            let mut depth = 1usize;
            while depth > 0 {
                match toks.get(*i) {
                    Some((Tok::LBracket, _)) => depth += 1,
                    Some((Tok::RBracket, _)) => depth -= 1,
                    Some(_) => {}
                    None => return Err(ParseError::new(0, 0, "unterminated section")),
                }
                *i += 1;
            }
            Ok(())
        }
        Some(_) => {
            *i += 1;
            Ok(())
        }
        None => Err(ParseError::new(0, 0, "expected value, got EOF")),
    }
}

#[derive(Default)]
struct NodeRec {
    id: Option<i64>,
    label: String,
}

#[derive(Default)]
struct EdgeRec {
    source: Option<i64>,
    target: Option<i64>,
}

/// Parses a GML graph file.
///
/// Undirected files (`directed 0` or absent) are accepted; edge direction is
/// then taken from source→target order, which matches how the Rome test
/// suite is used for layering experiments.
pub fn parse_gml(src: &str) -> Result<GmlGraph, GraphError> {
    let toks = tokenize(src)?;
    let mut i = 0usize;
    // find `graph [`
    loop {
        match toks.get(i) {
            Some((Tok::Key(k), _)) if k == "graph" => {
                i += 1;
                break;
            }
            Some(_) => i += 1,
            None => return Err(ParseError::new(0, 0, "no 'graph [' section found").into()),
        }
    }
    match toks.get(i) {
        Some((Tok::LBracket, _)) => i += 1,
        _ => return Err(ParseError::new(0, 0, "expected '[' after 'graph'").into()),
    }

    let mut directed = false;
    let mut nodes: Vec<NodeRec> = Vec::new();
    let mut edges: Vec<EdgeRec> = Vec::new();

    while let Some((tok, line)) = toks.get(i) {
        match tok {
            Tok::RBracket => {
                break;
            }
            Tok::Key(k) if k == "directed" => {
                i += 1;
                if let Some((Tok::Int(v), _)) = toks.get(i) {
                    directed = *v != 0;
                    i += 1;
                } else {
                    return Err(ParseError::new(*line, 1, "expected 0/1 after 'directed'").into());
                }
            }
            Tok::Key(k) if k == "node" => {
                i += 1;
                let mut rec = NodeRec::default();
                parse_section(&toks, &mut i, |key, val| match (key, val) {
                    ("id", Val::Int(v)) => rec.id = Some(v),
                    ("label", Val::Str(s)) => rec.label = s,
                    _ => {}
                })?;
                nodes.push(rec);
            }
            Tok::Key(k) if k == "edge" => {
                i += 1;
                let mut rec = EdgeRec::default();
                parse_section(&toks, &mut i, |key, val| match (key, val) {
                    ("source", Val::Int(v)) => rec.source = Some(v),
                    ("target", Val::Int(v)) => rec.target = Some(v),
                    _ => {}
                })?;
                edges.push(rec);
            }
            Tok::Key(_) => {
                i += 1;
                skip_value(&toks, &mut i)?;
            }
            _ => return Err(ParseError::new(*line, 1, "expected key or ']'").into()),
        }
    }

    let mut graph = DiGraph::with_capacity(nodes.len(), edges.len());
    let mut original_ids = Vec::with_capacity(nodes.len());
    let mut labels = Vec::with_capacity(nodes.len());
    let mut by_gml_id: HashMap<i64, NodeId> = HashMap::new();
    for rec in nodes {
        let gml_id = rec
            .id
            .ok_or_else(|| ParseError::new(0, 0, "node without id"))?;
        if by_gml_id.contains_key(&gml_id) {
            return Err(ParseError::new(0, 0, format!("duplicate node id {gml_id}")).into());
        }
        let v = graph.add_node();
        by_gml_id.insert(gml_id, v);
        original_ids.push(gml_id);
        labels.push(rec.label);
    }
    for rec in edges {
        let s = rec
            .source
            .ok_or_else(|| ParseError::new(0, 0, "edge without source"))?;
        let t = rec
            .target
            .ok_or_else(|| ParseError::new(0, 0, "edge without target"))?;
        let (Some(&u), Some(&v)) = (by_gml_id.get(&s), by_gml_id.get(&t)) else {
            return Err(
                ParseError::new(0, 0, format!("edge refers to unknown node {s} or {t}")).into(),
            );
        };
        match graph.add_edge(u, v) {
            Ok(_) | Err(GraphError::DuplicateEdge(..)) => {}
            Err(GraphError::SelfLoop(_)) => {} // tolerated in inputs, dropped
            Err(e) => return Err(e),
        }
    }
    Ok(GmlGraph {
        graph,
        original_ids,
        labels,
        directed,
    })
}

enum Val {
    Int(i64),
    Str(String),
}

/// Parses a `[ key value ... ]` section, calling `on_kv` for scalar pairs.
fn parse_section(
    toks: &[(Tok, usize)],
    i: &mut usize,
    mut on_kv: impl FnMut(&str, Val),
) -> Result<(), ParseError> {
    match toks.get(*i) {
        Some((Tok::LBracket, _)) => *i += 1,
        Some((_, line)) => return Err(ParseError::new(*line, 1, "expected '['")),
        None => return Err(ParseError::new(0, 0, "expected '[', got EOF")),
    }
    loop {
        match toks.get(*i) {
            Some((Tok::RBracket, _)) => {
                *i += 1;
                return Ok(());
            }
            Some((Tok::Key(k), _)) => {
                *i += 1;
                match toks.get(*i) {
                    Some((Tok::Int(v), _)) => {
                        on_kv(k, Val::Int(*v));
                        *i += 1;
                    }
                    Some((Tok::Real(_), _)) => {
                        *i += 1;
                    }
                    Some((Tok::Str(s), _)) => {
                        on_kv(k, Val::Str(s.clone()));
                        *i += 1;
                    }
                    Some((Tok::LBracket, _)) => skip_value(toks, i)?,
                    Some((_, line)) => return Err(ParseError::new(*line, 1, "expected value")),
                    None => return Err(ParseError::new(0, 0, "expected value, got EOF")),
                }
            }
            Some((_, line)) => return Err(ParseError::new(*line, 1, "expected key or ']'")),
            None => return Err(ParseError::new(0, 0, "unterminated section")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# a Rome-like file
graph [
  directed 1
  node [ id 10 label "a" ]
  node [ id 20 label "b" graphics [ x 1.5 y 2.5 ] ]
  node [ id 30 ]
  edge [ source 10 target 20 ]
  edge [ source 20 target 30 label "e" ]
]
"#;

    #[test]
    fn parses_nodes_edges_labels() {
        let g = parse_gml(SAMPLE).unwrap();
        assert!(g.directed);
        assert_eq!(g.graph.node_count(), 3);
        assert_eq!(g.graph.edge_count(), 2);
        assert_eq!(g.original_ids, vec![10, 20, 30]);
        assert_eq!(g.labels[0], "a");
        assert_eq!(g.labels[2], "");
    }

    #[test]
    fn skips_nested_unknown_sections() {
        let g = parse_gml(SAMPLE).unwrap();
        // graphics [...] inside node 20 must not derail parsing.
        assert_eq!(g.original_ids[1], 20);
    }

    #[test]
    fn arbitrary_ids_are_remapped_densely() {
        let src = "graph [ node [ id 1000 ] node [ id -5 ] edge [ source 1000 target -5 ] ]";
        let g = parse_gml(src).unwrap();
        assert_eq!(g.graph.edge_count(), 1);
        assert!(g.graph.has_edge(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn rejects_duplicate_ids() {
        let src = "graph [ node [ id 1 ] node [ id 1 ] ]";
        assert!(parse_gml(src).is_err());
    }

    #[test]
    fn rejects_edge_to_unknown_node() {
        let src = "graph [ node [ id 1 ] edge [ source 1 target 2 ] ]";
        assert!(parse_gml(src).is_err());
    }

    #[test]
    fn rejects_missing_graph_section() {
        assert!(parse_gml("node [ id 1 ]").is_err());
    }

    #[test]
    fn tolerates_duplicate_and_self_loop_edges() {
        let src = "graph [ node [ id 1 ] node [ id 2 ] \
                   edge [ source 1 target 2 ] edge [ source 1 target 2 ] \
                   edge [ source 1 target 1 ] ]";
        let g = parse_gml(src).unwrap();
        assert_eq!(g.graph.edge_count(), 1);
    }

    #[test]
    fn undirected_flag_reported() {
        let src = "graph [ directed 0 node [ id 1 ] ]";
        let g = parse_gml(src).unwrap();
        assert!(!g.directed);
    }

    #[test]
    fn roundtrip_write_then_parse() {
        let g0 = DiGraph::from_edges(4, &[(0, 1), (1, 2), (1, 3)]).unwrap();
        let text = write_gml(&g0, |v| format!("v{}", v.index()));
        let parsed = parse_gml(&text).unwrap();
        assert_eq!(parsed.graph.node_count(), 4);
        assert_eq!(parsed.graph.edge_count(), 3);
        assert_eq!(parsed.labels[3], "v3");
        for (u, v) in g0.edges() {
            assert!(parsed.graph.has_edge(u, v));
        }
    }

    #[test]
    fn reals_and_comments_are_skipped() {
        let src = "# header\ngraph [ node [ id 1 w 3.25 ] node [ id 2 ] edge [ source 1 target 2 weight 0.5 ] ]";
        let g = parse_gml(src).unwrap();
        assert_eq!(g.graph.edge_count(), 1);
    }
}
