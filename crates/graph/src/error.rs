//! Error types for graph construction, validation and parsing.

use crate::NodeId;
use std::fmt;

/// Errors raised while building or validating graphs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GraphError {
    /// An endpoint referred to a node id not present in the graph.
    NodeOutOfBounds {
        /// The offending id.
        id: NodeId,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// A self-loop `(v, v)` was rejected; layerings require `layer(u) > layer(v)`.
    SelfLoop(NodeId),
    /// The edge already exists (the substrate stores simple digraphs).
    DuplicateEdge(NodeId, NodeId),
    /// The graph contains a directed cycle; the nodes listed form one.
    Cycle(Vec<NodeId>),
    /// Textual input (DOT/GML) could not be parsed.
    Parse(ParseError),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { id, node_count } => write!(
                f,
                "node id {id} out of bounds for graph with {node_count} nodes"
            ),
            GraphError::SelfLoop(v) => write!(f, "self-loop on node {v} is not allowed"),
            GraphError::DuplicateEdge(u, v) => {
                write!(f, "edge ({u}, {v}) already present in simple digraph")
            }
            GraphError::Cycle(nodes) => {
                write!(f, "graph contains a directed cycle through nodes [")?;
                for (i, n) in nodes.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}")?;
                }
                write!(f, "]")
            }
            GraphError::Parse(e) => write!(f, "parse error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<ParseError> for GraphError {
    fn from(e: ParseError) -> Self {
        GraphError::Parse(e)
    }
}

/// A parse failure with line/column context.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub column: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error at the given position.
    pub fn new(line: usize, column: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::SelfLoop(NodeId::new(3));
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::DuplicateEdge(NodeId::new(1), NodeId::new(2));
        assert!(e.to_string().contains("(1, 2)"));
        let e = GraphError::NodeOutOfBounds {
            id: NodeId::new(9),
            node_count: 4,
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
        let e = GraphError::Cycle(vec![NodeId::new(0), NodeId::new(1)]);
        assert!(e.to_string().contains("cycle"));
    }

    #[test]
    fn parse_error_carries_position() {
        let p = ParseError::new(3, 14, "unexpected token");
        assert_eq!(p.to_string(), "3:14: unexpected token");
        let g: GraphError = p.into();
        assert!(matches!(g, GraphError::Parse(_)));
    }
}
