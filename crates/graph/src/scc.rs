//! Strongly connected components (Tarjan's algorithm, iterative).
//!
//! Used to analyse cyclic inputs before layering: every SCC with more than
//! one vertex (or any would-be self-loop) must be broken by the cycle-removal
//! stage, and the condensation of the SCCs is always a DAG.

use crate::{DiGraph, NodeId};

/// Strongly connected components of `g`, in *reverse topological order* of
/// the condensation (every edge between components points from a later
/// entry to an earlier one). Each component lists its members sorted by id.
pub fn strongly_connected_components(g: &DiGraph) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut components = Vec::new();

    // Explicit DFS frames: (node, next-neighbour-position).
    let mut frames: Vec<(NodeId, usize)> = Vec::new();
    for start in g.nodes() {
        if index[start.index()] != UNVISITED {
            continue;
        }
        frames.push((start, 0));
        index[start.index()] = next_index;
        low[start.index()] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start.index()] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            if let Some(&w) = g.out_neighbors(v).get(*pos) {
                *pos += 1;
                if index[w.index()] == UNVISITED {
                    index[w.index()] = next_index;
                    low[w.index()] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w.index()] = true;
                    frames.push((w, 0));
                } else if on_stack[w.index()] {
                    low[v.index()] = low[v.index()].min(index[w.index()]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent.index()] = low[parent.index()].min(low[v.index()]);
                }
                if low[v.index()] == index[v.index()] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("root is on the stack");
                        on_stack[w.index()] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    components.push(comp);
                }
            }
        }
    }
    components
}

/// The condensation of `g`: one node per SCC, edges between distinct SCCs
/// deduplicated. Returns the condensed graph and the component id of every
/// original node.
pub fn condensation(g: &DiGraph) -> (DiGraph, Vec<usize>) {
    let sccs = strongly_connected_components(g);
    let mut comp_of = vec![0usize; g.node_count()];
    for (ci, comp) in sccs.iter().enumerate() {
        for &v in comp {
            comp_of[v.index()] = ci;
        }
    }
    let mut cg = DiGraph::with_capacity(sccs.len(), g.edge_count());
    cg.add_nodes(sccs.len());
    for (u, v) in g.edges() {
        let (cu, cv) = (comp_of[u.index()], comp_of[v.index()]);
        if cu != cv {
            // Duplicate edges between the same pair are silently dropped.
            let _ = cg.add_edge(NodeId::new(cu), NodeId::new(cv));
        }
    }
    (cg, comp_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_acyclic;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn dag_has_singleton_components() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 4);
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn cycle_collapses_to_one_component() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0], vec![n(0), n(1), n(2)]);
    }

    #[test]
    fn mixed_graph_components() {
        // 0↔1 cycle feeding a chain 2→3, plus isolated 4.
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 0), (1, 2), (2, 3)]).unwrap();
        let mut sccs = strongly_connected_components(&g);
        sccs.sort_by_key(|c| c[0]);
        assert_eq!(sccs.len(), 4);
        assert_eq!(sccs[0], vec![n(0), n(1)]);
    }

    #[test]
    fn components_in_reverse_topological_order() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]).unwrap();
        let sccs = strongly_connected_components(&g);
        // Build position map and verify edges point from later to earlier.
        let mut pos = [0usize; 4];
        for (ci, comp) in sccs.iter().enumerate() {
            for &v in comp {
                pos[v.index()] = ci;
            }
        }
        for (u, v) in g.edges() {
            assert!(
                pos[u.index()] >= pos[v.index()],
                "edge {u}->{v} breaks reverse topo order of SCCs"
            );
        }
    }

    #[test]
    fn condensation_is_acyclic() {
        let g = DiGraph::from_edges(
            6,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 3),
                (3, 2),
                (3, 4),
                (4, 5),
                (5, 4),
            ],
        )
        .unwrap();
        let (cg, comp_of) = condensation(&g);
        assert_eq!(cg.node_count(), 3);
        assert!(is_acyclic(&cg));
        assert_eq!(comp_of[0], comp_of[1]);
        assert_eq!(comp_of[2], comp_of[3]);
        assert_ne!(comp_of[0], comp_of[2]);
    }

    #[test]
    fn empty_graph() {
        assert!(strongly_connected_components(&DiGraph::new()).is_empty());
        let (cg, map) = condensation(&DiGraph::new());
        assert_eq!(cg.node_count(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // Iterative Tarjan must handle paths much longer than the thread
        // stack could take recursively.
        let n_nodes = 100_000;
        let edges: Vec<(u32, u32)> = (0..n_nodes as u32 - 1).map(|i| (i, i + 1)).collect();
        let g = DiGraph::from_edges(n_nodes, &edges).unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), n_nodes);
    }
}
