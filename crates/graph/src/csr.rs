//! Compressed-sparse-row adjacency and the [`Adjacency`] abstraction.
//!
//! [`DiGraph`] stores adjacency as `Vec<Vec<NodeId>>` — convenient for
//! construction, but every neighbor scan chases a second pointer and the
//! per-node lists are scattered across the heap. [`CsrView`] packs both
//! directions into four flat arrays (`offsets` + `targets` per direction)
//! so that the inner loops of the ACO walk read contiguous memory. The
//! view is immutable: build it once per algorithm run from a finished
//! graph and thread it through the hot path.
//!
//! [`Adjacency`] is the minimal neighbor-scan interface shared by
//! [`DiGraph`], [`Dag`] and [`CsrView`]; algorithms generic over it are
//! monomorphized, so the abstraction costs nothing at runtime.

use crate::{Dag, DiGraph, NodeId};

/// Read-only neighbor access, implemented by every graph representation.
///
/// The neighbor slices must list the same nodes in the same order for all
/// implementations describing the same graph (CSR construction preserves
/// the `DiGraph` list order), so algorithms produce identical results no
/// matter which representation they are handed.
pub trait Adjacency {
    /// Number of nodes (ids are dense, `0..node_count`).
    fn node_count(&self) -> usize;

    /// Successors of `v` (targets of edges leaving `v`).
    fn out_neighbors(&self, v: NodeId) -> &[NodeId];

    /// Predecessors of `v` (sources of edges entering `v`).
    fn in_neighbors(&self, v: NodeId) -> &[NodeId];

    /// Out-degree of `v`.
    #[inline]
    fn out_degree(&self, v: NodeId) -> usize {
        self.out_neighbors(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    fn in_degree(&self, v: NodeId) -> usize {
        self.in_neighbors(v).len()
    }
}

impl Adjacency for DiGraph {
    #[inline]
    fn node_count(&self) -> usize {
        DiGraph::node_count(self)
    }

    #[inline]
    fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        DiGraph::out_neighbors(self, v)
    }

    #[inline]
    fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        DiGraph::in_neighbors(self, v)
    }
}

impl Adjacency for Dag {
    #[inline]
    fn node_count(&self) -> usize {
        DiGraph::node_count(self)
    }

    #[inline]
    fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        DiGraph::out_neighbors(self, v)
    }

    #[inline]
    fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        DiGraph::in_neighbors(self, v)
    }
}

/// Flat compressed-sparse-row snapshot of a [`DiGraph`]'s adjacency, both
/// directions.
///
/// Neighbors of node `v` occupy `targets[offsets[v] .. offsets[v + 1]]`;
/// four dense arrays replace `2 · |V|` heap-allocated lists, so scanning a
/// neighborhood is one bounds check and a contiguous read.
///
/// # Example
/// ```
/// use antlayer_graph::{Adjacency, DiGraph, NodeId};
///
/// let g = DiGraph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]).unwrap();
/// let csr = g.to_csr();
/// assert_eq!(csr.out_neighbors(NodeId::new(0)), g.out_neighbors(NodeId::new(0)));
/// assert_eq!(csr.in_neighbors(NodeId::new(2)), g.in_neighbors(NodeId::new(2)));
/// ```
#[derive(Clone, Debug)]
pub struct CsrView {
    out_offsets: Vec<u32>,
    out_targets: Vec<NodeId>,
    in_offsets: Vec<u32>,
    in_targets: Vec<NodeId>,
}

impl CsrView {
    /// Builds the view from `graph`, preserving neighbor-list order.
    pub fn from_graph(graph: &DiGraph) -> Self {
        let n = graph.node_count();
        let m = graph.edge_count();
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_targets = Vec::with_capacity(m);
        let mut in_offsets = Vec::with_capacity(n + 1);
        let mut in_targets = Vec::with_capacity(m);
        out_offsets.push(0);
        in_offsets.push(0);
        for v in graph.nodes() {
            out_targets.extend_from_slice(graph.out_neighbors(v));
            out_offsets.push(out_targets.len() as u32);
            in_targets.extend_from_slice(graph.in_neighbors(v));
            in_offsets.push(in_targets.len() as u32);
        }
        CsrView {
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        }
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }
}

impl Adjacency for CsrView {
    #[inline]
    fn node_count(&self) -> usize {
        self.out_offsets.len() - 1
    }

    #[inline]
    fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.out_targets[self.out_offsets[i] as usize..self.out_offsets[i + 1] as usize]
    }

    #[inline]
    fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.in_targets[self.in_offsets[i] as usize..self.in_offsets[i + 1] as usize]
    }
}

impl DiGraph {
    /// Snapshots the adjacency into a [`CsrView`] for cache-local scans.
    pub fn to_csr(&self) -> CsrView {
        CsrView::from_graph(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_graph_view() {
        let csr = DiGraph::new().to_csr();
        assert_eq!(Adjacency::node_count(&csr), 0);
        assert_eq!(csr.edge_count(), 0);
    }

    #[test]
    fn matches_vecvec_adjacency_exactly() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let dag = generate::random_dag_with_edges(30, 60, &mut rng);
            let csr = dag.to_csr();
            assert_eq!(Adjacency::node_count(&csr), dag.node_count());
            assert_eq!(csr.edge_count(), dag.edge_count());
            for v in dag.nodes() {
                assert_eq!(csr.out_neighbors(v), DiGraph::out_neighbors(&dag, v));
                assert_eq!(csr.in_neighbors(v), DiGraph::in_neighbors(&dag, v));
                assert_eq!(Adjacency::out_degree(&csr, v), DiGraph::out_degree(&dag, v));
                assert_eq!(Adjacency::in_degree(&csr, v), DiGraph::in_degree(&dag, v));
            }
        }
    }

    #[test]
    fn isolated_nodes_have_empty_slices() {
        let g = DiGraph::from_edges(4, &[(0, 1)]).unwrap();
        let csr = g.to_csr();
        assert!(csr.out_neighbors(NodeId::new(2)).is_empty());
        assert!(csr.in_neighbors(NodeId::new(3)).is_empty());
    }

    #[test]
    fn adjacency_trait_is_uniform_across_representations() {
        fn total_degree<A: Adjacency>(g: &A) -> usize {
            (0..g.node_count())
                .map(|i| g.out_degree(NodeId::new(i)) + g.in_degree(NodeId::new(i)))
                .sum()
        }
        let dag = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let csr = dag.to_csr();
        assert_eq!(total_degree(dag.graph()), total_degree(&csr));
        assert_eq!(total_degree(&dag), 8);
    }
}
