//! The validated DAG wrapper.

use crate::{topological_sort, DiGraph, GraphError, NodeId, NodeSet, NodeVec};

/// A directed acyclic graph: a [`DiGraph`] whose acyclicity has been proven
/// at construction time.
///
/// `Dag` dereferences to [`DiGraph`], so all read-only graph operations are
/// available directly. A cached topological order is carried along because
/// every layering algorithm needs one.
///
/// # Example
/// ```
/// use antlayer_graph::{Dag, DiGraph};
/// let dag = Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// assert_eq!(dag.topo_order().len(), 3);
/// assert!(Dag::new(DiGraph::from_edges(2, &[(0, 1), (1, 0)]).unwrap()).is_err());
/// ```
#[derive(Clone, Debug)]
pub struct Dag {
    graph: DiGraph,
    topo: Vec<NodeId>,
}

impl Dag {
    /// Validates `graph` and wraps it. Fails with [`GraphError::Cycle`] when
    /// the graph contains a directed cycle.
    pub fn new(graph: DiGraph) -> Result<Self, GraphError> {
        let topo = topological_sort(&graph)?;
        Ok(Dag { graph, topo })
    }

    /// Builds and validates a DAG from raw edge pairs.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Result<Self, GraphError> {
        Dag::new(DiGraph::from_edges(n, edges)?)
    }

    /// A topological order of the nodes (every edge points from an earlier to
    /// a later entry).
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Consumes the wrapper and returns the underlying graph.
    pub fn into_graph(self) -> DiGraph {
        self.graph
    }

    /// Borrows the underlying graph explicitly (also available via deref).
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// All nodes reachable from `v` by directed paths, excluding `v` itself.
    pub fn descendants(&self, v: NodeId) -> NodeSet {
        let mut set = NodeSet::with_capacity(self.node_count());
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            for &w in self.out_neighbors(u) {
                if set.insert(w) {
                    stack.push(w);
                }
            }
        }
        set
    }

    /// All nodes that reach `v` by directed paths, excluding `v` itself.
    pub fn ancestors(&self, v: NodeId) -> NodeSet {
        let mut set = NodeSet::with_capacity(self.node_count());
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            for &w in self.in_neighbors(u) {
                if set.insert(w) {
                    stack.push(w);
                }
            }
        }
        set
    }

    /// The transitive reduction: the unique minimal sub-DAG with the same
    /// reachability relation.
    ///
    /// An edge `(u, v)` is redundant iff some other successor of `u` reaches
    /// `v`. Runs one reachability query per edge (`O(E · (V + E))`), fine at
    /// the graph sizes this library targets.
    pub fn transitive_reduction(&self) -> Dag {
        let reduced = self.graph.filter_edges(|u, v| {
            !self
                .graph
                .out_neighbors(u)
                .iter()
                .filter(|&&w| w != v)
                .any(|&w| w == v || self.reaches(w, v))
        });
        Dag::new(reduced).expect("subgraph of a DAG is a DAG")
    }

    /// All transitive-closure edges `(u, v)` with `u ≠ v`, as raw pairs.
    pub fn transitive_closure_edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for u in self.nodes() {
            for v in self.descendants(u).iter() {
                out.push((u, v));
            }
        }
        out
    }

    /// Whether a directed path `u ⇝ v` exists (`u == v` counts as reachable).
    pub fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return true;
        }
        self.descendants(u).contains(v)
    }

    /// Positions of every node in the cached topological order.
    pub fn topo_positions(&self) -> NodeVec<u32> {
        let mut pos = NodeVec::filled(0u32, self.node_count());
        for (i, &v) in self.topo.iter().enumerate() {
            pos[v] = i as u32;
        }
        pos
    }
}

impl std::ops::Deref for Dag {
    type Target = DiGraph;
    fn deref(&self) -> &DiGraph {
        &self.graph
    }
}

impl TryFrom<DiGraph> for Dag {
    type Error = GraphError;
    fn try_from(g: DiGraph) -> Result<Self, GraphError> {
        Dag::new(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn rejects_cycles() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(matches!(Dag::new(g), Err(GraphError::Cycle(_))));
    }

    #[test]
    fn deref_exposes_graph_api() {
        let dag = diamond();
        assert_eq!(dag.node_count(), 4);
        assert_eq!(dag.out_degree(NodeId::new(0)), 2);
    }

    #[test]
    fn descendants_and_ancestors() {
        let dag = diamond();
        let n = |i| NodeId::new(i);
        let d: Vec<_> = dag.descendants(n(0)).iter().map(NodeId::index).collect();
        assert_eq!(d, vec![1, 2, 3]);
        let a: Vec<_> = dag.ancestors(n(3)).iter().map(NodeId::index).collect();
        assert_eq!(a, vec![0, 1, 2]);
        assert!(dag.descendants(n(3)).is_empty());
    }

    #[test]
    fn reaches_includes_self_and_paths() {
        let dag = diamond();
        let n = |i| NodeId::new(i);
        assert!(dag.reaches(n(0), n(3)));
        assert!(dag.reaches(n(1), n(1)));
        assert!(!dag.reaches(n(1), n(2)));
    }

    #[test]
    fn transitive_reduction_removes_shortcuts() {
        // chain 0->1->2 plus shortcut 0->2.
        let dag = Dag::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let red = dag.transitive_reduction();
        assert_eq!(red.edge_count(), 2);
        assert!(!red.has_edge(NodeId::new(0), NodeId::new(2)));
        // Reachability is preserved.
        assert!(red.reaches(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn transitive_reduction_keeps_diamond() {
        // No diamond edge is redundant.
        let red = diamond().transitive_reduction();
        assert_eq!(red.edge_count(), 4);
    }

    #[test]
    fn closure_edges_count() {
        let dag = Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut closure = dag.transitive_closure_edges();
        closure.sort();
        assert_eq!(closure.len(), 3); // 0->1, 0->2, 1->2
    }

    #[test]
    fn topo_positions_are_consistent() {
        let dag = diamond();
        let pos = dag.topo_positions();
        for (u, v) in dag.edges() {
            assert!(pos[u] < pos[v]);
        }
    }

    #[test]
    fn try_from_digraph() {
        let g = DiGraph::from_edges(2, &[(0, 1)]).unwrap();
        let dag: Dag = g.try_into().unwrap();
        assert_eq!(dag.topo_order().len(), 2);
    }
}
