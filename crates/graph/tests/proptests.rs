//! Property-based tests for the graph substrate.

use antlayer_graph::{
    condensation, generate, io, is_acyclic, strongly_connected_components, topological_sort, Dag,
    DiGraph, GraphDelta, GraphStats, NodeId,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy: an arbitrary simple digraph with up to `max_n` nodes.
fn arb_digraph(max_n: usize) -> impl Strategy<Value = DiGraph> {
    (1..=max_n).prop_flat_map(|n| {
        let pair = (0..n as u32, 0..n as u32);
        proptest::collection::vec(pair, 0..(3 * n)).prop_map(move |pairs| {
            let mut g = DiGraph::new();
            g.add_nodes(n);
            for (u, v) in pairs {
                if u != v {
                    let _ = g.add_edge(NodeId::from(u), NodeId::from(v));
                }
            }
            g
        })
    })
}

/// Strategy: a random DAG built from a seeded generator.
fn arb_dag() -> impl Strategy<Value = Dag> {
    (1usize..60, 0u64..1_000_000, 0u8..4).prop_map(|(n, seed, kind)| {
        let mut rng = StdRng::seed_from_u64(seed);
        match kind {
            0 => generate::gnp_dag(n, 0.15, &mut rng),
            1 => generate::random_dag_with_edges(n, n * 3 / 2, &mut rng),
            2 => generate::random_tree(n, &mut rng),
            _ => generate::layered_dag(n, (n / 4).max(1), 0.05, 2, &mut rng),
        }
    })
}

/// Strategy: a digraph plus a delta that provably applies to it (up to
/// three random removals of existing edges, up to three additions of
/// fresh pairs).
fn arb_graph_and_delta() -> impl Strategy<Value = (DiGraph, GraphDelta)> {
    (arb_digraph(30), 0u64..1_000_000).prop_map(|(g, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges: Vec<(u32, u32)> = g
            .edges()
            .map(|(u, v)| (u.index() as u32, v.index() as u32))
            .collect();
        let mut removed = Vec::new();
        for _ in 0..rng.gen_range(0..=3usize) {
            if edges.is_empty() {
                break;
            }
            let e = edges[rng.gen_range(0..edges.len())];
            if !removed.contains(&e) {
                removed.push(e);
            }
        }
        let n = g.node_count() as u32;
        let mut added = Vec::new();
        for _ in 0..rng.gen_range(0..=3usize) {
            if n < 2 {
                break;
            }
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            let fresh =
                u != v && !g.has_edge(NodeId::from(u), NodeId::from(v)) && !added.contains(&(u, v));
            if fresh {
                added.push((u, v));
            }
        }
        (g, GraphDelta::new(added, removed))
    })
}

proptest! {
    #[test]
    fn delta_then_inverse_restores_the_digraph((g, d) in arb_graph_and_delta()) {
        let edited = d.apply(&g).unwrap();
        prop_assert_eq!(
            edited.edge_count(),
            g.edge_count() + d.added.len() - d.removed.len()
        );
        let restored = d.inverse().apply(&edited).unwrap();
        prop_assert_eq!(restored.node_count(), g.node_count());
        prop_assert_eq!(restored.edge_count(), g.edge_count());
        for (u, v) in g.edges() {
            prop_assert!(restored.has_edge(u, v), "lost edge {}->{}", u, v);
        }
        for (u, v) in restored.edges() {
            prop_assert!(g.has_edge(u, v), "invented edge {}->{}", u, v);
        }
    }

    #[test]
    fn composed_delta_equals_sequential_application(
        (g, d1) in arb_graph_and_delta(),
        seed in 0u64..1_000_000,
    ) {
        // Build a second delta that provably applies to the *edited*
        // graph, then check compose's contract: one application of the
        // folded delta lands on the same edge set as the two steps.
        let mid = d1.apply(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let edges: Vec<(u32, u32)> = mid
            .edges()
            .map(|(u, v)| (u.index() as u32, v.index() as u32))
            .collect();
        let mut removed = Vec::new();
        for _ in 0..rng.gen_range(0..=3usize) {
            if edges.is_empty() {
                break;
            }
            let e = edges[rng.gen_range(0..edges.len())];
            if !removed.contains(&e) {
                removed.push(e);
            }
        }
        let n = mid.node_count() as u32;
        let mut added = Vec::new();
        for _ in 0..rng.gen_range(0..=3usize) {
            if n < 2 {
                break;
            }
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            let fresh = u != v
                && !mid.has_edge(NodeId::from(u), NodeId::from(v))
                && !added.contains(&(u, v));
            if fresh {
                added.push((u, v));
            }
        }
        let d2 = GraphDelta::new(added, removed);
        let stepped = d2.apply(&mid).unwrap();
        let folded = d1.compose(&d2).apply(&g).unwrap();
        prop_assert_eq!(folded.node_count(), stepped.node_count());
        prop_assert_eq!(folded.edge_count(), stepped.edge_count());
        for (u, v) in stepped.edges() {
            prop_assert!(folded.has_edge(u, v), "compose lost edge {}->{}", u, v);
        }
    }

    #[test]
    fn delta_application_is_all_or_nothing(g in arb_digraph(20)) {
        // A delta whose *last* addition is invalid must leave no trace:
        // apply returns Err and the base graph is unchanged (apply is
        // pure, so "unchanged" means the original still validates).
        let bad = GraphDelta::new(vec![(0, 0)], vec![]); // self-loop
        let before = g.edge_count();
        prop_assert!(bad.apply(&g).is_err());
        prop_assert_eq!(g.edge_count(), before);
    }

    #[test]
    fn topo_sort_is_valid_when_it_succeeds(g in arb_digraph(40)) {
        if let Ok(order) = topological_sort(&g) {
            prop_assert_eq!(order.len(), g.node_count());
            let mut pos = vec![usize::MAX; g.node_count()];
            for (i, v) in order.iter().enumerate() {
                pos[v.index()] = i;
            }
            for (u, v) in g.edges() {
                prop_assert!(pos[u.index()] < pos[v.index()]);
            }
        }
    }

    #[test]
    fn cycle_witness_is_a_cycle(g in arb_digraph(30)) {
        if let Err(antlayer_graph::GraphError::Cycle(cyc)) = topological_sort(&g) {
            prop_assert!(cyc.len() >= 2);
            for i in 0..cyc.len() {
                let u = cyc[i];
                let v = cyc[(i + 1) % cyc.len()];
                prop_assert!(g.has_edge(u, v), "broken witness at {}->{}", u, v);
            }
        }
    }

    #[test]
    fn generators_produce_acyclic_graphs(dag in arb_dag()) {
        prop_assert!(is_acyclic(&dag));
    }

    #[test]
    fn reversing_twice_is_identity(g in arb_digraph(30)) {
        let rr = g.reversed().reversed();
        prop_assert_eq!(g.node_count(), rr.node_count());
        prop_assert_eq!(g.edge_count(), rr.edge_count());
        for (u, v) in g.edges() {
            prop_assert!(rr.has_edge(u, v));
        }
    }

    #[test]
    fn degree_sums_match_edge_count(g in arb_digraph(40)) {
        let out_sum: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        let in_sum: usize = g.nodes().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.edge_count());
        prop_assert_eq!(in_sum, g.edge_count());
    }

    #[test]
    fn dot_roundtrip_preserves_structure(dag in arb_dag()) {
        let dot = io::dot::write_dot_ids(&dag);
        let parsed = io::dot::parse_dot(&dot).unwrap();
        prop_assert_eq!(parsed.graph.node_count(), dag.node_count());
        prop_assert_eq!(parsed.graph.edge_count(), dag.edge_count());
        for (u, v) in dag.edges() {
            let pu = parsed.node_by_name(&u.index().to_string()).unwrap();
            let pv = parsed.node_by_name(&v.index().to_string()).unwrap();
            prop_assert!(parsed.graph.has_edge(pu, pv));
        }
    }

    #[test]
    fn gml_roundtrip_preserves_structure(dag in arb_dag()) {
        let gml = io::gml::write_gml(&dag, |v| format!("v{}", v.index()));
        let parsed = io::gml::parse_gml(&gml).unwrap();
        prop_assert_eq!(parsed.graph.node_count(), dag.node_count());
        prop_assert_eq!(parsed.graph.edge_count(), dag.edge_count());
        for (u, v) in dag.edges() {
            prop_assert!(parsed.graph.has_edge(u, v));
        }
    }

    #[test]
    fn transitive_reduction_preserves_reachability(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dag = generate::gnp_dag(15, 0.3, &mut rng);
        let red = dag.transitive_reduction();
        for u in dag.nodes() {
            for v in dag.nodes() {
                prop_assert_eq!(dag.reaches(u, v), red.reaches(u, v));
            }
        }
        prop_assert!(red.edge_count() <= dag.edge_count());
    }

    #[test]
    fn stats_are_internally_consistent(g in arb_digraph(40)) {
        let s = GraphStats::of(&g);
        prop_assert_eq!(s.nodes, g.node_count());
        prop_assert_eq!(s.edges, g.edge_count());
        prop_assert!(s.sources >= s.isolated);
        prop_assert!(s.sinks >= s.isolated);
        prop_assert!(s.weak_components >= 1 || s.nodes == 0);
    }

    #[test]
    fn descendants_never_contain_self_in_dag(dag in arb_dag()) {
        for v in dag.nodes() {
            prop_assert!(!dag.descendants(v).contains(v));
        }
    }

    #[test]
    fn sccs_partition_the_nodes(g in arb_digraph(40)) {
        let sccs = strongly_connected_components(&g);
        let mut seen = vec![false; g.node_count()];
        for comp in &sccs {
            prop_assert!(!comp.is_empty());
            for &v in comp {
                prop_assert!(!seen[v.index()], "node {} in two components", v);
                seen[v.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn condensation_is_always_acyclic(g in arb_digraph(40)) {
        let (cg, comp_of) = condensation(&g);
        prop_assert!(is_acyclic(&cg));
        prop_assert_eq!(comp_of.len(), g.node_count());
        // Every original edge maps to an intra-component pair or a
        // condensation edge.
        for (u, v) in g.edges() {
            let (cu, cv) = (comp_of[u.index()], comp_of[v.index()]);
            if cu != cv {
                prop_assert!(cg.has_edge(NodeId::new(cu), NodeId::new(cv)));
            }
        }
    }

    #[test]
    fn dag_sccs_are_all_singletons(dag in arb_dag()) {
        let sccs = strongly_connected_components(&dag);
        prop_assert_eq!(sccs.len(), dag.node_count());
    }
}
