//! # antlayer-reactor
//!
//! A minimal, zero-dependency readiness reactor over Linux `epoll`: the
//! event loop under `antlayer serve --live`. The thread-per-connection
//! listeners in `antlayer-service` are the right shape for
//! request/response traffic, but a session tier holding tens of
//! thousands of mostly-idle subscriptions cannot spend a thread per
//! socket — it needs one thread parked in `epoll_wait`, woken only by
//! the sockets (or solve completions) that have something to say.
//!
//! The crate deliberately stays tiny:
//!
//! * [`Poller`] — a level-triggered `epoll` instance:
//!   register/modify/deregister interest per file descriptor, each
//!   tagged with a caller-chosen `u64` token, and [`Poller::wait`] for
//!   readiness events.
//! * [`Waker`] — a self-pipe (a nonblocking `UnixStream` pair) whose
//!   read end is registered like any other fd; any thread calls
//!   [`Waker::wake`] to pop the reactor out of `epoll_wait`. This is
//!   how solve-completion threads hand results back to the loop.
//!
//! This is the only crate in the workspace that speaks `unsafe`: the
//! four raw `epoll` syscalls, declared against the libc every Rust
//! binary already links. Everything above it (`antlayer-service`'s live
//! listener included) keeps `#![forbid(unsafe_code)]`.
//!
//! Level-triggered on purpose: a readiness the handler does not fully
//! drain is simply reported again on the next wait, which makes the
//! per-connection state machines trivially restartable — the
//! partial-frame tests in `antlayer-service` lean on exactly that.

#![warn(missing_docs)]

use std::io;
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

// The epoll ABI, declared by hand: the build environment has no
// registry access, and these four symbols are in the libc every Rust
// program on Linux links anyway. Constants match <sys/epoll.h>.
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0o2000000;

/// The kernel's event record. Packed on x86-64 (the one architecture
/// where the kernel ABI differs from natural alignment).
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

const SOL_SOCKET: i32 = 1;
const SO_SNDBUF: i32 = 7;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const i32, optlen: u32) -> i32;
}

/// Caps a socket's kernel send buffer (`SO_SNDBUF`; the kernel doubles
/// the value for bookkeeping and clamps to its minimum). A reactor
/// holding tens of thousands of connections cannot afford each one
/// autotuning a multi-megabyte send buffer — and bounding the kernel's
/// share makes a userspace outbound-queue cap the *effective*
/// backpressure bound instead of a limit hidden behind megabytes of
/// kernel absorption.
pub fn set_send_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
    let val = bytes.min(i32::MAX as usize) as i32;
    let rc = unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            SO_SNDBUF,
            &val,
            std::mem::size_of::<i32>() as u32,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Which readiness a registration asks for. Error and hangup conditions
/// are always reported; they cannot be masked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Report when the fd is readable.
    pub readable: bool,
    /// Report when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read readiness only — the steady state of an idle session
    /// connection.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write readiness only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both — a connection with queued outbound frames still wants
    /// incoming deltas.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut m = EPOLLRDHUP;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd has bytes to read (or a pending accept).
    pub readable: bool,
    /// The fd can take more bytes.
    pub writable: bool,
    /// The peer closed or the fd errored; the connection is done.
    /// (`EPOLLERR | EPOLLHUP | EPOLLRDHUP` folded into one flag — the
    /// reactor tears the connection down the same way for all three.)
    pub hangup: bool,
}

/// A level-triggered `epoll` instance. Registrations are keyed by raw
/// fd; each carries a caller-chosen `u64` token that comes back in
/// every [`Event`]. The poller does not own the fds — callers keep
/// their sockets and must [`deregister`](Poller::deregister) (or just
/// close the socket; the kernel drops closed fds from the set) before
/// dropping them.
pub struct Poller {
    epfd: RawFd,
}

// The epoll fd is just an fd: waiting from one thread while another
// registers is exactly the kernel's supported use.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

impl Poller {
    /// Creates the epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Adds `fd` to the interest set under `token`.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest.mask(), token)
    }

    /// Changes the interest (and token) of an already-registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest.mask(), token)
    }

    /// Removes `fd` from the interest set. Removing an fd the kernel
    /// already dropped (because every duplicate was closed) reports
    /// `ENOENT`/`EBADF`; callers tearing a connection down may ignore
    /// the error.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, std::ptr::null_mut()) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Blocks until at least one registered fd is ready (or `timeout`
    /// elapses — `None` waits forever), appending reports to `events`
    /// (which is cleared first). Returns the number of events.
    /// `EINTR` is retried internally.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => {
                // Round up so a sub-millisecond timeout sleeps 1ms
                // instead of spinning at 0.
                let mut ms = d.as_millis();
                if Duration::from_millis(ms as u64) < d {
                    ms += 1;
                }
                ms.min(i32::MAX as u128) as i32
            }
        };
        let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
        let n = loop {
            let rc = unsafe {
                epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in &buf[..n] {
            let bits = ev.events;
            events.push(Event {
                token: ev.data,
                readable: bits & EPOLLIN != 0,
                writable: bits & EPOLLOUT != 0,
                hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.epfd);
        }
    }
}

/// Pops a [`Poller`] out of `epoll_wait` from any thread: a nonblocking
/// socket pair whose read end the reactor registers like any other fd.
/// [`wake`](Waker::wake) writes one byte; the reactor sees the read end
/// readable, [`drain`](Waker::drain)s it, and processes whatever the
/// waking thread queued. Multiple wakes before a drain coalesce — the
/// pipe carries "look now", not a message.
pub struct Waker {
    read: UnixStream,
    write: UnixStream,
}

impl Waker {
    /// Builds the pair; both ends nonblocking.
    pub fn new() -> io::Result<Waker> {
        let (read, write) = UnixStream::pair()?;
        read.set_nonblocking(true)?;
        write.set_nonblocking(true)?;
        Ok(Waker { read, write })
    }

    /// The fd to register with the reactor's poller (readable interest).
    pub fn fd(&self) -> RawFd {
        self.read.as_raw_fd()
    }

    /// Wakes the reactor. A full pipe means a wake is already pending,
    /// which is exactly as good — `WouldBlock` is success here.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.write).write(&[1u8]);
    }

    /// Consumes every pending wake byte. Call when the waker's token
    /// reports readable, before draining the completion queue.
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while matches!((&self.read).read(&mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn readable_event_is_reported_and_levels_persist() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READABLE).unwrap();

        // Nothing written yet: a zero-timeout wait reports nothing.
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));

        a.write_all(b"x").unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        let ev = events.iter().find(|e| e.token == 7).expect("event for b");
        assert!(ev.readable);

        // Level-triggered: not draining the byte re-reports readiness.
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        // Draining clears it.
        let mut buf = [0u8; 8];
        let mut b_read = &b;
        let _ = b_read.read(&mut buf).unwrap();
        poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));
    }

    #[test]
    fn hangup_is_reported_when_the_peer_closes() {
        let poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        poller.register(b.as_raw_fd(), 3, Interest::READABLE).unwrap();
        drop(a);
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        let ev = events.iter().find(|e| e.token == 3).expect("event for b");
        assert!(ev.hangup);
    }

    #[test]
    fn modify_switches_interest_to_writable() {
        let poller = Poller::new().unwrap();
        let (_a, b) = UnixStream::pair().unwrap();
        poller.register(b.as_raw_fd(), 1, Interest::READABLE).unwrap();
        // An idle socket with read interest: no events.
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.is_empty());
        // Switch to write interest: an empty send buffer is writable now.
        poller.modify(b.as_raw_fd(), 2, Interest::WRITABLE).unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        let ev = events.iter().find(|e| e.token == 2).expect("event for b");
        assert!(ev.writable);
        poller.deregister(b.as_raw_fd()).unwrap();
        poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn waker_wakes_and_coalesces() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.register(waker.fd(), 99, Interest::READABLE).unwrap();

        // Several wakes before the wait: one readiness report.
        waker.wake();
        waker.wake();
        waker.wake();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 99 && e.readable));
        waker.drain();
        poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.is_empty(), "drained waker is quiet");

        // A wake from another thread pops a blocking wait.
        let waker = std::sync::Arc::new(waker);
        let w = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w.wake();
        });
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 99));
        t.join().unwrap();
    }

    #[test]
    fn send_buffer_caps_loopback_absorption() {
        // A socket capped to 4 KiB must refuse far sooner than the
        // megabytes an autotuned loopback buffer absorbs: fill the pipe
        // against a non-reading peer and count what the kernel took.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let a = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (_b, _) = listener.accept().unwrap();
        set_send_buffer(a.as_raw_fd(), 4096).unwrap();
        a.set_nonblocking(true).unwrap();
        let chunk = [0u8; 4096];
        let mut absorbed = 0usize;
        loop {
            match std::io::Write::write(&mut (&a), &chunk) {
                Ok(n) => absorbed += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("unexpected write error: {e}"),
            }
            assert!(absorbed < 64 << 20, "send buffer cap had no effect");
        }
        // Send-side share is ~2 * 4 KiB (the kernel doubles the request);
        // the peer's receive window rides on top. Anything under half a
        // megabyte proves the cap bit; uncapped loopback takes several MB.
        assert!(absorbed < 512 * 1024, "absorbed {absorbed} bytes");

        // An invalid fd reports the kernel's error instead of lying.
        assert!(set_send_buffer(-1, 4096).is_err());
    }
}
