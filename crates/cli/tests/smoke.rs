//! End-to-end smoke tests for the `antlayer` binary: the subcommands are
//! exercised through a real process, exactly as a user would run them.

use std::process::Command;

fn antlayer() -> Command {
    Command::new(env!("CARGO_BIN_EXE_antlayer"))
}

fn run_ok(args: &[&str]) -> String {
    let out = antlayer().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "antlayer {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn gen_emits_parsable_dot() {
    let dot = run_ok(&["gen", "--n", "20", "--seed", "5"]);
    assert!(dot.starts_with("digraph"));
    let parsed = antlayer_graph::io::dot::parse_dot(&dot).unwrap();
    assert_eq!(parsed.graph.node_count(), 20);
}

#[test]
fn gen_emits_parsable_gml() {
    let gml = run_ok(&["gen", "--n", "15", "--seed", "2", "--gml"]);
    let parsed = antlayer_graph::io::gml::parse_gml(&gml).unwrap();
    assert_eq!(parsed.graph.node_count(), 15);
}

#[test]
fn layer_reads_file_and_prints_metrics() {
    let dir = std::env::temp_dir().join("antlayer-cli-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("g.dot");
    std::fs::write(&path, "digraph { a -> b -> c; a -> c; }").unwrap();
    for algo in [
        "lpl",
        "minwidth",
        "lpl-pl",
        "minwidth-pl",
        "cg",
        "ns",
        "aco",
        "exact",
        "portfolio",
    ] {
        let out = run_ok(&["layer", "--algo", algo, path.to_str().unwrap()]);
        assert!(out.contains("height"), "{algo}: {out}");
        assert!(out.contains("L1"), "{algo} missing layer listing");
    }
}

#[test]
fn layer_exact_certifies_and_portfolio_reports_its_race() {
    let dir = std::env::temp_dir().join("antlayer-cli-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("solver.dot");
    std::fs::write(&path, "digraph { a -> b -> d; a -> c -> d; c -> e; }").unwrap();

    let exact = run_ok(&["layer", "--algo", "exact", path.to_str().unwrap()]);
    assert!(exact.contains("certified"), "{exact}");

    let race = run_ok(&[
        "layer",
        "--algo",
        "portfolio",
        "--deadline-ms",
        "2000",
        path.to_str().unwrap(),
    ]);
    assert!(race.contains("portfolio: winner"), "{race}");
    assert!(race.contains("lpl"), "member table missing: {race}");
}

#[test]
fn layer_handles_cyclic_input() {
    let dir = std::env::temp_dir().join("antlayer-cli-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cyc.dot");
    std::fs::write(&path, "digraph { a -> b; b -> a; b -> c; }").unwrap();
    let out = run_ok(&["layer", "--algo", "lpl", path.to_str().unwrap()]);
    assert!(out.contains("reversed"), "cycle note missing: {out}");
}

#[test]
fn draw_writes_svg() {
    let dir = std::env::temp_dir().join("antlayer-cli-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("d.dot");
    let svg = dir.join("d.svg");
    std::fs::write(&input, "digraph { a -> b; a -> c; b -> d; c -> d; }").unwrap();
    run_ok(&[
        "draw",
        "--algo",
        "lpl",
        "--svg",
        svg.to_str().unwrap(),
        input.to_str().unwrap(),
    ]);
    let content = std::fs::read_to_string(&svg).unwrap();
    assert!(content.starts_with("<svg"));
}

#[test]
fn layout_alias_and_json_round_trip_warm_start() {
    let dir = std::env::temp_dir().join("antlayer-cli-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("warm.dot");
    let json = dir.join("warm.json");
    std::fs::write(&input, "digraph { a -> b -> c -> d; a -> c; b -> d; }").unwrap();

    // 1. Cold run through the `layout` alias, layering saved as JSON.
    let cold = run_ok(&[
        "layout",
        "--algo",
        "aco",
        "--json-out",
        json.to_str().unwrap(),
        input.to_str().unwrap(),
    ]);
    assert!(cold.contains("height"), "{cold}");
    let saved = std::fs::read_to_string(&json).unwrap();
    assert!(saved.contains("\"layers\""), "{saved}");

    // 2. Edit the graph (one extra edge) and warm-start from the save.
    std::fs::write(
        &input,
        "digraph { a -> b -> c -> d; a -> c; b -> d; a -> d; }",
    )
    .unwrap();
    let warm = run_ok(&[
        "layout",
        "--warm-from",
        json.to_str().unwrap(),
        input.to_str().unwrap(),
    ]);
    assert!(warm.contains("warm start"), "{warm}");
    assert!(warm.contains("AntColony (warm)"), "{warm}");
}

#[test]
fn warm_from_rejects_non_aco_and_bad_files() {
    let dir = std::env::temp_dir().join("antlayer-cli-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("warm-bad.dot");
    let json = dir.join("warm-bad.json");
    std::fs::write(&input, "digraph { a -> b; }").unwrap();
    std::fs::write(&json, "{\"layers\":[[0],[1]]}").unwrap();
    let out = antlayer()
        .args([
            "layer",
            "--algo",
            "lpl",
            "--warm-from",
            json.to_str().unwrap(),
            input.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("only applies to the aco"));

    std::fs::write(&json, "{\"layers\":[[0]]}").unwrap();
    let out = antlayer()
        .args([
            "layer",
            "--warm-from",
            json.to_str().unwrap(),
            input.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "incomplete layering must fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("no layer"));
}

#[test]
fn suite_prints_group_table() {
    let out = run_ok(&["suite", "--total", "38", "--seed", "3"]);
    assert!(out.contains("38 graphs"));
    assert!(out.contains("mean_lpl_height"));
}

#[test]
fn bad_usage_fails_with_message() {
    let out = antlayer().arg("bogus").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown subcommand"));
    assert!(err.contains("usage"));
}

#[test]
fn missing_file_fails_cleanly() {
    let out = antlayer()
        .args(["layer", "/nonexistent/nowhere.dot"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn route_requires_shards() {
    let out = antlayer().arg("route").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--shards"), "{err}");
}

#[test]
fn route_fronts_a_real_shard_process() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    // A real in-process shard server plus the `antlayer route` binary in
    // front of it, end to end over loopback.
    let shard = antlayer_service::Server::bind(antlayer_service::ServerConfig {
        addr: "127.0.0.1:0".into(),
        scheduler: antlayer_service::SchedulerConfig {
            threads: 2,
            ..Default::default()
        },
        ..Default::default()
    })
    .unwrap()
    .spawn()
    .unwrap();

    // Reserve a free port for the router (bind-then-drop; the race
    // window on loopback is negligible for a smoke test).
    let router_addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let mut router = antlayer()
        .args([
            "route",
            "--shards",
            &shard.addr().to_string(),
            "--addr",
            &router_addr,
        ])
        .spawn()
        .expect("route process starts");

    // Wait for the router to accept, then ping + layout through it.
    let mut attempt = 0;
    let stream = loop {
        match TcpStream::connect(&router_addr) {
            Ok(s) => break s,
            Err(e) => {
                attempt += 1;
                assert!(attempt < 100, "router never came up: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut send = |line: &str| -> String {
        let mut s = stream.try_clone().unwrap();
        writeln!(s, "{line}").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply
    };
    let pong = send(r#"{"op":"ping"}"#);
    assert!(pong.contains("\"router\":true"), "{pong}");
    let layout = send(r#"{"op":"layout","nodes":3,"edges":[[0,1],[1,2]],"ants":2,"tours":2}"#);
    assert!(layout.contains("\"ok\":true"), "{layout}");
    assert!(layout.contains("\"source\":\"computed\""), "{layout}");

    router.kill().unwrap();
    let _ = router.wait();
    shard.shutdown();
}
