//! `antlayer` — command-line front end.
//!
//! ```text
//! antlayer layer  [--algo NAME] [--nd-width F] [--seed N] [--threads N]
//!                 [--deadline-ms MS] [--warm-from JSON] [--json-out OUT] FILE
//!                                                                # print metrics + layers
//! antlayer draw   [--algo NAME] [--svg OUT] [--seed N] [--threads N] FILE
//!                                                                # render ASCII (and SVG)
//! antlayer gen    [--n N] [--seed S] [--gml]                     # emit a synthetic DAG as DOT/GML
//! antlayer suite  [--seed S] [--total N]                         # AT&T-like suite statistics
//! antlayer serve  [--addr HOST:PORT] [--http PORT] [--live PORT] [--threads N]
//!                 [--cache-cap N] [--cache-bytes B] [--cache-dir DIR]
//!                 [--queue-cap N] [--shards N] [--max-conns N]
//!                 [--refresh-every K]                            # batch layout server
//! antlayer route  --shards HOST:PORT,HOST:PORT[,...] [--addr HOST:PORT]
//!                 [--http PORT] [--vnodes N] [--probe-ms MS]
//!                 [--max-conns N] [--replicas N]                 # consistent-hash router
//! antlayer reshard --router HOST:PORT (--join ADDR | --drain ADDR)
//!                                                                # live fleet membership
//! ```
//!
//! `layout` is accepted as an alias of `layer`. `FILE` may be `-` for
//! stdin; `.gml` files (or `--gml`) are parsed as GML, anything else as
//! DOT. Algorithms: `lpl`, `lpl-pl`, `minwidth`, `minwidth-pl`, `cg`,
//! `ns`, `aco` (default `aco`), `exact` (certified optimum on small
//! graphs), `portfolio` (races every solver under one deadline and
//! reports the winner).
//!
//! `--deadline-ms MS` gives `layer` an anytime budget: the solver
//! returns its best incumbent when the clock runs out and the output
//! notes the truncation. Most useful with `aco` and `portfolio`.
//!
//! `--threads N` sets the colony's worker threads (`0` = all available,
//! capped at the ant count); results are identical for every thread count.
//!
//! `--warm-from JSON` warm-starts the colony (ACO only) from a previous
//! layering: the file holds `{"layers":[[ids…],…]}` — the `layers` member
//! of a server response, or the output of a previous `--json-out OUT` run.
//! The layering is repaired onto the (possibly edited) input graph and
//! installed as the colony's incumbent, so small edits converge in a few
//! repair tours instead of a cold search.
//!
//! `serve` starts the batch layout server of `antlayer-service`: it
//! answers newline-delimited JSON layout requests over TCP with
//! canonical-digest caching, in-flight dedup, admission control, and
//! per-request `deadline_ms` budgets (anytime ACO). `--http PORT` adds a
//! second, HTTP/1.1 listener (`POST /v2` with `Content-Length` bodies;
//! `GET /healthz` for probes, `GET /metrics` for Prometheus scrapes)
//! serving the identical protocol — handy where raw TCP is
//! firewall-hostile; `curl` examples live in the README.
//! `--cache-bytes B` sets a soft byte budget on the layout cache:
//! crossing it logs one warning (observability, not eviction — sizing
//! stays `--cache-cap`'s job). `--cache-dir DIR` makes the cache durable:
//! every computed layout is appended to a checksummed segment log in
//! `DIR` and replayed on the next boot, so a restarted shard serves its
//! pre-crash entries from disk instead of recomputing them.
//! `route` starts the `antlayer-router` front: it
//! consistent-hashes request digests across the given `antlayer serve`
//! shards, fails over past down shards, and aggregates `stats`; it takes
//! the same `--http PORT` for its client-facing side. `--replicas N`
//! write-throughs each fresh result to the next `N−1` ring candidates,
//! so a single shard death loses no cached work. Clients speak the
//! identical protocol to either; see `docs/PROTOCOL.md` for the wire
//! format (v1 lines and the v2 envelope) and `docs/ARCHITECTURE.md` for
//! the topology.
//! `reshard` changes a running router's fleet membership **live**:
//! `--join ADDR` enrolls a freshly started `antlayer serve` shard (its
//! keys' cache entries stream over from their old owners while requests
//! keep serving), `--drain ADDR` empties a shard into the rest of the
//! fleet and removes it — both with zero cached-work loss. The command
//! blocks until the handoff completes and prints the resulting
//! topology.

use antlayer_aco::AcoParams;
use antlayer_datasets::{att_like_graph, GraphSuite, Table};
use antlayer_graph::io::{dot, gml};
use antlayer_graph::DiGraph;
use antlayer_layering::{LayeringAlgorithm, LayeringMetrics, Solution, WidthModel};
use antlayer_router::{Router, RouterConfig};
use antlayer_service::{AlgoSpec, SchedulerConfig, Server, ServerConfig};
use antlayer_sugiyama::{draw, PipelineOptions, SvgOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("antlayer: {e}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  antlayer layer [--algo NAME] [--nd-width F] [--seed N] [--threads N]
                 [--deadline-ms MS] [--warm-from JSON] [--json-out OUT]
                 FILE                                       (alias: layout)
  antlayer draw  [--algo NAME] [--svg OUT]   [--seed N] [--threads N] FILE
  antlayer gen   [--n N] [--seed S] [--gml]
  antlayer suite [--seed S] [--total N]
  antlayer serve [--addr HOST:PORT] [--http PORT] [--live PORT]
                 [--threads N] [--cache-cap N] [--cache-bytes B]
                 [--cache-dir DIR] [--queue-cap N] [--shards N]
                 [--max-conns N] [--refresh-every K]
  antlayer route --shards HOST:PORT,HOST:PORT[,...] [--addr HOST:PORT]
                 [--http PORT] [--vnodes N] [--probe-ms MS] [--max-conns N]
                 [--replicas N]
  antlayer reshard --router HOST:PORT (--join ADDR | --drain ADDR)
algorithms: lpl, lpl-pl, minwidth, minwidth-pl, cg, ns, aco (default),
exact (certified optimum, small graphs), portfolio (race them all)
deadline-ms: anytime budget for layer; the best incumbent at the
deadline is returned and the truncation is noted
http: PORT (or HOST:PORT) of an additional HTTP/1.1 listener (POST /v2,
GET /healthz, GET /metrics for Prometheus scrapes)
live: PORT (or HOST:PORT) of the streaming edit-session listener
(session_open/session_delta/session_close; pushes session_update
frames; see docs/PROTOCOL.md)
refresh-every: cold-refresh a warm delta chain every K links (0 = off)
cache-bytes: soft budget on the layout cache's approximate byte size;
crossing it logs one warning (sizing stays --cache-cap's job)
cache-dir: durable cache: computed layouts are appended to a segment
log in DIR and replayed on the next boot
replicas: fleet-wide copies per cached layout (route); N >= 2 survives
any single shard death without losing cached work
threads: colony worker threads, 0 = all available (results are
thread-count independent)
warm-from: JSON layering ({\"layers\":[[ids...],...]}) used as the
colony's incumbent (aco only); write one with --json-out";

/// Minimal flag parser: `--key value` pairs plus positionals.
struct Flags {
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
    positional: Vec<String>,
}

impl Flags {
    fn parse(args: &[String], valued: &[&str]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut switches = Vec::new();
        let mut positional = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(name) = a.strip_prefix("--") {
                if valued.contains(&name) {
                    let v = args
                        .get(i + 1)
                        .ok_or_else(|| format!("--{name} needs a value"))?;
                    pairs.push((name.to_string(), v.clone()));
                    i += 2;
                } else {
                    switches.push(name.to_string());
                    i += 1;
                }
            } else {
                positional.push(a.clone());
                i += 1;
            }
        }
        Ok(Flags {
            pairs,
            switches,
            positional,
        })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing subcommand".into());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "layer" | "layout" => cmd_layer(rest),
        "draw" => cmd_draw(rest),
        "gen" => cmd_gen(rest),
        "suite" => cmd_suite(rest),
        "serve" => cmd_serve(rest),
        "route" => cmd_route(rest),
        "reshard" => cmd_reshard(rest),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

fn load_graph(path: &str, force_gml: bool) -> Result<(DiGraph, Vec<String>), String> {
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
    };
    if force_gml || path.ends_with(".gml") {
        let g = gml::parse_gml(&text).map_err(|e| format!("GML parse: {e}"))?;
        let labels = g
            .labels
            .iter()
            .enumerate()
            .map(|(i, l)| {
                if l.is_empty() {
                    g.original_ids[i].to_string()
                } else {
                    l.clone()
                }
            })
            .collect();
        Ok((g.graph, labels))
    } else {
        let g = dot::parse_dot(&text).map_err(|e| format!("DOT parse: {e}"))?;
        let names = g.names.clone();
        Ok((g.graph, names))
    }
}

fn make_algorithm(
    name: &str,
    seed: u64,
    threads: usize,
) -> Result<Box<dyn LayeringAlgorithm>, String> {
    // One construction point for CLI and server: the service crate's
    // AlgoSpec owns the name -> algorithm mapping.
    Ok(cli_algo_spec(name, seed, threads)?.build())
}

fn cli_algo_spec(name: &str, seed: u64, threads: usize) -> Result<AlgoSpec, String> {
    let mut spec = AlgoSpec::parse(name, seed)?;
    if let AlgoSpec::Aco(params) | AlgoSpec::Portfolio(params) = &mut spec {
        *params = cli_aco_params(seed, threads);
    }
    Ok(spec)
}

/// The colony parameters the CLI builds from its flags: `--seed` and
/// `--threads` (0 = all available cores, capped at the ant count by the
/// colony itself).
fn cli_aco_params(seed: u64, threads: usize) -> AcoParams {
    AcoParams::default().with_seed(seed).with_threads(threads)
}

fn cmd_layer(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(
        args,
        &[
            "algo",
            "nd-width",
            "seed",
            "threads",
            "deadline-ms",
            "warm-from",
            "json-out",
        ],
    )?;
    let path = flags
        .positional
        .first()
        .ok_or("layer: missing input file")?;
    let (graph, labels) = load_graph(path, flags.has("gml"))?;
    let algo_name = flags.get("algo").unwrap_or("aco");
    let seed = flags.get_parsed("seed", 1u64)?;
    let threads = flags.get_parsed("threads", 1usize)?;
    let nd: f64 = flags.get_parsed("nd-width", 1.0)?;
    let widths = WidthModel::with_dummy_width(nd);
    let deadline = match flags.get("deadline-ms") {
        Some(v) => {
            let ms: u64 = v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --deadline-ms"))?;
            Some(std::time::Instant::now() + std::time::Duration::from_millis(ms))
        }
        None => None,
    };

    // Route through the pipeline's cycle removal so cyclic inputs work.
    let oriented = antlayer_sugiyama::acyclic_orientation(&graph);
    if !oriented.reversed.is_empty() {
        println!(
            "note: reversed {} edge(s) to break cycles",
            oriented.reversed.len()
        );
    }
    let (name, layering) = match flags.get("warm-from") {
        Some(warm_path) => {
            // Warm start is a colony feature: the seed layering becomes
            // the incumbent of a fresh ACO run.
            if algo_name != "aco" {
                return Err(format!(
                    "layer: --warm-from only applies to the aco algorithm, not '{algo_name}'"
                ));
            }
            let text = std::fs::read_to_string(warm_path)
                .map_err(|e| format!("reading {warm_path}: {e}"))?;
            let hint = parse_layering_json(&text, oriented.dag.node_count())?;
            let seed_layering = hint.repaired(&oriented.dag);
            let colony = antlayer_aco::AcoLayering::new(cli_aco_params(seed, threads));
            let run = colony
                .run_seeded(&oriented.dag, &widths, &seed_layering)
                .map_err(|e| format!("layer: {e}"))?;
            match run.tours_to_match_seed {
                Some(t) => println!("warm start: colony matched the seed at tour {t}"),
                None => println!("warm start: kept the seed as the incumbent"),
            }
            ("AntColony (warm)".to_string(), run.layering)
        }
        None => {
            // The cold path runs through the anytime Solver contract:
            // `--deadline-ms` bounds the search, `exact` certifies, and
            // `portfolio` reports its race.
            let spec = cli_algo_spec(algo_name, seed, threads)?;
            let solver = spec.solver();
            let display = spec.build().name().to_string();
            let solution = solver.solve(&oriented.dag, &widths, deadline);
            report_solution(&solution);
            (display, solution.layering)
        }
    };
    let m = LayeringMetrics::compute(&oriented.dag, &layering, &widths);
    println!(
        "{}: height {}, width {:.2} (excl. dummies {:.2}), {} dummies, edge density {}",
        name, m.height, m.width, m.width_excl_dummies, m.dummy_count, m.edge_density
    );
    for (i, layer) in layering.layers().iter().enumerate().rev() {
        let names: Vec<&str> = layer.iter().map(|v| labels[v.index()].as_str()).collect();
        println!("  L{:<3} {}", i + 1, names.join(" "));
    }
    if let Some(out) = flags.get("json-out") {
        std::fs::write(out, layering_json(&layering)).map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote {out}");
    }
    Ok(())
}

/// Prints the anytime-contract side of a cold solve: certification,
/// deadline truncation, and (for the portfolio) the per-member race.
fn report_solution(solution: &Solution) {
    if solution.stopped_early {
        println!("note: deadline reached, best incumbent returned");
    }
    if solution.certified {
        println!("certified: exact search proved this layering optimal");
    }
    if let Some(race) = &solution.race {
        println!(
            "portfolio: winner {} (cost {:.2})",
            race.winner, solution.cost
        );
        for m in &race.members {
            let mut notes = String::new();
            if m.certified {
                notes.push_str(" certified");
            }
            if m.stopped_early {
                notes.push_str(" truncated");
            }
            println!(
                "  {:<12} cost {:>8.2}  {:>8} µs{}",
                m.solver, m.cost, m.micros, notes
            );
        }
    }
}

/// Encodes a layering as the `{"layers":[[ids…],…]}` JSON the server
/// speaks, suitable for a later `--warm-from`. The codec itself lives in
/// the `antlayer-client` crate — the same bytes a saved server response
/// carries.
fn layering_json(layering: &antlayer_layering::Layering) -> String {
    antlayer_client::encode_layers_json(layering)
}

/// Decodes a `--warm-from` file via the client crate's codec: either a
/// bare `[[ids…],…]` array or any object with a `layers` member (e.g. a
/// saved server response).
fn parse_layering_json(
    text: &str,
    node_count: usize,
) -> Result<antlayer_layering::Layering, String> {
    antlayer_client::parse_layers_json(text, node_count).map_err(|e| format!("warm-from: {e}"))
}

fn cmd_draw(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["algo", "svg", "seed", "threads"])?;
    let path = flags.positional.first().ok_or("draw: missing input file")?;
    let (graph, labels) = load_graph(path, flags.has("gml"))?;
    let algo = make_algorithm(
        flags.get("algo").unwrap_or("aco"),
        flags.get_parsed("seed", 1u64)?,
        flags.get_parsed("threads", 1usize)?,
    )?;
    let drawing = draw(&graph, algo.as_ref(), &PipelineOptions::default());
    println!("{}", drawing.to_ascii(|v| labels[v.index()].clone()));
    println!(
        "height {}, width {:.1}, {} dummies, {} crossings",
        drawing.metrics.height,
        drawing.metrics.width,
        drawing.metrics.dummy_count,
        drawing.crossings
    );
    if let Some(out) = flags.get("svg") {
        let svg = drawing.to_svg(|v| labels[v.index()].clone(), &SvgOptions::default());
        std::fs::write(out, svg).map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote {out}");
    }
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["n", "seed"])?;
    let n: usize = flags.get_parsed("n", 30)?;
    if n < 2 {
        return Err("gen: --n must be at least 2".into());
    }
    let seed: u64 = flags.get_parsed("seed", 0)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = att_like_graph(n, &mut rng);
    if flags.has("gml") {
        print!("{}", gml::write_gml(&dag, |v| v.index().to_string()));
    } else {
        print!("{}", dot::write_dot_ids(&dag));
    }
    Ok(())
}

fn cmd_suite(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["seed", "total"])?;
    let seed: u64 = flags.get_parsed("seed", 1)?;
    let total: usize = flags.get_parsed("total", 190)?;
    let suite = GraphSuite::att_like_scaled(seed, total);
    let mut table = Table::new(&["n", "graphs", "mean_m", "mean_lpl_height"]);
    for (gi, (n, mean_m, depth)) in suite.group_summaries().iter().enumerate() {
        table.push_row(vec![
            (*n).into(),
            suite.groups[gi].graphs.len().into(),
            (*mean_m).into(),
            (*depth).into(),
        ]);
    }
    println!(
        "AT&T-like suite (seed {seed}): {} graphs, m/n = {:.3}\n",
        suite.len(),
        suite.mean_edge_node_ratio()
    );
    print!("{}", table.to_aligned());
    Ok(())
}

/// Resolves a `--http`/`--live` flag value: a bare port binds the main
/// listener's host; a full `HOST:PORT` is taken verbatim.
fn aux_addr_flag(flags: &Flags, name: &str, main_addr: &str) -> Option<String> {
    flags.get(name).map(|v| {
        if v.contains(':') {
            v.to_string()
        } else {
            let host = main_addr
                .rsplit_once(':')
                .map(|(h, _)| h)
                .unwrap_or("127.0.0.1");
            format!("{host}:{v}")
        }
    })
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(
        args,
        &[
            "addr",
            "http",
            "live",
            "threads",
            "cache-cap",
            "cache-bytes",
            "cache-dir",
            "queue-cap",
            "shards",
            "max-conns",
            "refresh-every",
        ],
    )?;
    // Defaults come from the library's Default impls; flags override.
    let base = ServerConfig::default();
    let sched = SchedulerConfig::default();
    let addr = flags.get("addr").unwrap_or(&base.addr).to_string();
    let config = ServerConfig {
        http_addr: aux_addr_flag(&flags, "http", &addr),
        live_addr: aux_addr_flag(&flags, "live", &addr),
        addr,
        scheduler: SchedulerConfig {
            threads: flags.get_parsed("threads", sched.threads)?,
            max_queue_depth: flags.get_parsed("queue-cap", sched.max_queue_depth)?,
            cache_capacity: flags.get_parsed("cache-cap", sched.cache_capacity)?,
            cache_shards: flags.get_parsed("shards", sched.cache_shards)?,
            cache_byte_budget: match flags.get("cache-bytes") {
                Some(v) => Some(v.parse().map_err(|e| format!("--cache-bytes: {e}"))?),
                None => sched.cache_byte_budget,
            },
            cache_dir: flags.get("cache-dir").map(std::path::PathBuf::from),
            refresh_every: flags.get_parsed("refresh-every", sched.refresh_every)?,
        },
        max_connections: flags.get_parsed("max-conns", base.max_connections)?,
        ..base
    };
    let server = Server::bind(config).map_err(|e| format!("serve: bind failed: {e}"))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("serve: local addr: {e}"))?;
    let http_note = server
        .http_addr()
        .map(|a| format!(", HTTP on {a} (POST /v2, GET /metrics)"))
        .unwrap_or_default();
    let live_note = server
        .live_addr()
        .map(|a| format!(", live sessions on {a}"))
        .unwrap_or_default();
    eprintln!(
        "antlayer serve: listening on {addr}{http_note}{live_note} ({} worker threads); \
         send newline-delimited JSON, e.g. {{\"op\":\"ping\"}}",
        server.scheduler().threads()
    );
    server.run();
    Ok(())
}

fn cmd_route(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(
        args,
        &[
            "addr",
            "http",
            "shards",
            "vnodes",
            "probe-ms",
            "max-conns",
            "replicas",
        ],
    )?;
    let shards: Vec<String> = flags
        .get("shards")
        .ok_or("route: --shards host:port,host:port[,...] is required")?
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if shards.is_empty() {
        return Err("route: --shards must name at least one backend".into());
    }
    let base = RouterConfig::default();
    let addr = flags.get("addr").unwrap_or("127.0.0.1:4700").to_string();
    let config = RouterConfig {
        http_addr: aux_addr_flag(&flags, "http", &addr),
        addr,
        shards,
        vnodes: flags.get_parsed("vnodes", base.vnodes)?,
        probe_interval: std::time::Duration::from_millis(
            flags.get_parsed("probe-ms", base.probe_interval.as_millis() as u64)?,
        ),
        max_connections: flags.get_parsed("max-conns", base.max_connections)?,
        replicas: flags.get_parsed("replicas", base.replicas)?,
        ..base
    };
    let n_shards = config.shards.len();
    let shard_list = config.shards.join(", ");
    let router = Router::bind(config).map_err(|e| format!("route: bind failed: {e}"))?;
    let addr = router
        .local_addr()
        .map_err(|e| format!("route: local addr: {e}"))?;
    let http_note = router
        .http_addr()
        .map(|a| format!(", HTTP on {a} (POST /v2, GET /metrics)"))
        .unwrap_or_default();
    eprintln!(
        "antlayer route: listening on {addr}{http_note}, hashing across {n_shards} shard(s): {shard_list}"
    );
    router.run();
    Ok(())
}

fn cmd_reshard(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["router", "join", "drain"])?;
    let router = flags
        .get("router")
        .ok_or("reshard: --router HOST:PORT is required")?;
    let mut client = antlayer_client::Client::connect(router)
        .map_err(|e| format!("reshard: connecting to router {router}: {e}"))?;
    let (verb, reply) = match (flags.get("join"), flags.get("drain")) {
        (Some(addr), None) => (
            "joined",
            client
                .shard_join(addr)
                .map_err(|e| format!("reshard: shard_join {addr}: {e}"))?,
        ),
        (None, Some(addr)) => (
            "drained",
            client
                .shard_drain(addr)
                .map_err(|e| format!("reshard: shard_drain {addr}: {e}"))?,
        ),
        _ => return Err("reshard: exactly one of --join ADDR or --drain ADDR is required".into()),
    };
    println!(
        "antlayer reshard: {verb}; topology epoch {}, {} cache entr{} transferred",
        reply.epoch,
        reply.moved,
        if reply.moved == 1 { "y" } else { "ies" }
    );
    for (i, shard) in reply.shards.iter().enumerate() {
        println!("  shard {i}  {}  {}", shard.addr, shard.state);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flags_parse_pairs_switches_positionals() {
        let f = Flags::parse(
            &s(&["--algo", "lpl", "--gml", "input.dot", "--seed", "9"]),
            &["algo", "seed"],
        )
        .unwrap();
        assert_eq!(f.get("algo"), Some("lpl"));
        assert_eq!(f.get("seed"), Some("9"));
        assert!(f.has("gml"));
        assert_eq!(f.positional, vec!["input.dot"]);
    }

    #[test]
    fn flags_missing_value_is_error() {
        assert!(Flags::parse(&s(&["--algo"]), &["algo"]).is_err());
    }

    #[test]
    fn flags_last_value_wins() {
        let f = Flags::parse(&s(&["--n", "1", "--n", "2"]), &["n"]).unwrap();
        assert_eq!(f.get_parsed::<usize>("n", 0).unwrap(), 2);
    }

    #[test]
    fn flags_parse_errors_on_bad_numbers() {
        let f = Flags::parse(&s(&["--n", "xyz"]), &["n"]).unwrap();
        assert!(f.get_parsed::<usize>("n", 0).is_err());
        let d = Flags::parse(&s(&[]), &["n"]).unwrap();
        assert_eq!(d.get_parsed::<usize>("n", 7).unwrap(), 7);
    }

    #[test]
    fn every_algorithm_name_is_constructible() {
        for name in [
            "lpl",
            "lpl-pl",
            "minwidth",
            "minwidth-pl",
            "cg",
            "ns",
            "aco",
            "exact",
            "portfolio",
        ] {
            assert!(make_algorithm(name, 1, 1).is_ok(), "{name}");
            assert!(cli_algo_spec(name, 1, 1).is_ok(), "{name} as a solver");
        }
        assert!(make_algorithm("nope", 1, 1).is_err());
    }

    #[test]
    fn threads_flag_reaches_the_colony_params() {
        // 0 = auto (the colony resolves it via default_threads); explicit
        // values pass through verbatim.
        assert_eq!(cli_aco_params(1, 0).threads, 0);
        assert_eq!(cli_aco_params(1, 3).threads, 3);
        assert_eq!(cli_aco_params(9, 3).seed, 9);
    }

    #[test]
    fn layering_json_round_trips() {
        let l = antlayer_layering::Layering::from_slice(&[3, 2, 1, 2]);
        let json = layering_json(&l);
        assert_eq!(json, "{\"layers\":[[2],[1,3],[0]]}\n");
        let back = parse_layering_json(&json, 4).unwrap();
        assert_eq!(back, l);
        // A bare array (without the object wrapper) is also accepted.
        let bare = parse_layering_json("[[2],[1,3],[0]]", 4).unwrap();
        assert_eq!(bare, l);
    }

    #[test]
    fn layering_json_rejects_malformed_input() {
        assert!(parse_layering_json("nonsense", 2).is_err());
        assert!(parse_layering_json("{\"other\":1}", 2).is_err());
        let dup = parse_layering_json("[[0],[0,1]]", 2).unwrap_err();
        assert!(dup.contains("two layers"), "{dup}");
        let out_of_range = parse_layering_json("[[0],[7]]", 2).unwrap_err();
        assert!(out_of_range.contains("out of range"), "{out_of_range}");
        let missing = parse_layering_json("[[0]]", 2).unwrap_err();
        assert!(missing.contains("no layer"), "{missing}");
    }

    #[test]
    fn unknown_subcommand_is_reported() {
        let err = run(&s(&["frobnicate"])).unwrap_err();
        assert!(err.contains("frobnicate"));
    }
}
