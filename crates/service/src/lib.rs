//! # antlayer-service
//!
//! The batch layout-serving subsystem: everything needed to run the
//! colony (and the baseline layering algorithms) as a long-lived server
//! instead of a one-shot process.
//!
//! Interactive diagram tooling lays out the same or near-same graphs
//! over and over under hard latency budgets. This crate turns that
//! workload shape into architecture, in four layers:
//!
//! | layer | module | contents |
//! |---|---|---|
//! | identity | [`digest`] | canonical encoding + 128-bit [`Digest`] of (graph, algorithm, params, width model) |
//! | memory | [`cache`] | sharded LRU [`ShardedCache`] with hit/miss/eviction counters |
//! | durability | [`persist`] | append-only [`SegmentLog`]: checksummed records, replay on boot, snapshot compaction |
//! | compute | [`scheduler`] | [`Scheduler`]: digest dedup, admission control, deadline-bounded fan-out over the worker pool |
//! | protocol | [`protocol`] | the typed codec: v1/v2 envelopes, [`protocol::Request`]/[`protocol::Response`]/[`protocol::ErrorKind`] |
//! | transport | [`transport`], [`server`] | framing ([`transport::Transport`]: line TCP + hand-rolled HTTP/1.1), [`Server`] + [`ServerHandle`] |
//! | sessions | [`session`], [`live`] | streaming edit sessions: [`SessionTable`] + [`OutboundQueue`] state, the epoll [`LiveReactor`] that pushes `session_update` frames |
//! | topology | [`router`] | consistent-hash [`HashRing`] + shard health, shared with the `antlayer-router` crate |
//!
//! Edits are first-class: a `layout_delta` request
//! ([`DeltaRequest`]) carries the digest of a
//! previously served layout plus an edge diff
//! ([`GraphDelta`](antlayer_graph::GraphDelta)); the scheduler applies
//! the diff to the cached base graph, warm-starts the colony from the
//! base layering (repaired onto the edited DAG), and caches the result
//! under the edited request's own canonical digest — so an interactive
//! editing session is a chain of warm, mostly-repair runs instead of
//! cold searches.
//!
//! Deadlines plug into the colony's anytime mode
//! ([`AcoParams::time_budget`](antlayer_aco::AcoParams::time_budget) /
//! [`Colony::run_until`](antlayer_aco::Colony::run_until)): when the
//! budget expires mid-search the best layering so far is returned —
//! valid by construction — and deliberately **not** cached, so impatient
//! callers never degrade what patient callers see.
//!
//! ## Library quickstart
//!
//! ```
//! use antlayer_graph::DiGraph;
//! use antlayer_service::{AlgoSpec, LayoutRequest, Scheduler, SchedulerConfig, Source};
//!
//! let scheduler = Scheduler::new(SchedulerConfig::default());
//! let graph = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
//! let request = LayoutRequest::new(graph, AlgoSpec::parse("aco", 7).unwrap());
//!
//! let first = scheduler.submit(request.clone()).unwrap().wait().unwrap();
//! let second = scheduler.submit(request).unwrap().wait().unwrap();
//! assert_eq!(second.source, Source::CacheHit);
//! assert_eq!(first.result.layering, second.result.layering);
//! ```
//!
//! ## Server quickstart
//!
//! Start `antlayer serve --addr 127.0.0.1:4617` (CLI) or
//! [`Server::bind`](server::Server::bind) + `spawn` (library), then
//! speak newline-delimited JSON:
//!
//! ```text
//! → {"op":"layout","algo":"aco","nodes":4,"edges":[[0,1],[1,2],[2,3]]}
//! ← {"ok":true,"digest":"…","source":"computed","height":4,…}
//! → {"op":"stats"}
//! ← {"ok":true,"cache_hits":0,"computed":1,…}
//! ```
//!
//! When one process's memory is not enough, run several `antlayer serve`
//! shards behind `antlayer route`: the [`router`] module holds the
//! consistent-hash ring and shard-health primitives, the
//! `antlayer-router` crate the TCP front that uses them. Clients speak
//! the exact same protocol to the router. The complete wire reference
//! lives in `docs/PROTOCOL.md`, the design in `docs/ARCHITECTURE.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod digest;
pub mod live;
pub mod persist;
pub mod protocol;
pub mod router;
pub mod scheduler;
pub mod server;
pub mod session;
pub mod transport;

pub use cache::{CacheCounters, ShardedCache};
pub use digest::{request_digest, CanonicalHasher, Digest};
pub use live::{LiveReactor, LiveStopper, LiveTuning};
pub use persist::{ReplayReport, SegmentLog};
pub use protocol::{CacheEntry, Envelope, ErrorKind, LayoutReply, Request, Response, WireError};
pub use router::{HashRing, ShardHealth};
pub use scheduler::{
    AlgoSpec, DeltaRequest, LayoutRequest, LayoutResponse, LayoutResult, Scheduler,
    SchedulerConfig, SchedulerCounters, ServiceError, Source, Ticket,
};
pub use server::{Server, ServerConfig, ServerHandle, ServiceCore, SLOW_LOG_CAPACITY};
pub use session::{OutboundQueue, SessionMetrics, SessionTable};
pub use transport::{Handler, HttpTransport, LineTransport, Transport};
