//! The batch scheduler: digest-level dedup, admission control, and
//! deadline-bounded fan-out over the worker pool.
//!
//! A submitted [`LayoutRequest`] goes through three gates:
//!
//! 1. **In-flight coalescing** — if an identical request (same
//!    [`Digest`]) is already being computed, the new caller is attached
//!    to the running job instead of queuing a duplicate;
//! 2. **Cache** — a stored result is returned immediately;
//! 3. **Admission control** — if the number of queued-or-running jobs is
//!    at the configured cap the request is rejected with
//!    [`ServiceError::Overloaded`] (callers retry with backoff) rather
//!    than growing an unbounded queue.
//!
//! Jobs run on the crate-shared [`WorkerPool`]; each job computes once
//! and fans the `Arc`ed result out to every attached caller. Requests
//! carry an optional deadline measured from submission: the ACO colony
//! receives it as an absolute instant and returns its anytime best when
//! the clock runs out. Truncated runs are delivered but **not** cached,
//! and deadline-bounded requests coalesce only with other bounded
//! requests — a deadline must never poison what patient callers see,
//! neither through the cache nor through a shared in-flight job.

use crate::cache::{CacheCounters, ShardedCache};
use crate::digest::{request_digest, Digest};
use antlayer_aco::{AcoLayering, AcoParams, Portfolio};
use antlayer_graph::{DiGraph, GraphDelta};
use antlayer_layering::{
    AsAlgorithm, CoffmanGraham, Constructive, Exact, Layering, LayeringAlgorithm, LayeringMetrics,
    LongestPath, MinWidth, NetworkSimplex, Promote, RaceReport, Refined, Solver, WidthModel,
};
use antlayer_obs::{Counter, Histogram, Registry};
use antlayer_parallel::WorkerPool;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Which layering algorithm a request asks for.
///
/// The string forms accepted by [`AlgoSpec::parse`] match the CLI:
/// `lpl`, `lpl-pl`, `minwidth`, `minwidth-pl`, `cg`, `ns`, `aco`,
/// `exact`, `portfolio`.
#[derive(Clone, Debug, PartialEq)]
pub enum AlgoSpec {
    /// Longest-path layering.
    LongestPath,
    /// Longest-path + promotion refinement.
    LplPromote,
    /// MinWidth heuristic.
    MinWidth,
    /// MinWidth + promotion refinement.
    MinWidthPromote,
    /// Coffman–Graham with the given width bound.
    CoffmanGraham(u32),
    /// Network simplex (minimum total edge span).
    NetworkSimplex,
    /// The paper's ant colony with full parameters.
    Aco(AcoParams),
    /// The size-capped exact branch and bound (certifies optimality).
    Exact,
    /// The solver portfolio: constructive incumbents, size-capped exact
    /// certification, and a warm-started colony raced per request; the
    /// parameters feed the colony member.
    Portfolio(AcoParams),
}

impl AlgoSpec {
    /// Parses a CLI-style algorithm name; `seed` feeds the ACO and
    /// portfolio variants.
    pub fn parse(name: &str, seed: u64) -> Result<AlgoSpec, String> {
        Ok(match name {
            "lpl" => AlgoSpec::LongestPath,
            "lpl-pl" => AlgoSpec::LplPromote,
            "minwidth" => AlgoSpec::MinWidth,
            "minwidth-pl" => AlgoSpec::MinWidthPromote,
            "cg" => AlgoSpec::CoffmanGraham(4),
            "ns" => AlgoSpec::NetworkSimplex,
            "aco" => AlgoSpec::Aco(AcoParams::default().with_seed(seed)),
            "exact" => AlgoSpec::Exact,
            "portfolio" => AlgoSpec::Portfolio(AcoParams::default().with_seed(seed)),
            other => return Err(format!("unknown algorithm '{other}'")),
        })
    }

    /// Canonical name for digests and responses. Parameters that change
    /// the result are part of the name (`cg:4`) or hashed separately
    /// (ACO params).
    pub fn canonical_name(&self) -> String {
        match self {
            AlgoSpec::LongestPath => "lpl".into(),
            AlgoSpec::LplPromote => "lpl-pl".into(),
            AlgoSpec::MinWidth => "minwidth".into(),
            AlgoSpec::MinWidthPromote => "minwidth-pl".into(),
            AlgoSpec::CoffmanGraham(w) => format!("cg:{w}"),
            AlgoSpec::NetworkSimplex => "ns".into(),
            AlgoSpec::Aco(_) => "aco".into(),
            AlgoSpec::Exact => "exact".into(),
            AlgoSpec::Portfolio(_) => "portfolio".into(),
        }
    }

    fn aco_params(&self) -> Option<&AcoParams> {
        match self {
            AlgoSpec::Aco(p) | AlgoSpec::Portfolio(p) => Some(p),
            _ => None,
        }
    }

    /// Instantiates the algorithm. Deadline-free view of
    /// [`AlgoSpec::solver`] for callers (CLI `draw`, benches) that want
    /// a plain [`LayeringAlgorithm`].
    pub fn build(&self) -> Box<dyn LayeringAlgorithm> {
        match self {
            AlgoSpec::LongestPath => Box::new(LongestPath),
            AlgoSpec::LplPromote => Box::new(Refined::new(LongestPath, Promote::new())),
            AlgoSpec::MinWidth => Box::new(MinWidth::new()),
            AlgoSpec::MinWidthPromote => Box::new(Refined::new(MinWidth::new(), Promote::new())),
            AlgoSpec::CoffmanGraham(w) => Box::new(CoffmanGraham::new(*w as usize)),
            AlgoSpec::NetworkSimplex => Box::new(NetworkSimplex),
            AlgoSpec::Aco(p) => Box::new(AcoLayering::new(p.clone())),
            AlgoSpec::Exact => Box::new(AsAlgorithm(Exact::default())),
            AlgoSpec::Portfolio(p) => Box::new(AsAlgorithm(Portfolio::new(p.clone()))),
        }
    }

    /// Instantiates the solver behind the anytime contract. The single
    /// construction point shared by the scheduler and the CLI — adding
    /// a solver means touching [`AlgoSpec::parse`],
    /// [`AlgoSpec::canonical_name`], and this.
    pub fn solver(&self) -> Box<dyn Solver> {
        match self {
            AlgoSpec::Aco(p) => Box::new(AcoLayering::new(p.clone())),
            AlgoSpec::Exact => Box::new(Exact::default()),
            AlgoSpec::Portfolio(p) => Box::new(Portfolio::new(p.clone())),
            constructive => Box::new(Constructive::from_boxed(
                constructive.canonical_name(),
                constructive.build(),
            )),
        }
    }
}

/// One layout request.
#[derive(Clone, Debug)]
pub struct LayoutRequest {
    /// The input graph; cycles are handled by the pipeline's
    /// acyclic-orientation pass.
    pub graph: DiGraph,
    /// Algorithm to run.
    pub algo: AlgoSpec,
    /// Dummy-vertex width of the width model.
    pub nd_width: f64,
    /// Optional wall-clock budget, measured from submission. Only the
    /// ACO algorithm is anytime; the baselines finish in microseconds
    /// and ignore it.
    pub deadline: Option<Duration>,
}

impl LayoutRequest {
    /// A request with unit widths, no deadline.
    pub fn new(graph: DiGraph, algo: AlgoSpec) -> Self {
        LayoutRequest {
            graph,
            algo,
            nd_width: 1.0,
            deadline: None,
        }
    }

    /// The request's canonical cache key.
    pub fn digest(&self) -> Digest {
        request_digest(
            &self.graph,
            &self.algo.canonical_name(),
            self.algo.aco_params(),
            &WidthModel::with_dummy_width(self.nd_width),
        )
    }
}

/// An incremental re-layout request: an edge diff against a previously
/// served layout.
///
/// Instead of a graph it carries the canonical digest of the *base*
/// request (returned in every layout response) plus a [`GraphDelta`].
/// The scheduler resolves the base in the result cache, applies the
/// delta, warm-starts the colony from the base layering (repaired onto
/// the edited graph) and caches the result under the edited request's
/// own canonical digest — so a chain of edits stays hot, each response's
/// digest serving as the next edit's base.
///
/// The algorithm/width fields describe the *edited* request (they enter
/// its digest); callers normally repeat the base request's values.
#[derive(Clone, Debug)]
pub struct DeltaRequest {
    /// Digest of the base request whose cached layering seeds the run.
    pub base: Digest,
    /// The edge edit to apply to the base graph.
    pub delta: GraphDelta,
    /// Algorithm to run on the edited graph.
    pub algo: AlgoSpec,
    /// Dummy-vertex width of the width model.
    pub nd_width: f64,
    /// Optional wall-clock budget, measured from submission.
    pub deadline: Option<Duration>,
}

impl DeltaRequest {
    /// A delta request with unit widths, no deadline.
    pub fn new(base: Digest, delta: GraphDelta, algo: AlgoSpec) -> Self {
        DeltaRequest {
            base,
            delta,
            algo,
            nd_width: 1.0,
            deadline: None,
        }
    }
}

/// The immutable, cacheable outcome of one layout computation.
#[derive(Clone, Debug)]
pub struct LayoutResult {
    /// The request digest this result answers.
    pub digest: Digest,
    /// The request's input graph, kept so a later `layout_delta` can
    /// apply an edge diff to this entry and warm-start from
    /// [`layering`](Self::layering) — the cache entry is the whole base
    /// an edit chain builds on.
    pub graph: DiGraph,
    /// The computed layering over the acyclically-oriented graph.
    pub layering: Layering,
    /// Metrics of the layering.
    pub metrics: LayeringMetrics,
    /// The request's node/dummy width ratio — part of the digest
    /// identity, retained so the entry can be re-encoded as a portable
    /// [`CacheEntry`](crate::protocol::CacheEntry) for the segment log
    /// and for replication.
    pub nd_width: f64,
    /// Number of edges reversed to break cycles in the input.
    pub reversed_edges: usize,
    /// Whether a deadline truncated the search (never cached when true).
    pub stopped_early: bool,
    /// Whether the colony was warm-started from a previous layering.
    pub seeded: bool,
    /// Whether the result is certified optimal for the paper's cost
    /// `H + W` (the exact search completed for this graph).
    pub certified: bool,
    /// Per-member race outcome when the solver was the portfolio.
    pub race: Option<RaceReport>,
    /// Wall time of the computation in microseconds.
    pub compute_micros: u64,
    /// How many warm-started edits deep this result is: `0` for a cold
    /// solve (or a restored entry — its provenance is unknown), base
    /// chain + 1 for a warm one. Drives the periodic cold refresh: a
    /// long edit chain inherits its first optimum's basin, so every
    /// [`SchedulerConfig::refresh_every`] links the scheduler re-solves
    /// from scratch too and keeps the better of the two.
    pub chain_len: u32,
    /// Whether this result came from a cold refresh that beat the warm
    /// chain's incumbent (implies `chain_len == 0` on a delta request).
    pub refreshed: bool,
}

impl LayoutResult {
    /// Rough resident size of this entry for the cache byte gauge: the
    /// graph's edge list plus the layering's per-node assignment, with a
    /// small fixed overhead. An estimator, not an exact measurement —
    /// the gauge exists to spot runaway growth, not to bill memory.
    pub fn approx_bytes(&self) -> u64 {
        64 + self.graph.node_count() as u64 * 12 + self.graph.edge_count() as u64 * 16
    }
}

/// How a response was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// Served from the result cache without computing.
    CacheHit,
    /// Computed by the job this caller submitted.
    Computed,
    /// Computed warm-started from a cached base layering
    /// (`layout_delta`).
    Warm,
    /// Attached to an identical in-flight job another caller submitted.
    Coalesced,
}

impl Source {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Source::CacheHit => "hit",
            Source::Computed => "computed",
            Source::Warm => "warm",
            Source::Coalesced => "coalesced",
        }
    }
}

/// A completed response: the shared result plus per-request provenance.
#[derive(Clone, Debug)]
pub struct LayoutResponse {
    /// The (possibly shared) result.
    pub result: Arc<LayoutResult>,
    /// Where the result came from.
    pub source: Source,
    /// Microseconds the job spent queued before a worker picked it up
    /// (`0` for cache hits, which never queue). Coalesced callers see
    /// the computing job's queue wait — they shared its queue.
    pub queue_us: u64,
}

/// Why a request was not admitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The scheduler's queue-depth cap is reached; retry with backoff.
    Overloaded {
        /// Jobs queued or running at rejection time.
        depth: usize,
        /// The configured cap.
        cap: usize,
    },
    /// A `layout_delta` referenced a base digest that is not (or no
    /// longer) in the cache; the client should resubmit a full layout.
    BaseNotFound(Digest),
    /// The request is malformed (bad algorithm, width, or parameters).
    InvalidRequest(String),
    /// The request's graph shape is invalid: self-loops, duplicate
    /// edges, endpoints out of range, or a delta that does not apply to
    /// its base. The same structured kind whether the graph arrived
    /// inline (`layout`) or as an edge diff (`layout_delta`).
    InvalidGraph(String),
    /// The computing job disappeared (its worker panicked).
    Internal(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { depth, cap } => {
                write!(f, "overloaded: {depth} jobs in flight (cap {cap})")
            }
            ServiceError::BaseNotFound(digest) => {
                write!(
                    f,
                    "base not found: {digest} is not cached; resubmit a full layout"
                )
            }
            ServiceError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
            ServiceError::InvalidGraph(m) => write!(f, "invalid graph: {m}"),
            ServiceError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Scheduler tuning knobs.
#[derive(Clone, Debug)]
pub struct SchedulerConfig {
    /// Worker threads computing layouts (`0` = all available
    /// parallelism, with a sanity cap of 64).
    pub threads: usize,
    /// Maximum queued-or-running jobs before admission rejects.
    pub max_queue_depth: usize,
    /// Total cached results.
    pub cache_capacity: usize,
    /// Cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// Soft byte budget for the result cache: crossing it logs one
    /// warning (re-armed once usage drops back under) and raises no
    /// error — the entry-count capacity stays the only eviction driver.
    /// `None` disables the warning.
    pub cache_byte_budget: Option<u64>,
    /// Directory for the cache's segment log (`--cache-dir`): cacheable
    /// results are appended as they are computed, boot replays the
    /// segments back into the cache, and compaction keeps the on-disk
    /// footprint proportional to the live set. `None` (the default)
    /// keeps the cache memory-only.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Cold-refresh period for warm-started edit chains: every
    /// `refresh_every`-th link additionally re-solves from scratch under
    /// the same deadline and keeps whichever layering costs less,
    /// resetting the chain when the cold solve wins. Long-lived edit
    /// sessions otherwise never leave the first solve's basin. `0`
    /// disables the refresh.
    pub refresh_every: u32,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            threads: 0,
            max_queue_depth: 256,
            cache_capacity: 4096,
            cache_shards: 8,
            cache_byte_budget: None,
            cache_dir: None,
            refresh_every: 32,
        }
    }
}

#[derive(Default)]
struct SchedulerStats {
    served: AtomicU64,
    computed: AtomicU64,
    coalesced: AtomicU64,
    rejected: AtomicU64,
}

/// A point-in-time copy of scheduler + cache counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct SchedulerCounters {
    /// Responses delivered (any source).
    pub served: u64,
    /// Jobs actually computed.
    pub computed: u64,
    /// Requests attached to an in-flight job.
    pub coalesced: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Jobs queued or running right now.
    pub inflight: usize,
    /// Warm edit-chain links that also ran a cold re-solve and kept the
    /// cold result (it cost less than the warm incumbent).
    pub cold_refresh: u64,
    /// Cold misses in a `submit_batch` that reused another batch
    /// member's canonical digest instead of re-canonicalizing.
    pub batch_shared: u64,
    /// Cache behaviour.
    pub cache: CacheCounters,
}

type Waiters = Vec<(mpsc::Sender<LayoutResponse>, Source)>;

/// In-flight key: the request digest plus its deadline class (`true` =
/// deadline-bounded). Bounded and unbounded requests never share a job,
/// so truncated results cannot leak to callers that did not opt in.
type InflightKey = (u128, bool);

/// The batch layout scheduler. Cheap to share: all state is behind
/// `Arc`s; clone-free sharing via `&Scheduler` is the intended use.
pub struct Scheduler {
    cfg: SchedulerConfig,
    pool: WorkerPool,
    cache: Arc<ShardedCache<Arc<LayoutResult>>>,
    inflight: Arc<Mutex<HashMap<InflightKey, Waiters>>>,
    depth: Arc<AtomicUsize>,
    stats: Arc<SchedulerStats>,
    metrics: Arc<Registry>,
    queue_wait_us: Arc<Histogram>,
    compute_us: Arc<Histogram>,
    colony_stopped_early: Arc<Counter>,
    colony_seeded: Arc<Counter>,
    solver_certified: Arc<Counter>,
    /// Entries restored into the cache without computing: segment-log
    /// replay at boot plus installed `cache_put` replicas.
    cache_restored: Arc<Counter>,
    /// Warm edit-chain links where the periodic cold re-solve won.
    cold_refresh: Arc<Counter>,
    /// Batch cold misses that shared another member's digest work.
    batch_shared: Arc<Counter>,
    /// The cache's segment log when `cache_dir` is configured.
    persist: Option<Arc<crate::persist::SegmentLog>>,
    /// Latch for the byte-budget warning: set while over budget so the
    /// warning fires once per crossing, re-armed when usage drops back.
    bytes_warned: Arc<AtomicBool>,
}

/// A claim on a submitted request; [`Ticket::wait`] blocks for the
/// response.
pub struct Ticket {
    inner: TicketInner,
}

enum TicketInner {
    Ready(LayoutResponse),
    Pending(mpsc::Receiver<LayoutResponse>),
}

impl Ticket {
    /// Blocks until the response is available.
    pub fn wait(self) -> Result<LayoutResponse, ServiceError> {
        match self.inner {
            TicketInner::Ready(r) => Ok(r),
            TicketInner::Pending(rx) => rx
                .recv()
                .map_err(|_| ServiceError::Internal("layout worker vanished".into())),
        }
    }
}

impl Scheduler {
    /// Builds the scheduler, its worker pool, its cache, and the metric
    /// registry every layer above shares (the server adds its own
    /// request histogram to the same registry so `GET /metrics` renders
    /// one coherent page).
    pub fn new(cfg: SchedulerConfig) -> Self {
        let threads = if cfg.threads == 0 {
            antlayer_parallel::default_threads(64)
        } else {
            cfg.threads
        };
        let cache = Arc::new(ShardedCache::new(cfg.cache_capacity, cfg.cache_shards));
        let depth = Arc::new(AtomicUsize::new(0));
        let stats = Arc::new(SchedulerStats::default());
        let metrics = Arc::new(Registry::new());

        // The scheduler and cache already maintain their counters as
        // atomics; expose them as render-time collectors so the hot path
        // pays nothing for /metrics. Only genuinely new measurements
        // (latency histograms, colony outcome counters) get handles.
        let queue_wait_us = metrics.histogram(
            "scheduler_queue_wait_us",
            "microseconds a job waited in the queue before a worker picked it up",
        );
        let compute_us = metrics.histogram(
            "scheduler_compute_us",
            "microseconds a layout computation ran on a worker",
        );
        let colony_stopped_early = metrics.counter(
            "colony_stopped_early_total",
            "ACO runs truncated by a deadline",
        );
        let colony_seeded = metrics.counter(
            "colony_seeded_total",
            "ACO runs warm-started from a cached base layering",
        );
        let solver_certified = metrics.counter(
            "solver_certified_total",
            "layout results certified optimal by the exact search",
        );
        let cache_restored = metrics.counter(
            "cache_restored_total",
            "cache entries filled without computing: segment-log replay and cache_put installs",
        );
        let cold_refresh = metrics.counter(
            "cold_refresh_total",
            "warm edit-chain links where the periodic cold re-solve beat the warm incumbent",
        );
        let batch_shared = metrics.counter(
            "batch_shared_total",
            "batch cold misses that reused another member's canonical digest",
        );
        {
            let s = stats.clone();
            metrics.counter_fn("scheduler_served_total", "responses delivered", move || {
                s.served.load(Ordering::Relaxed)
            });
            let s = stats.clone();
            metrics.counter_fn("scheduler_computed_total", "jobs computed", move || {
                s.computed.load(Ordering::Relaxed)
            });
            let s = stats.clone();
            metrics.counter_fn(
                "scheduler_coalesced_total",
                "requests attached to an in-flight job",
                move || s.coalesced.load(Ordering::Relaxed),
            );
            let s = stats.clone();
            metrics.counter_fn(
                "scheduler_rejected_total",
                "requests rejected by admission control",
                move || s.rejected.load(Ordering::Relaxed),
            );
            let d = depth.clone();
            metrics.gauge_fn("scheduler_inflight", "jobs queued or running", move || {
                d.load(Ordering::Relaxed) as u64
            });
            let c = cache.clone();
            metrics.counter_fn("cache_hits_total", "result cache hits", move || {
                c.counters().hits
            });
            let c = cache.clone();
            metrics.counter_fn("cache_misses_total", "result cache misses", move || {
                c.counters().misses
            });
            let c = cache.clone();
            metrics.counter_fn(
                "cache_insertions_total",
                "result cache insertions",
                move || c.counters().insertions,
            );
            let c = cache.clone();
            metrics.counter_fn(
                "cache_evictions_total",
                "result cache evictions",
                move || c.counters().evictions,
            );
            let c = cache.clone();
            metrics.gauge_fn(
                "cache_bytes",
                "approximate bytes held by the result cache",
                move || c.bytes(),
            );
            let c = cache.clone();
            metrics.gauge_fn("cache_entries", "entries in the result cache", move || {
                c.len() as u64
            });
        }

        // Replay the segment log (if any) before the scheduler serves:
        // restored entries go through the same `insert_costed` +
        // `approx_bytes` path organic inserts use, so `cache_bytes` and
        // the byte budget see one consistent accounting.
        let bytes_warned = Arc::new(AtomicBool::new(false));
        let persist = cfg.cache_dir.as_deref().and_then(|dir| {
            let log = match crate::persist::SegmentLog::open(dir) {
                Ok(log) => Arc::new(log),
                Err(e) => {
                    eprintln!(
                        "warning: cannot open cache dir {}: {e}; persistence disabled",
                        dir.display()
                    );
                    return None;
                }
            };
            match log.replay() {
                Ok((entries, report)) => {
                    if report.damaged {
                        eprintln!(
                            "warning: cache segments in {} end in a torn or corrupt record; \
                             restored the {} entries before the damage",
                            dir.display(),
                            report.entries
                        );
                    }
                    for entry in &entries {
                        match crate::persist::restore_result(entry) {
                            Ok(result) => {
                                let bytes = result.approx_bytes();
                                cache.insert_costed(entry.digest, Arc::new(result), bytes);
                                cache_restored.inc();
                            }
                            Err(e) => eprintln!(
                                "warning: skipping cache record {}: {e}",
                                entry.digest
                            ),
                        }
                    }
                    if let Some(budget) = cfg.cache_byte_budget {
                        warn_if_over_budget(cache.bytes(), budget, &bytes_warned);
                    }
                }
                Err(e) => eprintln!(
                    "warning: cannot replay cache segments in {}: {e}; starting cold",
                    dir.display()
                ),
            }
            Some(log)
        });

        Scheduler {
            pool: WorkerPool::new(threads),
            cache,
            inflight: Arc::new(Mutex::new(HashMap::new())),
            depth,
            stats,
            metrics,
            queue_wait_us,
            compute_us,
            colony_stopped_early,
            colony_seeded,
            solver_certified,
            cache_restored,
            cold_refresh,
            batch_shared,
            persist,
            bytes_warned,
            cfg,
        }
    }

    /// Worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The metric registry this scheduler (and its cache) report into.
    /// The server layer registers its request histogram here and renders
    /// the whole registry for `GET /metrics`.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// Validates, dedups, admits, and enqueues one request.
    ///
    /// # Examples
    ///
    /// ```
    /// use antlayer_graph::DiGraph;
    /// use antlayer_service::{AlgoSpec, LayoutRequest, Scheduler, SchedulerConfig, Source};
    ///
    /// let scheduler = Scheduler::new(SchedulerConfig::default());
    /// let graph = DiGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
    /// let request = LayoutRequest::new(graph, AlgoSpec::parse("lpl", 1).unwrap());
    ///
    /// let first = scheduler.submit(request.clone()).unwrap().wait().unwrap();
    /// assert_eq!(first.source, Source::Computed);
    /// let second = scheduler.submit(request).unwrap().wait().unwrap();
    /// assert_eq!(second.source, Source::CacheHit); // same digest, no recompute
    /// ```
    pub fn submit(&self, request: LayoutRequest) -> Result<Ticket, ServiceError> {
        validate_request(&request)?;
        let digest = request.digest();
        self.submit_inner(request, None, digest)
    }

    /// Submits an incremental re-layout: resolves the base layering in
    /// the cache, applies the edge diff, and warm-starts the colony.
    ///
    /// Fails with [`ServiceError::BaseNotFound`] when the base digest has
    /// been evicted (or never existed) — the client's cue to fall back to
    /// a full `layout` — and with [`ServiceError::InvalidRequest`] when
    /// the delta does not apply to the base graph. The result is cached
    /// under the *edited* request's canonical digest, so a subsequent
    /// identical full request hits, and a subsequent edit can chain.
    pub fn submit_delta(&self, request: DeltaRequest) -> Result<Ticket, ServiceError> {
        // `peek`, not `get`: the base resolution keeps the entry hot but
        // is not a response served from the cache, so it must not count
        // as a hit in the stats clients use to size the cache.
        let base = self
            .cache
            .peek(request.base)
            .ok_or(ServiceError::BaseNotFound(request.base))?;
        // Graph-shape failures (self-loops, duplicates, out-of-range
        // endpoints, missing removals) get the same structured kind a bad
        // inline `layout` graph gets from the parser.
        let graph = request
            .delta
            .apply(&base.graph)
            .map_err(|e| ServiceError::InvalidGraph(format!("delta: {e}")))?;
        let full = LayoutRequest {
            graph,
            algo: request.algo,
            nd_width: request.nd_width,
            deadline: request.deadline,
        };
        validate_request(&full)?;
        let digest = full.digest();
        self.submit_inner(full, Some(base), digest)
    }

    /// `digest` must be `request.digest()` and the request must already
    /// have passed [`validate_request`] (digesting an invalid width model
    /// would panic); every caller validates before hashing, and batch
    /// admission reuses the digest for classification so the graph is
    /// hashed once.
    fn submit_inner(
        &self,
        request: LayoutRequest,
        warm: Option<Arc<LayoutResult>>,
        digest: Digest,
    ) -> Result<Ticket, ServiceError> {
        // Resolve the deadline to an absolute instant up front, before
        // any scheduler state changes: `checked_add` turns an
        // overflow-sized budget (e.g. `Duration::MAX`) into "unbounded"
        // instead of a panic that would wedge the in-flight entry.
        let deadline = request.deadline.and_then(|d| Instant::now().checked_add(d));
        // Jobs coalesce only within their deadline class: a truncated
        // (bounded) result must never reach a caller that did not accept
        // a deadline, and bounded callers should not block behind an
        // unbounded job they did not ask for. The digest excludes the
        // deadline, so the class is a second key component here.
        let bounded = deadline.is_some();
        let key = (digest.as_u128(), bounded);

        // Gate 1+2 under the in-flight lock so a finishing job cannot
        // slip between our cache miss and our entry insertion: jobs fill
        // the cache *before* taking this lock to drain their waiters.
        let mut inflight = self.inflight.lock();
        if let Some(waiters) = inflight.get_mut(&key) {
            let (tx, rx) = mpsc::channel();
            waiters.push((tx, Source::Coalesced));
            self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
            self.stats.served.fetch_add(1, Ordering::Relaxed);
            return Ok(Ticket {
                inner: TicketInner::Pending(rx),
            });
        }
        if let Some(result) = self.cache.get(digest) {
            self.stats.served.fetch_add(1, Ordering::Relaxed);
            return Ok(Ticket {
                inner: TicketInner::Ready(LayoutResponse {
                    result,
                    source: Source::CacheHit,
                    queue_us: 0,
                }),
            });
        }

        // Gate 3: admission control.
        let depth = self.depth.load(Ordering::Acquire);
        if depth >= self.cfg.max_queue_depth {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::Overloaded {
                depth,
                cap: self.cfg.max_queue_depth,
            });
        }
        self.depth.fetch_add(1, Ordering::AcqRel);
        let (tx, rx) = mpsc::channel();
        let source = if warm.is_some() {
            Source::Warm
        } else {
            Source::Computed
        };
        inflight.insert(key, vec![(tx, source)]);
        drop(inflight);

        let cache = self.cache.clone();
        let inflight = self.inflight.clone();
        let depth_counter = self.depth.clone();
        let stats = self.stats.clone();
        let queue_wait_us = self.queue_wait_us.clone();
        let compute_us = self.compute_us.clone();
        let colony_stopped_early = self.colony_stopped_early.clone();
        let colony_seeded = self.colony_seeded.clone();
        let solver_certified = self.solver_certified.clone();
        let cold_refresh = self.cold_refresh.clone();
        let bytes_warned = self.bytes_warned.clone();
        let byte_budget = self.cfg.cache_byte_budget;
        let refresh_every = self.cfg.refresh_every;
        let persist = self.persist.clone();
        let enqueued = Instant::now();
        self.pool.execute(move || {
            // The gap between enqueue and this first line is pure queue
            // wait: the pool picked the job up just now.
            let queue_us = enqueued.elapsed().as_micros() as u64;
            queue_wait_us.record(queue_us);
            // Contain panics from the layering algorithms: the entry must
            // leave the in-flight map and the depth must drop no matter
            // what, or the digest wedges and admission leaks permanently.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                compute(request, digest, deadline, warm.as_deref(), refresh_every)
            }));
            let result = match outcome {
                Ok(result) => {
                    let result = Arc::new(result);
                    compute_us.record(result.compute_micros);
                    if result.stopped_early {
                        colony_stopped_early.inc();
                    }
                    if result.seeded {
                        colony_seeded.inc();
                    }
                    if result.certified {
                        solver_certified.inc();
                    }
                    if result.refreshed {
                        cold_refresh.inc();
                    }
                    if !result.stopped_early {
                        cache.insert_costed(digest, result.clone(), result.approx_bytes());
                        if let Some(budget) = byte_budget {
                            warn_if_over_budget(cache.bytes(), budget, &bytes_warned);
                        }
                        if let Some(log) = &persist {
                            persist_insert(log, &cache, &result);
                        }
                    }
                    stats.computed.fetch_add(1, Ordering::Relaxed);
                    Some(result)
                }
                Err(_) => None,
            };
            let waiters = inflight.lock().remove(&key).unwrap_or_default();
            depth_counter.fetch_sub(1, Ordering::AcqRel);
            match result {
                Some(result) => {
                    for (tx, source) in waiters {
                        // A waiter that hung up is not an error.
                        let _ = tx.send(LayoutResponse {
                            result: result.clone(),
                            source,
                            queue_us,
                        });
                    }
                }
                // Dropping the senders makes every Ticket::wait return
                // `Internal("layout worker vanished")`.
                None => drop(waiters),
            }
        });
        self.stats.served.fetch_add(1, Ordering::Relaxed);
        Ok(Ticket {
            inner: TicketInner::Pending(rx),
        })
    }

    /// Submits a batch; per-request admission (a rejected request does
    /// not poison the rest of the batch). Duplicate digests within the
    /// batch coalesce onto one computation like any other duplicates.
    ///
    /// Admission order is **hits before cold misses**: the batch is first
    /// classified against the cache by digest, every already-cached
    /// request is served (its ticket resolves immediately), and only then
    /// are the cold requests enqueued onto the worker pool. A batch that
    /// mixes one slow cold layout with many cached ones therefore never
    /// queues the cached responses behind the computation, and a
    /// contended admission window is spent entirely on requests that
    /// actually need compute. Tickets are returned in the *original*
    /// batch positions regardless of the admission order.
    pub fn submit_batch(&self, requests: Vec<LayoutRequest>) -> Vec<Result<Ticket, ServiceError>> {
        let n = requests.len();
        let mut out: Vec<Option<Result<Ticket, ServiceError>>> = (0..n).map(|_| None).collect();
        // Digest once per request; reused for classification and submit.
        // Classify with `peek`, not `get`: the pre-pass must not inflate
        // the hit/miss statistics — the authoritative lookup happens
        // inside `submit_inner`, which also handles the race of an entry
        // being evicted (or appearing) between the two steps. Invalid
        // requests are rejected in place and sit out the reorder.
        let mut indexed: Vec<(bool, usize, Digest, LayoutRequest)> = Vec::with_capacity(n);
        // Shared preprocessing across the batch: canonicalizing a digest
        // sorts and hashes the whole edge list, and fan-out batches
        // routinely repeat a request verbatim. Requests that compare
        // equal to an earlier member (same raw edge sequence, algorithm,
        // width, deadline class) reuse its digest instead of
        // re-canonicalizing; the cheap shape key keeps the full
        // comparison off the unique-request path.
        let mut digested: HashMap<(usize, usize, u64), Vec<usize>> = HashMap::new();
        for (i, r) in requests.into_iter().enumerate() {
            match validate_request(&r) {
                Ok(()) => {
                    let shape = (
                        r.graph.node_count(),
                        r.graph.edge_count(),
                        r.nd_width.to_bits(),
                    );
                    let twins = digested.entry(shape).or_default();
                    // The digest excludes the deadline, so deadline-only
                    // differences still share.
                    let prior = twins.iter().copied().find(|&j| {
                        let (_, _, _, p) = &indexed[j];
                        p.algo == r.algo && p.graph.edges().eq(r.graph.edges())
                    });
                    let d = match prior {
                        Some(j) => {
                            self.batch_shared.inc();
                            indexed[j].2
                        }
                        None => r.digest(),
                    };
                    twins.push(indexed.len());
                    indexed.push((self.cache.peek(d).is_none(), i, d, r));
                }
                Err(e) => out[i] = Some(Err(e)),
            }
        }
        // Stable partition: hits first, original order within each class.
        indexed.sort_by_key(|&(miss, i, _, _)| (miss, i));
        for (_, i, digest, request) in indexed {
            out[i] = Some(self.submit_inner(request, None, digest));
        }
        out.into_iter()
            .map(|t| t.expect("every position filled"))
            .collect()
    }

    /// Installs an already-computed entry (the `cache_put` op: a
    /// replication write-through or read-repair) without computing.
    /// Returns `Ok(false)` when the digest is already cached — the put
    /// is idempotent and the resident entry wins. The restored result
    /// is charged through the same `approx_bytes` path as organic
    /// inserts and appended to the segment log like one.
    pub fn install(&self, entry: &crate::protocol::CacheEntry) -> Result<bool, ServiceError> {
        if self.cache.peek(entry.digest).is_some() {
            return Ok(false);
        }
        let result = Arc::new(
            crate::persist::restore_result(entry).map_err(ServiceError::InvalidRequest)?,
        );
        let bytes = result.approx_bytes();
        self.cache.insert_costed(entry.digest, result.clone(), bytes);
        self.cache_restored.inc();
        if let Some(budget) = self.cfg.cache_byte_budget {
            warn_if_over_budget(self.cache.bytes(), budget, &self.bytes_warned);
        }
        if let Some(log) = &self.persist {
            persist_insert(log, &self.cache, &result);
        }
        Ok(true)
    }

    /// Entries filled without computing (segment-log replay at boot plus
    /// installed `cache_put`s) — the `cache_restored` stats field.
    pub fn restored(&self) -> u64 {
        self.cache_restored.get()
    }

    /// One page of the cache in ascending digest order — the `cache_pull`
    /// op live resharding iterates. Returns up to `limit` portable
    /// entries with digests strictly above `cursor` (`None` = from the
    /// lowest), the resume cursor, and whether anything remains. The
    /// scan snapshots under the cache's shard locks like compaction
    /// does; entries installed behind the cursor after their page was
    /// served belong to the *next* sweep, which is why transfers finish
    /// with a quiescent pass.
    pub fn export_page(
        &self,
        cursor: Option<Digest>,
        limit: u64,
    ) -> (Vec<crate::protocol::CacheEntry>, Option<Digest>, bool) {
        let floor = cursor.map(|d| d.as_u128());
        let mut live: Vec<(u128, Arc<LayoutResult>)> = Vec::new();
        self.cache.for_each(|digest, result| {
            let key = digest.as_u128();
            if floor.map_or(true, |f| key > f) {
                live.push((key, result.clone()));
            }
        });
        live.sort_unstable_by_key(|&(key, _)| key);
        let remaining = live.len() as u64 > limit;
        live.truncate(limit as usize);
        let entries: Vec<crate::protocol::CacheEntry> = live
            .iter()
            .map(|(_, result)| crate::protocol::CacheEntry::of_result(result))
            .collect();
        let next = entries.last().map(|e| e.digest);
        (entries, next, !remaining)
    }

    /// Forces a segment-log compaction now; production compaction
    /// triggers automatically from log growth, this handle exists for
    /// fault-injection schedules. Returns `false` (doing nothing) when
    /// no `cache_dir` is configured.
    pub fn compact_cache(&self) -> bool {
        match &self.persist {
            Some(log) => {
                compact_segments(log, &self.cache);
                true
            }
            None => false,
        }
    }

    /// Blocks until every queued job has finished.
    pub fn drain(&self) {
        self.pool.wait();
    }

    /// Point-in-time counters.
    pub fn counters(&self) -> SchedulerCounters {
        SchedulerCounters {
            served: self.stats.served.load(Ordering::Relaxed),
            computed: self.stats.computed.load(Ordering::Relaxed),
            coalesced: self.stats.coalesced.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            inflight: self.depth.load(Ordering::Relaxed),
            cold_refresh: self.cold_refresh.get(),
            batch_shared: self.batch_shared.get(),
            cache: self.cache.counters(),
        }
    }
}

/// Appends one freshly cached result to the segment log, compacting
/// first when the log has outgrown the live set. Failures warn and move
/// on: durability is an optimization, serving must not depend on disk.
fn persist_insert(
    log: &crate::persist::SegmentLog,
    cache: &ShardedCache<Arc<LayoutResult>>,
    result: &LayoutResult,
) {
    if log.should_compact(cache.len()) {
        compact_segments(log, cache);
    }
    if let Err(e) = log.append(&crate::protocol::CacheEntry::of_result(result)) {
        eprintln!("warning: cache segment append failed: {e}");
    }
}

/// Rewrites the live cache into the snapshot segment and truncates the
/// log.
fn compact_segments(log: &crate::persist::SegmentLog, cache: &ShardedCache<Arc<LayoutResult>>) {
    let mut live = Vec::with_capacity(cache.len());
    cache.for_each(|_, result| live.push(crate::protocol::CacheEntry::of_result(result)));
    if let Err(e) = log.compact(&live) {
        eprintln!("warning: cache compaction failed: {e}");
    }
}

/// Logs one warning per budget crossing: the latch sets when usage
/// first exceeds the budget and re-arms once it drops back under, so a
/// cache hovering above its budget does not spam a line per insert.
/// Returns whether this call emitted the warning (for tests).
fn warn_if_over_budget(bytes: u64, budget: u64, warned: &AtomicBool) -> bool {
    if bytes > budget {
        if !warned.swap(true, Ordering::Relaxed) {
            eprintln!(
                "warning: layout cache holds ~{bytes} bytes, over its {budget}-byte budget; \
                 consider lowering --cache-cap or raising --cache-bytes"
            );
            return true;
        }
    } else {
        warned.store(false, Ordering::Relaxed);
    }
    false
}

/// Rejects malformed requests before anything hashes the graph (the
/// canonical digest builds a [`WidthModel`], which refuses non-finite
/// widths by panicking).
fn validate_request(request: &LayoutRequest) -> Result<(), ServiceError> {
    if !request.nd_width.is_finite() || request.nd_width < 0.0 {
        return Err(ServiceError::InvalidRequest(format!(
            "nd_width must be finite and non-negative, got {}",
            request.nd_width
        )));
    }
    if let AlgoSpec::Aco(p) | AlgoSpec::Portfolio(p) = &request.algo {
        p.validate().map_err(ServiceError::InvalidRequest)?;
    }
    Ok(())
}

/// Runs the requested solver under the anytime contract; cycles in the
/// input are oriented away first, exactly as the CLI does. With a `warm`
/// base (the `layout_delta` path), the base layering is repaired onto
/// the edited DAG and handed to [`Solver::solve_seeded`] — the colony
/// installs it as its incumbent, the portfolio races it as a member, and
/// the single-pass solvers ignore it.
///
/// Every `refresh_every`-th link of a warm chain additionally runs a
/// cold solve under the *same* absolute deadline and keeps whichever
/// layering costs less: a long edit chain stays anchored to its first
/// solve's basin of attraction, and the periodic cold run is the
/// scheduler's only chance to escape it. A cold win resets the chain
/// (and marks the result `refreshed`), so the next refresh is counted
/// from the new basin.
fn compute(
    request: LayoutRequest,
    digest: Digest,
    deadline: Option<Instant>,
    warm: Option<&LayoutResult>,
    refresh_every: u32,
) -> LayoutResult {
    let started = Instant::now();
    let oriented = antlayer_sugiyama::acyclic_orientation(&request.graph);
    let wm = WidthModel::with_dummy_width(request.nd_width);
    let solver = request.algo.solver();
    let (solution, chain_len, refreshed) = match warm {
        Some(base) => {
            let seed = base.layering.repaired(&oriented.dag);
            let warm_solution = solver.solve_seeded(&oriented.dag, &wm, &seed, deadline);
            let link = base.chain_len.saturating_add(1);
            if refresh_every > 0 && link % refresh_every == 0 {
                let cold = solver.solve(&oriented.dag, &wm, deadline);
                if cold.cost < warm_solution.cost {
                    (cold, 0, true)
                } else {
                    (warm_solution, link, false)
                }
            } else {
                (warm_solution, link, false)
            }
        }
        None => (solver.solve(&oriented.dag, &wm, deadline), 0, false),
    };
    let metrics = LayeringMetrics::compute(&oriented.dag, &solution.layering, &wm);
    LayoutResult {
        digest,
        // Moved, not cloned: the request is consumed, so carrying the
        // graph in the result costs nothing extra even for truncated
        // runs that never reach the cache.
        graph: request.graph,
        layering: solution.layering,
        metrics,
        nd_width: request.nd_width,
        reversed_edges: oriented.reversed.len(),
        stopped_early: solution.stopped_early,
        seeded: solution.seeded,
        certified: solution.certified,
        race: solution.race,
        compute_micros: started.elapsed().as_micros() as u64,
        chain_len,
        refreshed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antlayer_graph::{generate, GraphDelta};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_graph(seed: u64) -> DiGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        generate::random_dag_with_edges(20, 30, &mut rng).into_graph()
    }

    fn quick_aco(seed: u64) -> AlgoSpec {
        AlgoSpec::Aco(AcoParams::default().with_colony(3, 3).with_seed(seed))
    }

    #[test]
    fn computed_then_cached() {
        let s = Scheduler::new(SchedulerConfig {
            threads: 2,
            ..Default::default()
        });
        let req = LayoutRequest::new(small_graph(1), quick_aco(1));
        let first = s.submit(req.clone()).unwrap().wait().unwrap();
        assert_eq!(first.source, Source::Computed);
        let second = s.submit(req).unwrap().wait().unwrap();
        assert_eq!(second.source, Source::CacheHit);
        assert_eq!(first.result.layering, second.result.layering);
        let c = s.counters();
        assert_eq!(c.computed, 1);
        assert_eq!(c.cache.hits, 1);
    }

    #[test]
    fn export_page_walks_the_cache_in_digest_order() {
        let s = Scheduler::new(SchedulerConfig {
            threads: 2,
            ..Default::default()
        });
        for seed in 1..=5 {
            s.submit(LayoutRequest::new(small_graph(seed), quick_aco(1)))
                .unwrap()
                .wait()
                .unwrap();
        }
        // Tiny pages concatenate to the whole cache, strictly ascending.
        let mut seen = Vec::new();
        let mut cursor = None;
        loop {
            let (entries, next, done) = s.export_page(cursor, 2);
            assert!(entries.len() <= 2);
            seen.extend(entries.iter().map(|e| e.digest.as_u128()));
            if done {
                break;
            }
            cursor = next;
            assert!(cursor.is_some(), "an unfinished page must carry a cursor");
        }
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(seen, sorted, "pages ascend without overlap");
        assert_eq!(seen.len(), 5);

        // The exported entries replay into a fresh scheduler via install
        // — the exact path a join transfer takes.
        let t = Scheduler::new(SchedulerConfig {
            threads: 1,
            ..Default::default()
        });
        let (entries, _, done) = s.export_page(None, 1024);
        assert!(done);
        for e in &entries {
            assert!(t.install(e).unwrap());
        }
        assert_eq!(t.restored(), 5);
    }

    #[test]
    fn distinct_requests_compute_separately() {
        let s = Scheduler::new(SchedulerConfig {
            threads: 2,
            ..Default::default()
        });
        let a = s
            .submit(LayoutRequest::new(small_graph(1), quick_aco(1)))
            .unwrap();
        let b = s
            .submit(LayoutRequest::new(small_graph(2), quick_aco(1)))
            .unwrap();
        let (a, b) = (a.wait().unwrap(), b.wait().unwrap());
        assert_ne!(a.result.digest, b.result.digest);
        assert_eq!(s.counters().computed, 2);
    }

    #[test]
    fn admission_rejects_past_cap() {
        // One slow job + cap 1: the second distinct request is rejected.
        let s = Scheduler::new(SchedulerConfig {
            threads: 1,
            max_queue_depth: 1,
            ..Default::default()
        });
        let mut slow = LayoutRequest::new(small_graph(3), quick_aco(3));
        slow.algo = AlgoSpec::Aco(AcoParams::default().with_colony(10, 50).with_seed(3));
        let ticket = s.submit(slow).unwrap();
        let other = LayoutRequest::new(small_graph(4), quick_aco(4));
        let mut rejected = false;
        match s.submit(other) {
            Err(ServiceError::Overloaded { cap: 1, .. }) => rejected = true,
            Err(e) => panic!("unexpected error {e}"),
            Ok(t) => {
                // The slow job may already have finished on a fast
                // machine; then admission correctly let this through.
                t.wait().unwrap();
            }
        }
        ticket.wait().unwrap();
        let c = s.counters();
        assert_eq!(c.rejected, u64::from(rejected));
    }

    #[test]
    fn identical_inflight_requests_coalesce() {
        let s = Scheduler::new(SchedulerConfig {
            threads: 1,
            ..Default::default()
        });
        // A moderately slow request submitted twice back to back: the
        // second attaches to the first's job.
        let req = LayoutRequest::new(
            small_graph(5),
            AlgoSpec::Aco(AcoParams::default().with_colony(8, 20).with_seed(5)),
        );
        let t1 = s.submit(req.clone()).unwrap();
        let t2 = s.submit(req).unwrap();
        let r1 = t1.wait().unwrap();
        let r2 = t2.wait().unwrap();
        assert_eq!(r1.result.digest, r2.result.digest);
        let c = s.counters();
        // Either coalesced (normal) or the first finished first and the
        // second hit the cache (fast machine) — never two computations.
        assert_eq!(c.computed, 1);
        assert_eq!(c.coalesced + c.cache.hits, 1);
        assert!(Arc::ptr_eq(&r1.result, &r2.result) || c.cache.hits == 1);
    }

    #[test]
    fn deadline_zero_is_served_but_not_cached() {
        let s = Scheduler::new(SchedulerConfig {
            threads: 1,
            ..Default::default()
        });
        let mut req = LayoutRequest::new(small_graph(6), quick_aco(6));
        req.deadline = Some(Duration::ZERO);
        let r = s.submit(req.clone()).unwrap().wait().unwrap();
        assert!(r.result.stopped_early);
        assert_eq!(s.cache.len(), 0, "truncated runs must not be cached");
        // The same request again recomputes (no poisoned hit).
        let r2 = s.submit(req).unwrap().wait().unwrap();
        assert_eq!(r2.source, Source::Computed);
    }

    #[test]
    fn duration_max_deadline_means_unbounded_not_panic() {
        // `Duration::MAX` overflows `Instant + Duration`; it must be
        // treated as "no deadline", not wedge the digest with a panic.
        let s = Scheduler::new(SchedulerConfig {
            threads: 1,
            ..Default::default()
        });
        let mut req = LayoutRequest::new(small_graph(30), quick_aco(30));
        req.deadline = Some(Duration::MAX);
        let r = s.submit(req).unwrap().wait().unwrap();
        assert!(!r.result.stopped_early);
        assert_eq!(s.cache.len(), 1, "an unbounded run is cacheable");
    }

    #[test]
    fn bounded_and_unbounded_requests_never_share_a_job() {
        // A deadline-truncated job must not feed a caller that did not
        // opt into a deadline, even when both are in flight together.
        let s = Scheduler::new(SchedulerConfig {
            threads: 2,
            ..Default::default()
        });
        let graph = small_graph(20);
        let mut bounded = LayoutRequest::new(
            graph.clone(),
            AlgoSpec::Aco(AcoParams::default().with_colony(8, 50).with_seed(20)),
        );
        bounded.deadline = Some(Duration::ZERO);
        let unbounded = LayoutRequest {
            deadline: None,
            ..bounded.clone()
        };
        let tb = s.submit(bounded).unwrap();
        let tu = s.submit(unbounded).unwrap();
        let rb = tb.wait().unwrap();
        let ru = tu.wait().unwrap();
        assert!(rb.result.stopped_early, "zero budget must truncate");
        assert!(
            !ru.result.stopped_early,
            "unbounded caller must never receive a truncated result"
        );
        assert_eq!(s.counters().computed, 2, "the classes compute separately");
        assert_eq!(s.counters().coalesced, 0);
    }

    #[test]
    fn delta_request_warm_starts_and_caches_under_new_digest() {
        let s = Scheduler::new(SchedulerConfig {
            threads: 2,
            ..Default::default()
        });
        let graph = small_graph(11);
        let base = s
            .submit(LayoutRequest::new(graph.clone(), quick_aco(11)))
            .unwrap()
            .wait()
            .unwrap();
        // Remove the first edge of the base graph.
        let (u, v) = graph.edges().next().unwrap();
        let delta = GraphDelta::new(vec![], vec![(u.index() as u32, v.index() as u32)]);
        let req = DeltaRequest::new(base.result.digest, delta.clone(), quick_aco(11));
        let warm = s.submit_delta(req).unwrap().wait().unwrap();
        assert_eq!(warm.source, Source::Warm);
        assert!(warm.result.seeded);
        assert_ne!(warm.result.digest, base.result.digest);

        // The warm result is cached under the edited request's canonical
        // digest: the identical *full* request hits.
        let edited = delta.apply(&graph).unwrap();
        let full = s
            .submit(LayoutRequest::new(edited, quick_aco(11)))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(full.source, Source::CacheHit);
        assert_eq!(full.result.digest, warm.result.digest);
        assert!(Arc::ptr_eq(&full.result, &warm.result));
    }

    #[test]
    fn delta_chain_stays_hot() {
        // Each response's digest is the next edit's base.
        let s = Scheduler::new(SchedulerConfig {
            threads: 2,
            ..Default::default()
        });
        let mut graph = small_graph(12);
        let mut prev = s
            .submit(LayoutRequest::new(graph.clone(), quick_aco(12)))
            .unwrap()
            .wait()
            .unwrap();
        for step in 0..3 {
            let (u, v) = graph.edges().nth(step).unwrap();
            let delta = GraphDelta::new(vec![], vec![(u.index() as u32, v.index() as u32)]);
            graph = delta.apply(&graph).unwrap();
            let next = s
                .submit_delta(DeltaRequest::new(prev.result.digest, delta, quick_aco(12)))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(next.source, Source::Warm, "edit {step} should warm-start");
            prev = next;
        }
        assert_eq!(s.counters().computed, 4);
    }

    #[test]
    fn warm_chain_counts_links_and_refresh_resets_on_a_cold_win() {
        // refresh_every == 1: every warm link also runs a cold solve.
        // Whichever side wins, the invariants hold: `refreshed` implies
        // the chain reset, a warm win extends it, and the counter
        // matches the number of refreshed results.
        let s = Scheduler::new(SchedulerConfig {
            threads: 2,
            refresh_every: 1,
            ..Default::default()
        });
        let graph = small_graph(21);
        let base = s
            .submit(LayoutRequest::new(graph.clone(), quick_aco(21)))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(base.result.chain_len, 0);
        assert!(!base.result.refreshed);
        let (u, v) = graph.edges().next().unwrap();
        let delta = GraphDelta::new(vec![], vec![(u.index() as u32, v.index() as u32)]);
        let warm = s
            .submit_delta(DeltaRequest::new(base.result.digest, delta, quick_aco(21)))
            .unwrap()
            .wait()
            .unwrap();
        if warm.result.refreshed {
            assert_eq!(warm.result.chain_len, 0, "a cold win resets the chain");
        } else {
            assert_eq!(warm.result.chain_len, 1, "a warm win extends the chain");
        }
        assert_eq!(s.counters().cold_refresh, warm.result.refreshed as u64);
    }

    #[test]
    fn disabled_refresh_lets_the_chain_grow() {
        let s = Scheduler::new(SchedulerConfig {
            threads: 2,
            refresh_every: 0,
            ..Default::default()
        });
        let mut graph = small_graph(22);
        let mut prev = s
            .submit(LayoutRequest::new(graph.clone(), quick_aco(22)))
            .unwrap()
            .wait()
            .unwrap();
        for step in 0..3u32 {
            let (u, v) = graph.edges().next().unwrap();
            let delta = GraphDelta::new(vec![], vec![(u.index() as u32, v.index() as u32)]);
            graph = delta.apply(&graph).unwrap();
            prev = s
                .submit_delta(DeltaRequest::new(prev.result.digest, delta, quick_aco(22)))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(prev.result.chain_len, step + 1);
            assert!(!prev.result.refreshed);
        }
        assert_eq!(s.counters().cold_refresh, 0);
    }

    #[test]
    fn batch_duplicates_share_one_canonicalization() {
        let s = Scheduler::new(SchedulerConfig {
            threads: 2,
            ..Default::default()
        });
        let shared = LayoutRequest::new(small_graph(23), quick_aco(23));
        let distinct = LayoutRequest::new(small_graph(24), quick_aco(23));
        let batch = vec![
            shared.clone(),
            distinct.clone(),
            shared.clone(),
            shared.clone(),
        ];
        let responses: Vec<_> = s
            .submit_batch(batch)
            .into_iter()
            .map(|t| t.unwrap().wait().unwrap())
            .collect();
        // The duplicates resolve to the same digest (and result) as the
        // first occurrence without re-canonicalizing.
        assert_eq!(responses[0].result.digest, responses[2].result.digest);
        assert_eq!(responses[0].result.digest, responses[3].result.digest);
        assert_ne!(responses[0].result.digest, responses[1].result.digest);
        let c = s.counters();
        assert_eq!(c.batch_shared, 2, "two duplicates reused the digest");
        assert_eq!(c.computed, 2, "duplicates coalesced onto one job");
    }

    #[test]
    fn delta_with_unknown_base_is_rejected() {
        let s = Scheduler::new(SchedulerConfig::default());
        let req = DeltaRequest::new(Digest { hi: 1, lo: 2 }, GraphDelta::default(), quick_aco(1));
        let err = s.submit_delta(req).map(|_| ()).unwrap_err();
        assert_eq!(err, ServiceError::BaseNotFound(Digest { hi: 1, lo: 2 }));
        assert!(err.to_string().contains("base not found"));
    }

    #[test]
    fn delta_that_does_not_apply_is_invalid() {
        let s = Scheduler::new(SchedulerConfig {
            threads: 2,
            ..Default::default()
        });
        let base = s
            .submit(LayoutRequest::new(small_graph(13), quick_aco(13)))
            .unwrap()
            .wait()
            .unwrap();
        // Removing a non-existent edge must fail without touching cache,
        // with the unified graph-shape error kind.
        let bad = DeltaRequest::new(
            base.result.digest,
            GraphDelta::new(vec![], vec![(0, 0)]),
            quick_aco(13),
        );
        let err = s.submit_delta(bad).map(|_| ()).unwrap_err();
        assert!(matches!(err, ServiceError::InvalidGraph(_)), "{err}");
        assert!(err.to_string().starts_with("invalid graph"), "{err}");
    }

    #[test]
    fn bounded_delta_results_are_not_cached() {
        let s = Scheduler::new(SchedulerConfig {
            threads: 1,
            ..Default::default()
        });
        let graph = small_graph(14);
        let base = s
            .submit(LayoutRequest::new(graph.clone(), quick_aco(14)))
            .unwrap()
            .wait()
            .unwrap();
        let (u, v) = graph.edges().next().unwrap();
        let mut req = DeltaRequest::new(
            base.result.digest,
            GraphDelta::new(vec![], vec![(u.index() as u32, v.index() as u32)]),
            quick_aco(14),
        );
        req.deadline = Some(Duration::ZERO);
        let r = s.submit_delta(req).unwrap().wait().unwrap();
        assert!(r.result.stopped_early);
        // With a zero budget the run returns the repaired seed itself —
        // still a valid layering of the edited graph, still not cached.
        assert_eq!(s.cache.len(), 1, "only the base entry may be cached");
    }

    #[test]
    fn baselines_and_cyclic_inputs() {
        let s = Scheduler::new(SchedulerConfig::default());
        // A 3-cycle: the orientation pass must reverse an edge.
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        for name in [
            "lpl",
            "lpl-pl",
            "minwidth",
            "minwidth-pl",
            "cg",
            "ns",
            "exact",
        ] {
            let algo = AlgoSpec::parse(name, 1).unwrap();
            let r = s
                .submit(LayoutRequest::new(g.clone(), algo))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(r.result.reversed_edges, 1, "{name}");
            assert!(r.result.metrics.height >= 2, "{name}");
        }
        assert!(AlgoSpec::parse("nope", 1).is_err());
    }

    #[test]
    fn exact_requests_on_small_graphs_come_back_certified() {
        let s = Scheduler::new(SchedulerConfig::default());
        let g = DiGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap();
        let r = s
            .submit(LayoutRequest::new(g, AlgoSpec::Exact))
            .unwrap()
            .wait()
            .unwrap();
        assert!(r.result.certified);
        assert!(!r.result.stopped_early);
        assert!(r.result.race.is_none(), "exact is not a race");
        assert_eq!(s.cache.len(), 1, "certified results cache normally");
        let text = s.metrics().render_prometheus();
        assert!(text.contains("solver_certified_total 1"), "{text}");
    }

    #[test]
    fn exact_requests_above_the_cap_fall_back_uncertified() {
        let s = Scheduler::new(SchedulerConfig::default());
        let r = s
            .submit(LayoutRequest::new(small_graph(77), AlgoSpec::Exact))
            .unwrap()
            .wait()
            .unwrap();
        assert!(!r.result.certified);
        assert!(!r.result.stopped_early);
    }

    #[test]
    fn portfolio_requests_report_winner_and_members() {
        let s = Scheduler::new(SchedulerConfig::default());
        let algo = AlgoSpec::Portfolio(AcoParams::default().with_colony(3, 3).with_seed(5));
        let r = s
            .submit(LayoutRequest::new(small_graph(5), algo))
            .unwrap()
            .wait()
            .unwrap();
        let race = r.result.race.as_ref().expect("portfolio reports its race");
        assert!(race.members.len() >= 5);
        assert!(race.members.iter().any(|m| m.solver == race.winner));
        // The request digest keys on the portfolio name + colony params:
        // a plain aco request with the same params must not collide.
        let aco = AlgoSpec::Aco(AcoParams::default().with_colony(3, 3).with_seed(5));
        let r2 = s
            .submit(LayoutRequest::new(small_graph(5), aco))
            .unwrap()
            .wait()
            .unwrap();
        assert_ne!(r.result.digest, r2.result.digest);
        assert_eq!(r2.source, Source::Computed);
    }

    #[test]
    fn portfolio_delta_path_races_the_repaired_seed() {
        let s = Scheduler::new(SchedulerConfig::default());
        let algo = AlgoSpec::Portfolio(AcoParams::default().with_colony(3, 3).with_seed(21));
        let base = s
            .submit(LayoutRequest::new(small_graph(21), algo.clone()))
            .unwrap()
            .wait()
            .unwrap();
        let (u, v) = base.result.graph.edges().next().unwrap();
        let delta = GraphDelta::new(vec![], vec![(u.index() as u32, v.index() as u32)]);
        let req = DeltaRequest::new(base.result.digest, delta, algo);
        let warm = s.submit_delta(req).unwrap().wait().unwrap();
        assert_eq!(warm.source, Source::Warm);
        assert!(warm.result.seeded);
        let race = warm.result.race.as_ref().unwrap();
        assert!(
            race.members.iter().any(|m| m.solver == "seed"),
            "the repaired base layering must race as a member"
        );
    }

    #[test]
    fn invalid_requests_are_rejected_up_front() {
        let s = Scheduler::new(SchedulerConfig::default());
        let mut req = LayoutRequest::new(small_graph(7), quick_aco(7));
        req.nd_width = f64::NAN;
        assert!(matches!(
            s.submit(req),
            Err(ServiceError::InvalidRequest(_))
        ));
        let bad = LayoutRequest::new(
            small_graph(8),
            AlgoSpec::Aco(AcoParams {
                rho: 7.0,
                ..AcoParams::default()
            }),
        );
        assert!(matches!(
            s.submit(bad),
            Err(ServiceError::InvalidRequest(_))
        ));
    }

    #[test]
    fn metrics_registry_reflects_scheduler_activity() {
        let s = Scheduler::new(SchedulerConfig {
            threads: 2,
            ..Default::default()
        });
        let req = LayoutRequest::new(small_graph(60), quick_aco(60));
        s.submit(req.clone()).unwrap().wait().unwrap();
        s.submit(req).unwrap().wait().unwrap();
        let text = s.metrics().render_prometheus();
        assert!(text.contains("scheduler_served_total 2"), "{text}");
        assert!(text.contains("scheduler_computed_total 1"), "{text}");
        assert!(text.contains("cache_hits_total 1"), "{text}");
        assert!(text.contains("cache_entries 1"), "{text}");
        // The computed job recorded exactly one queue-wait and one
        // compute sample.
        let q = s.metrics().histogram_snapshot("scheduler_queue_wait_us");
        assert_eq!(q.unwrap().count, 1);
        let c = s.metrics().histogram_snapshot("scheduler_compute_us");
        assert_eq!(c.unwrap().count, 1);
        // The cache byte gauge is the entry's estimator value.
        assert!(
            s.metrics().render_prometheus().contains("cache_bytes"),
            "{text}"
        );
        assert!(s.cache.bytes() > 0);
    }

    #[test]
    fn queue_us_is_zero_for_hits_and_measured_for_computes() {
        let s = Scheduler::new(SchedulerConfig {
            threads: 1,
            ..Default::default()
        });
        let req = LayoutRequest::new(small_graph(61), quick_aco(61));
        let computed = s.submit(req.clone()).unwrap().wait().unwrap();
        assert_eq!(computed.source, Source::Computed);
        let hit = s.submit(req).unwrap().wait().unwrap();
        assert_eq!(hit.source, Source::CacheHit);
        assert_eq!(hit.queue_us, 0, "cache hits never queue");
    }

    #[test]
    fn byte_budget_warns_once_per_crossing() {
        let warned = AtomicBool::new(false);
        // Under budget: nothing, latch stays armed.
        assert!(!warn_if_over_budget(50, 100, &warned));
        // First crossing warns; hovering above does not repeat.
        assert!(warn_if_over_budget(150, 100, &warned));
        assert!(!warn_if_over_budget(200, 100, &warned));
        // Dropping back under re-arms, so the next crossing warns again.
        assert!(!warn_if_over_budget(80, 100, &warned));
        assert!(warn_if_over_budget(101, 100, &warned));
    }

    #[test]
    fn colony_outcome_counters_track_truncation_and_seeding() {
        let s = Scheduler::new(SchedulerConfig {
            threads: 1,
            ..Default::default()
        });
        let mut req = LayoutRequest::new(small_graph(62), quick_aco(62));
        req.deadline = Some(Duration::ZERO);
        let r = s.submit(req).unwrap().wait().unwrap();
        assert!(r.result.stopped_early);
        let text = s.metrics().render_prometheus();
        assert!(text.contains("colony_stopped_early_total 1"), "{text}");
        assert!(text.contains("colony_seeded_total 0"), "{text}");
    }

    #[test]
    fn batch_hits_drain_before_cold_misses() {
        // One worker thread, and a cold request slow enough to still be
        // running while we drain the batch's hit: if the hit were queued
        // behind the compute its wait() would block until the colony
        // finishes; instead it must resolve from the cache immediately,
        // while the cold job is demonstrably still in flight.
        let s = Scheduler::new(SchedulerConfig {
            threads: 1,
            ..Default::default()
        });
        let cached = LayoutRequest::new(small_graph(40), quick_aco(40));
        s.submit(cached.clone()).unwrap().wait().unwrap();

        let slow = LayoutRequest::new(
            small_graph(41),
            AlgoSpec::Aco(AcoParams::default().with_colony(10, 60).with_seed(41)),
        );
        // The hit is deliberately *behind* the cold miss in batch order.
        let tickets = s.submit_batch(vec![slow, cached]);
        let mut tickets = tickets.into_iter();
        let slow_ticket = tickets.next().unwrap().unwrap();
        let hit = tickets.next().unwrap().unwrap().wait().unwrap();
        assert_eq!(hit.source, Source::CacheHit);
        // The cold compute had no chance to finish a 10x60 colony before
        // the hit resolved (on any machine this test runs on); seeing it
        // still in flight proves the hit was not queued behind it.
        assert_eq!(
            s.counters().inflight,
            1,
            "cold job should still be computing while the hit is served"
        );
        slow_ticket.wait().unwrap();
        let c = s.counters();
        assert_eq!(c.computed, 2);
        assert_eq!(c.cache.hits, 1);
    }

    #[test]
    fn batch_reorder_preserves_ticket_positions() {
        let s = Scheduler::new(SchedulerConfig {
            threads: 2,
            ..Default::default()
        });
        let a = LayoutRequest::new(small_graph(50), quick_aco(50));
        let b = LayoutRequest::new(small_graph(51), quick_aco(51));
        let c = LayoutRequest::new(small_graph(52), quick_aco(52));
        // Warm the middle request only.
        s.submit(b.clone()).unwrap().wait().unwrap();
        let digests: Vec<_> = [&a, &b, &c].iter().map(|r| r.digest()).collect();
        let responses: Vec<_> = s
            .submit_batch(vec![a, b, c])
            .into_iter()
            .map(|t| t.unwrap().wait().unwrap())
            .collect();
        // Position i answers request i, whatever the admission order was.
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.result.digest, digests[i], "position {i}");
        }
        assert_eq!(responses[1].source, Source::CacheHit);
        assert_eq!(s.counters().computed, 3);
    }

    #[test]
    fn batch_submission_mixes_sources() {
        let s = Scheduler::new(SchedulerConfig {
            threads: 2,
            ..Default::default()
        });
        let shared = LayoutRequest::new(small_graph(9), quick_aco(9));
        let batch = vec![
            shared.clone(),
            LayoutRequest::new(small_graph(10), quick_aco(9)),
            shared,
        ];
        let tickets = s.submit_batch(batch);
        let responses: Vec<_> = tickets
            .into_iter()
            .map(|t| t.unwrap().wait().unwrap())
            .collect();
        assert_eq!(responses.len(), 3);
        assert_eq!(responses[0].result.digest, responses[2].result.digest);
        assert_eq!(s.counters().computed, 2, "duplicate digest computes once");
    }

    #[test]
    fn restored_and_installed_entries_charge_organic_bytes() {
        // One accounting path for all three ways an entry enters the
        // cache: organic compute, segment-log replay at boot, and a
        // replication `cache_put` install. All must land on the same
        // `approx_bytes` charge, so `cache_bytes` (and the byte budget)
        // stay honest across restarts and replication.
        let dir = std::env::temp_dir().join(format!(
            "antlayer-sched-bytes-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let persistent = SchedulerConfig {
            threads: 2,
            cache_dir: Some(dir.clone()),
            ..Default::default()
        };

        // Organic: compute three layouts with persistence on.
        let (results, organic_bytes) = {
            let a = Scheduler::new(persistent.clone());
            let results: Vec<Arc<LayoutResult>> = (1..=3u64)
                .map(|seed| {
                    a.submit(LayoutRequest::new(small_graph(seed), quick_aco(seed)))
                        .unwrap()
                        .wait()
                        .unwrap()
                        .result
                })
                .collect();
            a.drain();
            assert_eq!(a.restored(), 0, "organic inserts are not restores");
            (results, a.cache.bytes())
        };
        assert!(organic_bytes > 0);

        // Boot replay: a second scheduler over the same directory
        // restores every entry at the identical byte charge.
        let b = Scheduler::new(persistent);
        assert_eq!(b.restored(), 3, "all three entries replay");
        assert_eq!(
            b.cache.bytes(),
            organic_bytes,
            "replayed entries charge the same approx_bytes as organic inserts"
        );

        // cache_put installs on a cold scheduler: same charge again,
        // idempotent on repeat, and servable as a plain cache hit.
        let c = Scheduler::new(SchedulerConfig {
            threads: 2,
            ..Default::default()
        });
        for r in &results {
            let entry = crate::protocol::CacheEntry::of_result(r);
            assert!(c.install(&entry).unwrap(), "fresh install stores");
            assert!(!c.install(&entry).unwrap(), "repeat put is a no-op");
        }
        assert_eq!(c.restored(), 3);
        assert_eq!(
            c.cache.bytes(),
            organic_bytes,
            "installed replicas charge the same approx_bytes as organic inserts"
        );
        let hit = c
            .submit(LayoutRequest::new(small_graph(1), quick_aco(1)))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(hit.source, Source::CacheHit);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
