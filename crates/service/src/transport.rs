//! Transport framing: how one JSON request/response pair travels over a
//! TCP connection.
//!
//! The protocol layer ([`crate::protocol`]) defines *what* the messages
//! are; a [`Transport`] defines *how they are framed*. Two framings are
//! supported, both speaking the identical JSON (v1 or v2, the framing
//! does not care):
//!
//! * [`LineTransport`] — the original newline-delimited framing: one
//!   JSON object per line, in both directions.
//! * [`HttpTransport`] — a minimal hand-rolled HTTP/1.1 server: the
//!   request JSON travels as a `POST /v2` body with a `Content-Length`
//!   header, the response as a `200 OK` JSON body. Keep-alive is the
//!   default (`Connection: close` honored); `GET /healthz` answers the
//!   `ping` op, so load balancers can probe without speaking JSON. No
//!   external dependency — the server implements exactly the HTTP/1.1
//!   subset described here, which is what curl and standard HTTP
//!   clients emit for a JSON POST.
//!
//! Both the `antlayer serve` front end and the `antlayer-router` front
//! serve connections through this trait, so adding a framing never
//! touches the scheduler, cache, or routing layers.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, TcpStream};

/// Longest accepted request (line or HTTP body). Generous — a
/// million-node graph with 1.5M edges encodes to ~25 MB — but bounded,
/// so a newline-free stream (or a hostile `Content-Length`) cannot grow
/// a buffer without limit.
pub const MAX_REQUEST_BYTES: u64 = 64 * 1024 * 1024;

/// Longest accepted HTTP request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// The HTTP route carrying protocol requests.
pub const HTTP_LAYOUT_ROUTE: &str = "POST /v2";
/// The HTTP liveness route (answers the `ping` op).
pub const HTTP_HEALTH_ROUTE: &str = "GET /healthz";
/// The HTTP metrics route (Prometheus text exposition).
pub const HTTP_METRICS_ROUTE: &str = "GET /metrics";

/// How a connection's payloads are answered.
///
/// [`respond`](Handler::respond) maps one protocol request payload to
/// one response payload — the only method the line framing ever calls.
/// [`metrics`](Handler::metrics) serves `GET /metrics` on the HTTP
/// framing; the default `None` turns the route into a 404, which is
/// what a bare closure (the blanket impl below) gets.
pub trait Handler {
    /// Answers one protocol request payload.
    fn respond(&mut self, line: &str) -> String;

    /// Renders the Prometheus metrics page, if this handler has one.
    fn metrics(&mut self) -> Option<String> {
        None
    }
}

/// Any `FnMut(&str) -> String` is a handler without a metrics page, so
/// tests and simple servers keep passing plain closures.
impl<F: FnMut(&str) -> String> Handler for F {
    fn respond(&mut self, line: &str) -> String {
        self(line)
    }
}

/// One connection-serving strategy: reads requests off the stream, calls
/// the handler once per request payload, writes the replies back.
pub trait Transport: Send + Sync + 'static {
    /// Framing name for logs (`"tcp"` / `"http"`).
    fn name(&self) -> &'static str;

    /// Serves one accepted connection until EOF, error, or (HTTP)
    /// `Connection: close`. [`Handler::respond`] maps one request
    /// payload to one response payload; transport-level failures
    /// (malformed framing, oversized requests) are answered by the
    /// transport itself.
    fn serve(&self, stream: TcpStream, handler: &mut dyn Handler);

    /// Writes a one-shot rejection (connection-cap overload) and closes.
    /// `error_line` is an already-encoded protocol error object.
    fn reject(&self, stream: TcpStream, error_line: &str);
}

/// The newline-delimited framing: one JSON object per line.
pub struct LineTransport;

impl Transport for LineTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn serve(&self, stream: TcpStream, handler: &mut dyn Handler) {
        let mut reader = match stream.try_clone() {
            Ok(s) => BufReader::new(s),
            Err(_) => return,
        };
        let mut writer = BufWriter::new(stream);
        let mut line = String::new();
        loop {
            line.clear();
            // Bound each read: `take` caps how much one line may buffer.
            match (&mut reader).take(MAX_REQUEST_BYTES).read_line(&mut line) {
                Ok(0) => break, // clean EOF
                Ok(n) => {
                    if n as u64 >= MAX_REQUEST_BYTES && !line.ends_with('\n') {
                        let _ = writeln!(
                            writer,
                            "{}",
                            crate::protocol::encode_error(&format!(
                                "request line exceeds {MAX_REQUEST_BYTES} bytes"
                            ))
                        );
                        let _ = writer.flush();
                        break;
                    }
                }
                Err(_) => break,
            }
            if line.trim().is_empty() {
                continue;
            }
            let reply = handler.respond(line.trim_end());
            if writeln!(writer, "{reply}")
                .and_then(|_| writer.flush())
                .is_err()
            {
                break;
            }
        }
    }

    fn reject(&self, stream: TcpStream, error_line: &str) {
        let mut w = BufWriter::new(&stream);
        let _ = writeln!(w, "{error_line}");
        let _ = w.flush();
        let _ = stream.shutdown(Shutdown::Both);
    }
}

/// One parsed HTTP request head.
struct HttpHead {
    method: String,
    path: String,
    content_length: Option<u64>,
    close: bool,
}

/// Why reading a head failed, mapped to the HTTP status that answers it.
enum HeadError {
    /// Clean EOF between requests — the keep-alive loop just ends.
    Eof,
    /// I/O failure mid-head; nothing sensible can be written back.
    Io,
    /// Malformed framing; answered with this status, then close.
    Bad(u16, &'static str),
}

/// The minimal hand-rolled HTTP/1.1 framing (`POST /v2` bodies).
pub struct HttpTransport;

impl Transport for HttpTransport {
    fn name(&self) -> &'static str {
        "http"
    }

    fn serve(&self, stream: TcpStream, handler: &mut dyn Handler) {
        let mut reader = match stream.try_clone() {
            Ok(s) => BufReader::new(s),
            Err(_) => return,
        };
        let mut writer = BufWriter::new(stream);
        loop {
            let head = match read_head(&mut reader) {
                Ok(head) => head,
                Err(HeadError::Eof) | Err(HeadError::Io) => return,
                Err(HeadError::Bad(status, reason)) => {
                    // Framing is broken; the stream cannot be resynced.
                    let body = crate::protocol::encode_error(reason);
                    let _ = write_http(&mut writer, status, &body);
                    return;
                }
            };
            let route = format!("{} {}", head.method, head.path);
            let (status, reply) = match route.as_str() {
                HTTP_LAYOUT_ROUTE => {
                    let Some(length) = head.content_length else {
                        let body = crate::protocol::encode_error(
                            "invalid request: POST /v2 needs a Content-Length header",
                        );
                        let _ = write_http(&mut writer, 411, &body);
                        return;
                    };
                    if length > MAX_REQUEST_BYTES {
                        let body = crate::protocol::encode_error(&format!(
                            "request body exceeds {MAX_REQUEST_BYTES} bytes"
                        ));
                        let _ = write_http(&mut writer, 413, &body);
                        return;
                    }
                    // read_exact handles partial reads: the body may
                    // arrive in any number of TCP segments.
                    let mut body = vec![0u8; length as usize];
                    if reader.read_exact(&mut body).is_err() {
                        return;
                    }
                    let Ok(body) = String::from_utf8(body) else {
                        let body = crate::protocol::encode_error("bad JSON: body is not UTF-8");
                        let _ = write_http(&mut writer, 400, &body);
                        return;
                    };
                    // Application-level errors (bad JSON included) are a
                    // 200 with `ok:false`, matching the TCP framing's
                    // behavior: the connection stays usable.
                    (200, handler.respond(body.trim()))
                }
                HTTP_HEALTH_ROUTE => (200, handler.respond(r#"{"op":"ping"}"#)),
                HTTP_METRICS_ROUTE => match handler.metrics() {
                    Some(text) => {
                        // Prometheus text exposition, not JSON: typed
                        // accordingly and written directly.
                        if write_http_typed(&mut writer, 200, METRICS_CONTENT_TYPE, &text).is_err()
                            || head.close
                        {
                            return;
                        }
                        continue;
                    }
                    None => {
                        let reply = crate::protocol::encode_error(
                            "unknown op 'http route GET /metrics' (this handler exposes no metrics)",
                        );
                        let _ = write_http(&mut writer, 404, &reply);
                        return;
                    }
                },
                _ => {
                    // Close after answering, as PROTOCOL.md promises for
                    // every 4xx: the unread request body (if any) would
                    // otherwise desync the keep-alive stream.
                    let known = ["/v2", "/healthz", "/metrics"];
                    let status = if known.contains(&head.path.as_str()) {
                        405
                    } else {
                        404
                    };
                    let reply = crate::protocol::encode_error(&format!(
                        "unknown op 'http route {route}' (this server serves \
                         POST /v2, GET /healthz, and GET /metrics)"
                    ));
                    let _ = write_http(&mut writer, status, &reply);
                    return;
                }
            };
            if write_http(&mut writer, status, &reply).is_err() || head.close {
                return;
            }
        }
    }

    fn reject(&self, stream: TcpStream, error_line: &str) {
        let mut w = BufWriter::new(&stream);
        let _ = write_http(&mut w, 503, error_line);
        let _ = stream.shutdown(Shutdown::Both);
    }
}

/// Reads one request head: the request line plus headers, up to the
/// blank line. `read_line` loops internally, so a head split across any
/// number of TCP segments (partial reads) assembles correctly.
fn read_head(reader: &mut BufReader<TcpStream>) -> Result<HttpHead, HeadError> {
    let mut line = String::new();
    let mut total = 0usize;
    // Request line. Tolerate a leading blank line (robustness note in
    // RFC 9112 §2.2).
    loop {
        line.clear();
        match (reader as &mut dyn BufRead)
            .take(MAX_HEAD_BYTES as u64)
            .read_line(&mut line)
        {
            Ok(0) => return Err(HeadError::Eof),
            Ok(n) => total += n,
            Err(_) => return Err(HeadError::Io),
        }
        if total > MAX_HEAD_BYTES {
            return Err(HeadError::Bad(431, "request head too large"));
        }
        if !line.trim().is_empty() {
            break;
        }
    }
    let mut parts = line.trim_end().split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => return Err(HeadError::Bad(400, "malformed HTTP request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HeadError::Bad(505, "only HTTP/1.x is supported"));
    }
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
    let mut head = HttpHead {
        method: method.to_string(),
        path: path.to_string(),
        content_length: None,
        close: version == "HTTP/1.0",
    };
    // Headers until the blank line.
    loop {
        line.clear();
        match (reader as &mut dyn BufRead)
            .take(MAX_HEAD_BYTES as u64)
            .read_line(&mut line)
        {
            Ok(0) => return Err(HeadError::Bad(400, "truncated HTTP head")),
            Ok(n) => total += n,
            Err(_) => return Err(HeadError::Io),
        }
        if total > MAX_HEAD_BYTES {
            return Err(HeadError::Bad(431, "request head too large"));
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            return Ok(head);
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(HeadError::Bad(400, "malformed HTTP header"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            match value.parse::<u64>() {
                Ok(n) => head.content_length = Some(n),
                Err(_) => return Err(HeadError::Bad(400, "malformed Content-Length")),
            }
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                head.close = true;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                head.close = false;
            }
        }
        // Every other header is tolerated and ignored.
    }
}

/// Content type of the `GET /metrics` page (Prometheus text exposition).
const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Writes one HTTP/1.1 response with a JSON body (a trailing newline is
/// appended and counted, so `curl` output ends cleanly).
fn write_http(writer: &mut impl Write, status: u16, body: &str) -> std::io::Result<()> {
    write_http_typed(writer, status, "application/json", body)
}

/// [`write_http`] with an explicit content type (`GET /metrics` serves
/// Prometheus text, not JSON).
fn write_http_typed(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Content Too Large",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Error",
    };
    // A trailing newline is appended and counted; for the metrics page
    // it is only added when the body does not already end with one
    // (Prometheus text ends each sample with '\n').
    let newline = if body.ends_with('\n') { "" } else { "\n" };
    write!(
        writer,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\r\n{body}{newline}",
        body.len() + newline.len()
    )?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_constants_match_what_serve_dispatches_on() {
        // The docs-check script greps these literals; the dispatch above
        // compares against the same constants, so they cannot drift.
        assert_eq!(HTTP_LAYOUT_ROUTE, "POST /v2");
        assert_eq!(HTTP_HEALTH_ROUTE, "GET /healthz");
        assert_eq!(HTTP_METRICS_ROUTE, "GET /metrics");
    }

    #[test]
    fn metrics_page_is_typed_as_prometheus_text() {
        let mut out = Vec::new();
        write_http_typed(&mut out, 200, METRICS_CONTENT_TYPE, "m_total 1\n").unwrap();
        let text = String::from_utf8(out).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        assert!(head.contains("Content-Type: text/plain; version=0.0.4"));
        // The body already ends with '\n'; no second newline is added.
        assert!(head.contains("Content-Length: 10"), "{head}");
        assert_eq!(body, "m_total 1\n");
    }

    #[test]
    fn closures_are_handlers_without_metrics() {
        let mut f = |line: &str| format!("echo {line}");
        let h: &mut dyn Handler = &mut f;
        assert_eq!(h.respond("x"), "echo x");
        assert!(h.metrics().is_none());
    }

    #[test]
    fn http_response_lengths_are_exact() {
        let mut out = Vec::new();
        write_http(&mut out, 200, r#"{"ok":true}"#).unwrap();
        let text = String::from_utf8(out).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(head.contains("Content-Length: 12"));
        assert_eq!(body, "{\"ok\":true}\n");
    }
}
