//! Shard backends as the router sees them: shared per-shard health
//! state. (The framed connection the router forwards through lives in
//! the `antlayer-client` crate — one client-side socket implementation
//! for routers, load generators, and end users alike.)
//!
//! Health is deliberately simple — a shard is **up** until a connect or
//! I/O failure marks it **down**, and down until a reconnect probe (or a
//! successful opportunistic reconnect) marks it up again. The router
//! never queues for a down shard: requests rehash to the next ring
//! candidate immediately, trading cache locality for availability.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Shared health + traffic counters of one shard.
#[derive(Debug)]
pub struct ShardHealth {
    /// Backend address, e.g. `127.0.0.1:4617`.
    pub addr: String,
    up: AtomicBool,
    down_since: Mutex<Option<Instant>>,
    forwarded: AtomicU64,
    failures: AtomicU64,
}

impl ShardHealth {
    /// A new shard, initially up (the first request finds out).
    pub fn new(addr: String) -> ShardHealth {
        ShardHealth {
            addr,
            up: AtomicBool::new(true),
            down_since: Mutex::new(None),
            forwarded: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        }
    }

    /// Whether the shard is currently considered reachable.
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::Acquire)
    }

    /// Records a connect/IO failure: the shard is down until a probe
    /// succeeds. Idempotent; the first marker wins the `down_since`
    /// timestamp.
    pub fn mark_down(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        if !self.up.swap(false, Ordering::AcqRel) {
            return;
        }
        *self.down_since.lock() = Some(Instant::now());
    }

    /// Records a successful probe (or reconnect): the shard serves
    /// traffic again.
    pub fn mark_up(&self) {
        self.up.store(true, Ordering::Release);
        *self.down_since.lock() = None;
    }

    /// How long the shard has been down, if it is.
    pub fn down_for(&self) -> Option<Duration> {
        self.down_since.lock().map(|t| t.elapsed())
    }

    /// Counts one forwarded request.
    pub fn count_forwarded(&self) {
        self.forwarded.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests forwarded to this shard (successfully exchanged).
    pub fn forwarded(&self) -> u64 {
        self.forwarded.load(Ordering::Relaxed)
    }

    /// Connect/IO failures observed against this shard.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_transitions() {
        let h = ShardHealth::new("127.0.0.1:1".into());
        assert!(h.is_up());
        assert_eq!(h.down_for(), None);
        h.mark_down();
        assert!(!h.is_up());
        assert!(h.down_for().is_some());
        assert_eq!(h.failures(), 1);
        // A second failure keeps the original down_since.
        let first = h.down_for().unwrap();
        h.mark_down();
        assert!(h.down_for().unwrap() >= first);
        h.mark_up();
        assert!(h.is_up());
        assert_eq!(h.down_for(), None);
    }
}
