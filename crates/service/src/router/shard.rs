//! Shard backends as the router sees them: a line-delimited TCP client
//! plus shared per-shard health state.
//!
//! Health is deliberately simple — a shard is **up** until a connect or
//! I/O failure marks it **down**, and down until a reconnect probe (or a
//! successful opportunistic reconnect) marks it up again. The router
//! never queues for a down shard: requests rehash to the next ring
//! candidate immediately, trading cache locality for availability.

use parking_lot::Mutex;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Longest accepted reply line, matching the server's request-line cap:
/// a forwarded response (the `layers` array of a million-node layout)
/// can be tens of megabytes but must stay bounded.
pub const MAX_REPLY_BYTES: u64 = 64 * 1024 * 1024;

/// One line-delimited JSON exchange channel to a shard.
///
/// Not shared between threads: each router connection handler owns one
/// `LineConn` per shard it has talked to, so a request/reply pair is
/// never interleaved with another handler's traffic.
pub struct LineConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl LineConn {
    /// Connects with a bounded connect timeout and disables Nagle
    /// (one-line requests and replies suffer the full 40 ms
    /// delayed-ACK penalty otherwise).
    pub fn connect(addr: &str, timeout: Duration) -> std::io::Result<LineConn> {
        let mut last_err = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    let reader = BufReader::new(stream.try_clone()?);
                    return Ok(LineConn {
                        reader,
                        writer: stream,
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        }))
    }

    /// Sets the read timeout for replies (None = block forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Sends one request line, reads one reply line. Any error means the
    /// connection is unusable (a half-read reply cannot be resynced) and
    /// the caller should drop it.
    pub fn exchange(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = (&mut self.reader)
            .take(MAX_REPLY_BYTES)
            .read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "shard closed the connection",
            ));
        }
        if n as u64 >= MAX_REPLY_BYTES && !reply.ends_with('\n') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "shard reply exceeds the line cap",
            ));
        }
        Ok(reply.trim_end().to_string())
    }
}

/// Shared health + traffic counters of one shard.
#[derive(Debug)]
pub struct ShardHealth {
    /// Backend address, e.g. `127.0.0.1:4617`.
    pub addr: String,
    up: AtomicBool,
    down_since: Mutex<Option<Instant>>,
    forwarded: AtomicU64,
    failures: AtomicU64,
}

impl ShardHealth {
    /// A new shard, initially up (the first request finds out).
    pub fn new(addr: String) -> ShardHealth {
        ShardHealth {
            addr,
            up: AtomicBool::new(true),
            down_since: Mutex::new(None),
            forwarded: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        }
    }

    /// Whether the shard is currently considered reachable.
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::Acquire)
    }

    /// Records a connect/IO failure: the shard is down until a probe
    /// succeeds. Idempotent; the first marker wins the `down_since`
    /// timestamp.
    pub fn mark_down(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        if !self.up.swap(false, Ordering::AcqRel) {
            return;
        }
        *self.down_since.lock() = Some(Instant::now());
    }

    /// Records a successful probe (or reconnect): the shard serves
    /// traffic again.
    pub fn mark_up(&self) {
        self.up.store(true, Ordering::Release);
        *self.down_since.lock() = None;
    }

    /// How long the shard has been down, if it is.
    pub fn down_for(&self) -> Option<Duration> {
        self.down_since.lock().map(|t| t.elapsed())
    }

    /// Counts one forwarded request.
    pub fn count_forwarded(&self) {
        self.forwarded.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests forwarded to this shard (successfully exchanged).
    pub fn forwarded(&self) -> u64 {
        self.forwarded.load(Ordering::Relaxed)
    }

    /// Connect/IO failures observed against this shard.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_transitions() {
        let h = ShardHealth::new("127.0.0.1:1".into());
        assert!(h.is_up());
        assert_eq!(h.down_for(), None);
        h.mark_down();
        assert!(!h.is_up());
        assert!(h.down_for().is_some());
        assert_eq!(h.failures(), 1);
        // A second failure keeps the original down_since.
        let first = h.down_for().unwrap();
        h.mark_down();
        assert!(h.down_for().unwrap() >= first);
        h.mark_up();
        assert!(h.is_up());
        assert_eq!(h.down_for(), None);
    }

    #[test]
    fn connect_to_nothing_fails_fast() {
        // Port 1 on loopback: refused immediately, no long timeout.
        let err = LineConn::connect("127.0.0.1:1", Duration::from_millis(500));
        assert!(err.is_err());
    }
}
