//! Shard backends as the router sees them: shared per-shard health
//! state. (The framed connection the router forwards through lives in
//! the `antlayer-client` crate — one client-side socket implementation
//! for routers, load generators, and end users alike.)
//!
//! Health is deliberately simple — a shard is **up** until a connect or
//! I/O failure marks it **down**, and down until a reconnect probe (or a
//! successful opportunistic reconnect) marks it up again. The router
//! never queues for a down shard: requests rehash to the next ring
//! candidate immediately, trading cache locality for availability.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Shared health + traffic counters of one shard.
#[derive(Debug)]
pub struct ShardHealth {
    /// Backend address, e.g. `127.0.0.1:4617`.
    pub addr: String,
    up: AtomicBool,
    down_since: Mutex<Option<Instant>>,
    /// When the up/down state last flipped; its age tells an operator
    /// whether "up" means "stable for an hour" or "flapped a second
    /// ago" — reported as `age_ms` in the router's per-shard stats.
    last_change: Mutex<Instant>,
    forwarded: AtomicU64,
    failures: AtomicU64,
}

impl ShardHealth {
    /// A new shard, initially up (the first request finds out).
    pub fn new(addr: String) -> ShardHealth {
        ShardHealth {
            addr,
            up: AtomicBool::new(true),
            down_since: Mutex::new(None),
            last_change: Mutex::new(Instant::now()),
            forwarded: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        }
    }

    /// Whether the shard is currently considered reachable.
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::Acquire)
    }

    /// Records a connect/IO failure: the shard is down until a probe
    /// succeeds. Idempotent; the first marker wins the `down_since`
    /// timestamp.
    pub fn mark_down(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        if !self.up.swap(false, Ordering::AcqRel) {
            return;
        }
        *self.down_since.lock() = Some(Instant::now());
        *self.last_change.lock() = Instant::now();
    }

    /// Records a successful probe (or reconnect): the shard serves
    /// traffic again. Idempotent; re-marking an up shard does not reset
    /// its health age.
    pub fn mark_up(&self) {
        if self.up.swap(true, Ordering::AcqRel) {
            return;
        }
        *self.down_since.lock() = None;
        *self.last_change.lock() = Instant::now();
    }

    /// How long the shard has been down, if it is.
    pub fn down_for(&self) -> Option<Duration> {
        self.down_since.lock().map(|t| t.elapsed())
    }

    /// How long the shard has held its current up/down state.
    pub fn status_age(&self) -> Duration {
        self.last_change.lock().elapsed()
    }

    /// Counts one forwarded request.
    pub fn count_forwarded(&self) {
        self.forwarded.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests forwarded to this shard (successfully exchanged).
    pub fn forwarded(&self) -> u64 {
        self.forwarded.load(Ordering::Relaxed)
    }

    /// Connect/IO failures observed against this shard.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_transitions() {
        let h = ShardHealth::new("127.0.0.1:1".into());
        assert!(h.is_up());
        assert_eq!(h.down_for(), None);
        h.mark_down();
        assert!(!h.is_up());
        assert!(h.down_for().is_some());
        assert_eq!(h.failures(), 1);
        // A second failure keeps the original down_since.
        let first = h.down_for().unwrap();
        h.mark_down();
        assert!(h.down_for().unwrap() >= first);
        h.mark_up();
        assert!(h.is_up());
        assert_eq!(h.down_for(), None);
    }

    #[test]
    fn status_age_resets_only_on_transitions() {
        let h = ShardHealth::new("127.0.0.1:1".into());
        std::thread::sleep(Duration::from_millis(5));
        let aged = h.status_age();
        assert!(aged >= Duration::from_millis(5));
        // Re-marking an up shard up keeps the age.
        h.mark_up();
        assert!(h.status_age() >= aged);
        // A real transition resets it.
        h.mark_down();
        assert!(h.status_age() < aged);
    }
}
