//! Shared building blocks of the sharded deployment: the consistent-hash
//! [`ring`] that assigns digests to shards, and the [`shard`] client +
//! health primitives the router forwards through.
//!
//! The topology they support (implemented by the `antlayer-router`
//! crate, served by `antlayer route`):
//!
//! ```text
//! clients ──► router ──ring(digest.lo)──► shard 0  (antlayer serve)
//!                    └────────────────► shard 1  (antlayer serve)
//!                    └────────────────► shard N-1
//! ```
//!
//! Each shard is an unmodified single-process `antlayer serve`: it keeps
//! its own cache, scheduler, and worker pool, and does not know it is
//! part of a fleet. All sharding intelligence lives in front:
//!
//! * `layout` requests route by the request's canonical digest
//!   ([`Digest.lo`](crate::digest::Digest) on the ring), so identical
//!   requests always land on the same shard and the fleet-wide hit rate
//!   matches one big process;
//! * `layout_delta` requests route by the **base** digest — the entry
//!   being warm-started lives where the base was cached, which also
//!   keeps a whole edit chain on one shard;
//! * `stats` fans out to every shard and aggregates the counters;
//! * a connect or I/O failure marks the shard down and the request
//!   rehashes to the next ring candidate (recompute, not failure);
//!   a periodic probe brings recovered shards back.
//!
//! See `docs/ARCHITECTURE.md` for the full design and its invariants,
//! and `docs/PROTOCOL.md` for what the wire looks like through a router.

pub mod ring;
pub mod shard;

pub use ring::HashRing;
pub use shard::ShardHealth;
