//! The consistent-hash ring that assigns request digests to shards.
//!
//! Each shard contributes `vnodes` pseudo-random points on a `u64` ring;
//! a key (the low 64 bits of a request [`Digest`](crate::digest::Digest))
//! is owned by the shard whose point is the key's successor on the ring.
//! Virtual nodes smooth the key shares (one point per shard would make
//! shares as uneven as the gaps between N random points), and successor
//! assignment gives the property horizontal scaling depends on: **when a
//! shard is removed, only the keys it owned move** — every other key
//! keeps its shard, so a shard failure invalidates one shard's worth of
//! cache, not the whole fleet's.
//!
//! Ring points depend only on `(shard index, replica index)`, never on
//! the membership set, so failover can be expressed as a *filtered*
//! lookup over the same ring ([`HashRing::candidates`] walks the ring
//! past down shards) instead of rebuilding a smaller ring that would
//! reshuffle everything.

/// A fixed set of shards placed on a `u64` hash ring with virtual nodes.
///
/// # Examples
///
/// ```
/// use antlayer_service::router::HashRing;
///
/// let ring = HashRing::new(4, 64);
/// let owner = ring.owner(0xdead_beef);
/// assert!(owner < 4);
/// // Failover: skip the owner, keep everyone else's assignment intact.
/// let fallback = ring
///     .candidates(0xdead_beef)
///     .find(|&s| s != owner)
///     .unwrap();
/// assert_ne!(fallback, owner);
/// ```
#[derive(Clone, Debug)]
pub struct HashRing {
    /// Sorted `(ring point, shard index)` pairs.
    points: Vec<(u64, u32)>,
    shards: usize,
}

/// SplitMix64 finalizer: the same dependency-free avalanche the digest
/// module uses, duplicated here so the ring's placement is independent of
/// the digest encoding (bumping `DIGEST_TAG` must not reshuffle shards).
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Domain separator so ring points never collide with other users of the
/// same mixer by construction of the input space.
const RING_SEED: u64 = 0x52_49_4E_47_5F_56_31_5F; // "RING_V1_"

impl HashRing {
    /// Places `shards` shards on the ring with `vnodes` points each.
    /// Both are clamped to at least 1. Point placement is deterministic:
    /// the same `(shards, vnodes)` always yields the same assignment, on
    /// every process — the router and any observer agree on ownership
    /// without coordination.
    pub fn new(shards: usize, vnodes: usize) -> HashRing {
        let shards = shards.max(1);
        let vnodes = vnodes.max(1);
        assert!(
            shards <= u32::MAX as usize,
            "shard count exceeds the ring's id range"
        );
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards as u32 {
            for replica in 0..vnodes as u32 {
                let point = mix(RING_SEED ^ ((shard as u64) << 32) ^ replica as u64);
                points.push((point, shard));
            }
        }
        points.sort_unstable();
        // A point collision between two shards would make ownership
        // depend on sort stability; keep the first (lower shard id) and
        // drop the rest. With 64-bit points this is astronomically rare.
        points.dedup_by_key(|&mut (p, _)| p);
        HashRing { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`: the one whose ring point is the key's
    /// successor (wrapping past the top of the `u64` space).
    pub fn owner(&self, key: u64) -> usize {
        let i = self.successor_index(key);
        self.points[i].1 as usize
    }

    /// All shards in ring order starting at the key's owner, each shard
    /// yielded once. `candidates(k).next()` is [`owner`](Self::owner);
    /// the rest is the failover order — the router tries them in turn
    /// when shards are down, so the assignment seen by live traffic is
    /// exactly "the filtered ring", which is what makes removal move
    /// only the removed shard's keys.
    pub fn candidates(&self, key: u64) -> Candidates<'_> {
        Candidates {
            ring: self,
            next: self.successor_index(key),
            yielded: vec![false; self.shards],
            remaining: self.shards,
        }
    }

    /// Index into `points` of the key's successor point.
    fn successor_index(&self, key: u64) -> usize {
        match self.points.binary_search(&(key, 0)) {
            Ok(i) => i,
            Err(i) => {
                if i == self.points.len() {
                    0 // wrap around
                } else {
                    i
                }
            }
        }
    }
}

/// Iterator over distinct shards in ring order; see
/// [`HashRing::candidates`].
pub struct Candidates<'a> {
    ring: &'a HashRing,
    next: usize,
    yielded: Vec<bool>,
    remaining: usize,
}

impl Iterator for Candidates<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.remaining > 0 {
            let (_, shard) = self.ring.points[self.next];
            self.next = (self.next + 1) % self.ring.points.len();
            let shard = shard as usize;
            if !self.yielded[shard] {
                self.yielded[shard] = true;
                self.remaining -= 1;
                return Some(shard);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic key stream with well-spread bits (the real keys are
    /// `Digest.lo`, which is avalanche output).
    fn keys(count: u64) -> impl Iterator<Item = u64> {
        (0..count).map(|i| mix(i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5))
    }

    #[test]
    fn assignment_is_deterministic_across_instances() {
        let a = HashRing::new(4, 64);
        let b = HashRing::new(4, 64);
        for k in keys(1000) {
            assert_eq!(a.owner(k), b.owner(k));
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = HashRing::new(1, 16);
        for k in keys(100) {
            assert_eq!(ring.owner(k), 0);
        }
    }

    #[test]
    fn candidates_enumerate_every_shard_exactly_once() {
        let ring = HashRing::new(5, 32);
        for k in keys(50) {
            let order: Vec<usize> = ring.candidates(k).collect();
            assert_eq!(order.len(), 5);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
            assert_eq!(order[0], ring.owner(k));
        }
    }

    #[test]
    fn virtual_nodes_balance_key_shares() {
        // The balance bound the router relies on: with 128 vnodes no
        // shard's share strays past 0.75x–1.35x of fair, so one shard
        // cannot silently become the whole fleet's cache.
        for shards in [2usize, 4, 8] {
            let ring = HashRing::new(shards, 128);
            let mut counts = vec![0u64; shards];
            let total = 200_000u64;
            for k in keys(total) {
                counts[ring.owner(k)] += 1;
            }
            let fair = total as f64 / shards as f64;
            for (shard, &c) in counts.iter().enumerate() {
                let share = c as f64 / fair;
                assert!(
                    (0.75..=1.35).contains(&share),
                    "shard {shard}/{shards}: share {share:.3} out of bounds"
                );
            }
        }
    }

    #[test]
    fn fewer_vnodes_mean_worse_balance() {
        // Sanity that the vnode knob does what the docs claim: the
        // max/min spread with 1 vnode is wider than with 128.
        let spread = |vnodes: usize| {
            let ring = HashRing::new(4, vnodes);
            let mut counts = [0u64; 4];
            for k in keys(100_000) {
                counts[ring.owner(k)] += 1;
            }
            let max = *counts.iter().max().unwrap() as f64;
            let min = *counts.iter().min().unwrap().max(&1) as f64;
            max / min
        };
        assert!(spread(1) > spread(128));
    }

    #[test]
    fn removal_moves_only_the_removed_shards_keys() {
        // The consistent-hashing property, phrased the way the router
        // uses it: skipping a down shard in candidate order reassigns
        // only that shard's keys.
        let ring = HashRing::new(6, 64);
        for removed in 0..6 {
            for k in keys(2000) {
                let owner = ring.owner(k);
                let filtered = ring.candidates(k).find(|&s| s != removed).unwrap();
                if owner != removed {
                    assert_eq!(owner, filtered, "key {k} moved without cause");
                }
            }
        }
    }
}
