//! The cache's durability layer: an append-only segment log per serve
//! process.
//!
//! A `--cache-dir` holds two segments. `cache.log` is the append log:
//! every cacheable computed result is framed and appended as it is
//! inserted. `cache.snap` is the compaction output: when the log has
//! accumulated several times more records than the cache holds live
//! entries, the live entries are rewritten into `cache.snap.tmp`, the
//! file is atomically renamed over `cache.snap`, and the log is
//! truncated — so the on-disk footprint tracks the live set, not the
//! insert history.
//!
//! ## Record framing
//!
//! Each record is `[len: u32 LE][checksum: Digest hi,lo LE][payload]`
//! where the payload is the canonical JSON encoding of a
//! [`CacheEntry`] (the same codec the `cache_put` wire op speaks) and
//! the checksum is the house [`CanonicalHasher`] over the payload
//! bytes. There is deliberately no framing cleverness beyond that: the
//! JSON subset is already canonical, and a 128-bit avalanche checksum
//! per record makes silent corruption detectable without pulling in a
//! CRC dependency.
//!
//! ## Replay rules
//!
//! On boot the snapshot is replayed first, then the log; the **last**
//! record for a digest wins (a recompute overwrote the entry in
//! memory, so it must win on disk too). A torn tail — a record whose
//! frame extends past the end of the file, the normal result of a kill
//! mid-append — ends replay of that segment cleanly, keeping
//! everything before it. A checksum or decode failure does the same:
//! replay never guesses past damage, because a resynchronization
//! heuristic that skipped bytes could stitch together a record that
//! was never written. Both cases are reported, not errored — a cache
//! restore is an optimization, and a half-lost log must never stop a
//! shard from serving.

use crate::digest::{CanonicalHasher, Digest};
use crate::protocol::{parse, CacheEntry};
use crate::scheduler::LayoutResult;
use antlayer_graph::DiGraph;
use antlayer_layering::{Layering, LayeringMetrics, WidthModel};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Append-log file name inside a `--cache-dir`.
const LOG_FILE: &str = "cache.log";
/// Snapshot file name (compaction output).
const SNAP_FILE: &str = "cache.snap";
/// Temporary snapshot written before the atomic rename.
const SNAP_TMP: &str = "cache.snap.tmp";
/// Domain tag of the per-record checksum.
const CHECKSUM_TAG: &str = "antlayer-segment-v1";
/// Frame header size: u32 length + 128-bit checksum.
const HEADER: usize = 4 + 16;

/// What a segment replay found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Distinct entries recovered (after last-write-wins dedup).
    pub entries: usize,
    /// Records decoded across both segments (before dedup).
    pub records: usize,
    /// Whether a segment ended in a torn or corrupt record (replay kept
    /// everything before the damage).
    pub damaged: bool,
}

/// The per-process segment log behind `antlayer serve --cache-dir`.
pub struct SegmentLog {
    dir: PathBuf,
    inner: Mutex<LogWriter>,
}

struct LogWriter {
    log: File,
    /// Records appended to the log since the last compaction; the
    /// compaction trigger compares this to the live entry count.
    log_records: u64,
}

impl SegmentLog {
    /// Opens (creating if needed) the segment log in `dir`. The append
    /// log is opened for appending; existing segments are left for
    /// [`replay`](Self::replay).
    pub fn open(dir: &Path) -> std::io::Result<SegmentLog> {
        std::fs::create_dir_all(dir)?;
        let log = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(LOG_FILE))?;
        Ok(SegmentLog {
            dir: dir.to_path_buf(),
            inner: Mutex::new(LogWriter {
                log,
                log_records: 0,
            }),
        })
    }

    /// Replays snapshot then log, last record per digest winning, in a
    /// recency-faithful order (an entry's position is its last write).
    /// Damage truncates the affected segment's replay; it never errors.
    pub fn replay(&self) -> std::io::Result<(Vec<CacheEntry>, ReplayReport)> {
        let mut report = ReplayReport::default();
        let mut records = Vec::new();
        for name in [SNAP_FILE, LOG_FILE] {
            let path = self.dir.join(name);
            let mut bytes = Vec::new();
            match File::open(&path) {
                Ok(mut f) => {
                    f.read_to_end(&mut bytes)?;
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            }
            let (decoded, clean) = decode_segment(&bytes);
            report.records += decoded.len();
            report.damaged |= !clean;
            records.extend(decoded);
        }
        // Last write wins, and the order of survivors is the order of
        // their last writes — replaying them into an LRU reproduces the
        // recency the process died with.
        let mut last: HashMap<u128, usize> = HashMap::with_capacity(records.len());
        for (i, entry) in records.iter().enumerate() {
            last.insert(entry.digest.as_u128(), i);
        }
        let mut entries: Vec<CacheEntry> = Vec::with_capacity(last.len());
        for (i, entry) in records.into_iter().enumerate() {
            if last.get(&entry.digest.as_u128()) == Some(&i) {
                entries.push(entry);
            }
        }
        // Seed the compaction trigger with the replayed log's record
        // count, so a shard that boots onto a bloated log compacts on
        // its first inserts instead of doubling the bloat first.
        self.inner.lock().log_records = report.records as u64;
        report.entries = entries.len();
        Ok((entries, report))
    }

    /// Appends one entry to the log.
    pub fn append(&self, entry: &CacheEntry) -> std::io::Result<()> {
        let frame = encode_record(entry);
        let mut inner = self.inner.lock();
        inner.log.write_all(&frame)?;
        inner.log.flush()?;
        inner.log_records += 1;
        Ok(())
    }

    /// Whether the log has outgrown the live set enough to be worth
    /// compacting: several times more records than `live` entries, with
    /// a floor so small caches do not churn.
    pub fn should_compact(&self, live: usize) -> bool {
        self.inner.lock().log_records > 4 * live as u64 + 64
    }

    /// Rewrites `live` as the snapshot segment (tmp file + atomic
    /// rename) and truncates the log. Entries should be given in
    /// least- to most-recent order (what [`ShardedCache::for_each`]
    /// yields) so a later replay reconstructs recency.
    ///
    /// [`ShardedCache::for_each`]: crate::cache::ShardedCache::for_each
    pub fn compact(&self, live: &[CacheEntry]) -> std::io::Result<()> {
        // Hold the writer lock across the whole rewrite: an append
        // interleaved between the snapshot write and the log truncation
        // would be lost.
        let mut inner = self.inner.lock();
        let tmp = self.dir.join(SNAP_TMP);
        let mut out = File::create(&tmp)?;
        for entry in live {
            out.write_all(&encode_record(entry))?;
        }
        out.sync_all()?;
        std::fs::rename(&tmp, self.dir.join(SNAP_FILE))?;
        inner.log.set_len(0)?;
        inner.log_records = 0;
        Ok(())
    }

    /// Records appended to the log since the last compaction.
    pub fn log_records(&self) -> u64 {
        self.inner.lock().log_records
    }
}

/// Encodes one framed record: length, checksum, canonical-JSON payload.
pub fn encode_record(entry: &CacheEntry) -> Vec<u8> {
    let payload = entry.to_json().encode();
    let sum = checksum(payload.as_bytes());
    let mut out = Vec::with_capacity(HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&sum.hi.to_le_bytes());
    out.extend_from_slice(&sum.lo.to_le_bytes());
    out.extend_from_slice(payload.as_bytes());
    out
}

/// Decodes a segment: every well-formed record before the first torn or
/// corrupt one. Returns the records and whether the segment was clean
/// (ended exactly at a record boundary with every checksum passing).
pub fn decode_segment(bytes: &[u8]) -> (Vec<CacheEntry>, bool) {
    let mut entries = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        if bytes.len() - pos < HEADER {
            return (entries, false); // torn header
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let hi = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        let lo = u64::from_le_bytes(bytes[pos + 12..pos + 20].try_into().unwrap());
        if bytes.len() - pos - HEADER < len {
            return (entries, false); // torn payload
        }
        let payload = &bytes[pos + HEADER..pos + HEADER + len];
        let sum = checksum(payload);
        if sum.hi != hi || sum.lo != lo {
            return (entries, false); // corrupt record: stop, keep prefix
        }
        // The checksum passed, so decode failures here mean the writer
        // itself was broken — still stop cleanly rather than panic.
        let Ok(text) = std::str::from_utf8(payload) else {
            return (entries, false);
        };
        let Ok(v) = parse(text) else {
            return (entries, false);
        };
        let Ok(entry) = CacheEntry::from_json(&v) else {
            return (entries, false);
        };
        entries.push(entry);
        pos += HEADER + len;
    }
    (entries, true)
}

fn checksum(payload: &[u8]) -> Digest {
    let mut h = CanonicalHasher::new(CHECKSUM_TAG);
    h.write_u64(payload.len() as u64);
    for chunk in payload.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h.write_u64(u64::from_le_bytes(word));
    }
    h.finish()
}

/// Reconstructs the [`LayoutResult`] a [`CacheEntry`] describes, by the
/// same pipeline that computed it: rebuild the graph, orient it, place
/// nodes on the recorded layers, and recompute metrics under the
/// recorded width model. The layering is validated against the oriented
/// DAG, so a record that does not describe a real layering (possible
/// only through a broken writer — checksums catch disk damage) is
/// rejected instead of poisoning the cache.
pub fn restore_result(entry: &CacheEntry) -> Result<LayoutResult, String> {
    let nodes = entry.nodes as usize;
    let graph =
        DiGraph::from_edges(nodes, &entry.edges).map_err(|e| format!("restore: graph: {e}"))?;
    let oriented = antlayer_sugiyama::acyclic_orientation(&graph);
    let mut layer_of = vec![0u32; nodes];
    let mut placed = 0usize;
    for (i, layer) in entry.layers.iter().enumerate() {
        for &node in layer {
            let idx = node as usize; // < nodes: validated by the codec
            if layer_of[idx] != 0 {
                return Err(format!("restore: node {idx} placed twice"));
            }
            layer_of[idx] = i as u32 + 1; // layers are 1-based, bottom-up
            placed += 1;
        }
    }
    if placed != nodes {
        return Err(format!(
            "restore: {placed} of {nodes} nodes placed on layers"
        ));
    }
    let layering = Layering::from_slice(&layer_of);
    layering
        .validate(&oriented.dag)
        .map_err(|e| format!("restore: layering: {e}"))?;
    let wm = WidthModel::with_dummy_width(entry.nd_width);
    let metrics = LayeringMetrics::compute(&oriented.dag, &layering, &wm);
    Ok(LayoutResult {
        digest: entry.digest,
        graph,
        layering,
        metrics,
        nd_width: entry.nd_width,
        reversed_edges: entry.reversed_edges as usize,
        stopped_early: false,
        seeded: entry.seeded,
        certified: entry.certified,
        race: None,
        compute_micros: entry.compute_micros,
        // A restored entry's chain provenance is not recorded; starting
        // at 0 just means its first refresh comes a full period later.
        chain_len: 0,
        refreshed: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(hi: u64, edges: Vec<(u32, u32)>) -> CacheEntry {
        // A 3-node path graph with a valid bottom-up layering.
        CacheEntry {
            digest: Digest { hi, lo: hi ^ 7 },
            nodes: 3,
            edges,
            layers: vec![vec![2], vec![1], vec![0]],
            nd_width: 1.0,
            reversed_edges: 0,
            seeded: false,
            certified: false,
            compute_micros: 5,
        }
    }

    fn path_entry(hi: u64) -> CacheEntry {
        entry(hi, vec![(0, 1), (1, 2)])
    }

    #[test]
    fn append_replay_roundtrip_last_write_wins() {
        let dir = std::env::temp_dir().join(format!("antlayer-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let log = SegmentLog::open(&dir).unwrap();
        log.append(&path_entry(1)).unwrap();
        log.append(&path_entry(2)).unwrap();
        let mut updated = path_entry(1);
        updated.compute_micros = 99;
        log.append(&updated).unwrap();
        drop(log);

        let log = SegmentLog::open(&dir).unwrap();
        let (entries, report) = log.replay().unwrap();
        assert_eq!(report.records, 3);
        assert!(!report.damaged);
        // Dedup by digest, last write wins, last-write order.
        assert_eq!(entries, vec![path_entry(2), updated]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_keeps_prefix() {
        let mut bytes = encode_record(&path_entry(1));
        bytes.extend_from_slice(&encode_record(&path_entry(2))[..10]);
        let (entries, clean) = decode_segment(&bytes);
        assert_eq!(entries.len(), 1);
        assert!(!clean);
    }

    #[test]
    fn corrupt_record_stops_replay_cleanly() {
        let mut bytes = encode_record(&path_entry(1));
        let flip_at = bytes.len() - 3; // inside the first payload
        bytes.extend_from_slice(&encode_record(&path_entry(2)));
        bytes[flip_at] ^= 0x40;
        let (entries, clean) = decode_segment(&bytes);
        assert!(entries.is_empty(), "damage in record 1 stops before it");
        assert!(!clean);
    }

    #[test]
    fn compaction_truncates_log_and_survives_replay() {
        let dir = std::env::temp_dir().join(format!("antlayer-compact-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let log = SegmentLog::open(&dir).unwrap();
        for i in 0..10 {
            log.append(&path_entry(i)).unwrap();
        }
        // Pretend only two entries are live.
        log.compact(&[path_entry(3), path_entry(7)]).unwrap();
        assert_eq!(log.log_records(), 0);
        log.append(&path_entry(11)).unwrap();
        drop(log);

        let log = SegmentLog::open(&dir).unwrap();
        let (entries, report) = log.replay().unwrap();
        assert!(!report.damaged);
        assert_eq!(entries, vec![path_entry(3), path_entry(7), path_entry(11)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restore_rebuilds_the_computed_result() {
        let e = path_entry(9);
        let r = restore_result(&e).unwrap();
        assert_eq!(r.digest, e.digest);
        assert_eq!(r.graph.node_count(), 3);
        assert_eq!(r.metrics.height, 3);
        assert!(!r.stopped_early);
        // A broken layering (node placed twice) is rejected.
        let mut bad = path_entry(9);
        bad.layers = vec![vec![2, 2], vec![1], vec![0]];
        assert!(restore_result(&bad).unwrap_err().contains("placed twice"));
        // A node missing from every layer is rejected.
        let mut bad = path_entry(9);
        bad.layers = vec![vec![2], vec![1]];
        assert!(restore_result(&bad).is_err());
    }
}
