//! The TCP front end: accepts connections, reads one JSON request per
//! line, answers one JSON response per line.
//!
//! Connections are handled by one thread each (bounded by
//! [`ServerConfig::max_connections`]; excess connections are answered
//! with an `overloaded` error line and closed). Requests on one
//! connection are pipelined: the handler reads, submits to the shared
//! [`Scheduler`], and blocks on the ticket — concurrency across
//! connections comes from the scheduler's worker pool, which also gives
//! digest-level dedup across clients for free.

use crate::protocol::{self, Json, Request};
use crate::scheduler::{Scheduler, SchedulerConfig};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Live connection streams, registered so shutdown can sever them. A
/// handler removes itself when its client disconnects; shutdown calls
/// `Shutdown::Both` on whatever is left, which makes every blocked
/// `read_line` return and the handler threads exit promptly — a stopped
/// server answers nothing, which is what fleet failover relies on.
#[derive(Default)]
struct ConnRegistry {
    streams: Mutex<HashMap<u64, TcpStream>>,
    next_id: AtomicU64,
}

impl ConnRegistry {
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.streams.lock().insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.streams.lock().remove(&id);
    }

    fn sever_all(&self) {
        for (_, stream) in self.streams.lock().drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:4617` (port 0 picks a free one).
    pub addr: String,
    /// Scheduler configuration (threads, cache, admission).
    pub scheduler: SchedulerConfig,
    /// Maximum concurrently served connections.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:4617".into(),
            scheduler: SchedulerConfig::default(),
            max_connections: 128,
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    scheduler: Arc<Scheduler>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    connections: Arc<AtomicUsize>,
    registry: Arc<ConnRegistry>,
}

/// Handle to a server running on a background thread; dropping it shuts
/// the server down.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    registry: Arc<ConnRegistry>,
    thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the configured address.
    ///
    /// # Examples
    ///
    /// ```
    /// use antlayer_service::{Server, ServerConfig};
    ///
    /// // Port 0 picks a free loopback port; `spawn` serves on a
    /// // background thread until the handle is dropped.
    /// let server = Server::bind(ServerConfig {
    ///     addr: "127.0.0.1:0".into(),
    ///     ..Default::default()
    /// })
    /// .unwrap();
    /// let handle = server.spawn().unwrap();
    /// println!("serving on {}", handle.addr());
    /// handle.shutdown();
    /// ```
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            scheduler: Arc::new(Scheduler::new(config.scheduler.clone())),
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            connections: Arc::new(AtomicUsize::new(0)),
            registry: Arc::new(ConnRegistry::default()),
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared scheduler (for in-process inspection).
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.scheduler
    }

    /// Runs the accept loop on the calling thread until shutdown.
    pub fn run(self) {
        // The accept call blocks; `ServerHandle::stop` sets the shutdown
        // flag and then opens a wake-up connection so the loop observes
        // it on the very next iteration.
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            // One small request line, one small response line: Nagle +
            // delayed ACK would add ~40 ms to every exchange.
            let _ = stream.set_nodelay(true);
            let active = self.connections.fetch_add(1, Ordering::AcqRel) + 1;
            if active > self.config.max_connections {
                self.connections.fetch_sub(1, Ordering::AcqRel);
                let mut w = BufWriter::new(&stream);
                let _ = writeln!(
                    w,
                    "{}",
                    protocol::encode_error(&format!(
                        "overloaded: {active} connections (cap {})",
                        self.config.max_connections
                    ))
                );
                let _ = w.flush();
                let _ = stream.shutdown(Shutdown::Both);
                continue;
            }
            let scheduler = self.scheduler.clone();
            let connections = self.connections.clone();
            let registry = self.registry.clone();
            // Register on the accept thread, not the handler: by the
            // time shutdown has joined this loop, every accepted
            // connection is in the registry, so sever_all cannot miss
            // one that a handler thread had not registered yet.
            let id = registry.register(&stream);
            std::thread::spawn(move || {
                handle_connection(stream, &scheduler);
                if let Some(id) = id {
                    registry.deregister(id);
                }
                connections.fetch_sub(1, Ordering::AcqRel);
            });
        }
    }

    /// Runs the server on a background thread and returns a handle.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = self.shutdown.clone();
        let registry = self.registry.clone();
        let thread = std::thread::Builder::new()
            .name("antlayer-serve-accept".into())
            .spawn(move || self.run())?;
        Ok(ServerHandle {
            addr,
            shutdown,
            registry,
            thread: Some(thread),
        })
    }
}

impl ServerHandle {
    /// The server's address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops the accept loop, severs every live connection, and joins
    /// the server thread. After this returns, the process answers
    /// nothing on the port — clients (and routers) observe EOF/reset,
    /// exactly like a crashed shard, which is what failover tests and
    /// fleet health checks rely on.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.thread.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::Release);
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        // Sever after the accept loop is gone so no new connection can
        // slip in post-drain.
        self.registry.sever_all();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Longest accepted request line. Generous — a million-node graph with
/// 1.5M edges encodes to ~25 MB — but bounded, so a newline-free stream
/// cannot grow a line buffer without limit.
const MAX_LINE_BYTES: u64 = 64 * 1024 * 1024;

fn handle_connection(stream: TcpStream, scheduler: &Scheduler) {
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // Bound each read: `take` caps how much one line may buffer.
        match (&mut reader).take(MAX_LINE_BYTES).read_line(&mut line) {
            Ok(0) => break, // clean EOF
            Ok(n) => {
                if n as u64 >= MAX_LINE_BYTES && !line.ends_with('\n') {
                    let _ = writeln!(
                        writer,
                        "{}",
                        protocol::encode_error(&format!(
                            "request line exceeds {MAX_LINE_BYTES} bytes"
                        ))
                    );
                    let _ = writer.flush();
                    break;
                }
            }
            Err(_) => break,
        }
        if line.trim().is_empty() {
            continue;
        }
        let reply = respond(line.trim_end(), scheduler);
        if writeln!(writer, "{reply}")
            .and_then(|_| writer.flush())
            .is_err()
        {
            break;
        }
    }
}

/// Computes the response line for one request line; shared by the TCP
/// handler and tests.
pub fn respond(line: &str, scheduler: &Scheduler) -> String {
    match protocol::parse_request(line) {
        Err(e) => protocol::encode_error(&e),
        Ok(Request::Ping) => {
            let mut obj = BTreeMap::new();
            obj.insert("ok".into(), Json::Bool(true));
            obj.insert("op".into(), Json::Str("ping".into()));
            Json::Obj(obj).encode()
        }
        Ok(Request::Stats) => {
            let c = scheduler.counters();
            let mut obj = BTreeMap::new();
            obj.insert("ok".into(), Json::Bool(true));
            obj.insert("op".into(), Json::Str("stats".into()));
            obj.insert("served".into(), Json::Num(c.served as f64));
            obj.insert("computed".into(), Json::Num(c.computed as f64));
            obj.insert("coalesced".into(), Json::Num(c.coalesced as f64));
            obj.insert("rejected".into(), Json::Num(c.rejected as f64));
            obj.insert("inflight".into(), Json::Num(c.inflight as f64));
            obj.insert("cache_hits".into(), Json::Num(c.cache.hits as f64));
            obj.insert("cache_misses".into(), Json::Num(c.cache.misses as f64));
            obj.insert(
                "cache_insertions".into(),
                Json::Num(c.cache.insertions as f64),
            );
            obj.insert(
                "cache_evictions".into(),
                Json::Num(c.cache.evictions as f64),
            );
            Json::Obj(obj).encode()
        }
        Ok(Request::Layout(req)) => match scheduler.submit(*req) {
            Err(e) => protocol::encode_error(&e.to_string()),
            Ok(ticket) => match ticket.wait() {
                Ok(response) => protocol::encode_layout_response(&response),
                Err(e) => protocol::encode_error(&e.to_string()),
            },
        },
        Ok(Request::LayoutDelta(req)) => match scheduler.submit_delta(*req) {
            Err(e) => protocol::encode_error(&e.to_string()),
            Ok(ticket) => match ticket.wait() {
                Ok(response) => protocol::encode_layout_response(&response),
                Err(e) => protocol::encode_error(&e.to_string()),
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse;

    fn test_scheduler() -> Scheduler {
        Scheduler::new(SchedulerConfig {
            threads: 2,
            ..Default::default()
        })
    }

    #[test]
    fn respond_ping_and_stats() {
        let s = test_scheduler();
        let pong = parse(&respond(r#"{"op":"ping"}"#, &s)).unwrap();
        assert_eq!(pong.get("ok"), Some(&Json::Bool(true)));
        let stats = parse(&respond(r#"{"op":"stats"}"#, &s)).unwrap();
        assert_eq!(stats.get("served").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn respond_layout_then_cached_layout() {
        let s = test_scheduler();
        let line = r#"{"op":"layout","algo":"aco","nodes":5,"edges":[[0,1],[1,2],[2,3],[3,4]],"ants":3,"tours":3}"#;
        let first = parse(&respond(line, &s)).unwrap();
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(first.get("source").and_then(Json::as_str), Some("computed"));
        let second = parse(&respond(line, &s)).unwrap();
        assert_eq!(second.get("source").and_then(Json::as_str), Some("hit"));
        assert_eq!(first.get("layers"), second.get("layers"));
        assert_eq!(first.get("digest"), second.get("digest"));
    }

    #[test]
    fn respond_bad_line_is_error_json() {
        let s = test_scheduler();
        let v = parse(&respond("this is not json", &s)).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert!(v
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("bad JSON"));
    }
}
