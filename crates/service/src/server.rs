//! The network front end: accepts connections and answers protocol
//! requests through a pluggable [`Transport`] framing.
//!
//! Two listeners can serve the same scheduler side by side: the
//! line-delimited TCP listener ([`ServerConfig::addr`], the original
//! wire) and an optional HTTP/1.1 listener ([`ServerConfig::http_addr`],
//! `antlayer serve --http PORT`) speaking `POST /v2` — see
//! [`crate::transport`]. Everything below the framing is shared: one
//! connection cap, one [`Scheduler`], one cache.
//!
//! Connections are handled by one thread each (bounded by
//! [`ServerConfig::max_connections`]; excess connections are answered
//! with an `overloaded` error and closed). Requests on one connection
//! are pipelined: the handler reads, submits to the shared
//! [`Scheduler`], and blocks on the ticket — concurrency across
//! connections comes from the scheduler's worker pool, which also gives
//! digest-level dedup across clients for free.

use crate::protocol::{self, ErrorKind, Json, Request, Response, WireError};
use crate::scheduler::{Scheduler, SchedulerConfig, ServiceError, Source};
use crate::transport::{Handler, HttpTransport, LineTransport, Transport};
use antlayer_obs::{Histogram, MetricValue, SlowLog, TraceEntry};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Slowest requests retained for the `debug` op. Small and fixed: the
/// log is a debugging aid (which requests hurt, and where their time
/// went), not a metrics store — the histograms are.
pub const SLOW_LOG_CAPACITY: usize = 32;

/// Live connection streams, registered so shutdown can sever them. A
/// handler removes itself when its client disconnects; shutdown calls
/// `Shutdown::Both` on whatever is left, which makes every blocked
/// read return and the handler threads exit promptly — a stopped
/// server answers nothing, which is what fleet failover relies on.
#[derive(Default)]
struct ConnRegistry {
    streams: Mutex<HashMap<u64, TcpStream>>,
    next_id: AtomicU64,
}

impl ConnRegistry {
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.streams.lock().insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.streams.lock().remove(&id);
    }

    fn sever_all(&self) {
        for (_, stream) in self.streams.lock().drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address of the line-delimited TCP listener, e.g. `127.0.0.1:4617`
    /// (port 0 picks a free one).
    pub addr: String,
    /// Optional address of the HTTP/1.1 listener (`POST /v2`); `None`
    /// serves line-delimited TCP only.
    pub http_addr: Option<String>,
    /// Optional address of the live (reactor) listener serving
    /// streaming edit sessions (`antlayer serve --live PORT`). Unlike
    /// the other listeners its connections cost no thread and do not
    /// count against [`max_connections`](Self::max_connections).
    pub live_addr: Option<String>,
    /// Tuning for the live tier (per-session outbound queue cap before
    /// slow-consumer eviction, per-connection kernel send-buffer cap).
    pub live_tuning: crate::live::LiveTuning,
    /// Scheduler configuration (threads, cache, admission).
    pub scheduler: SchedulerConfig,
    /// Maximum concurrently served connections, across the line-TCP and
    /// HTTP listeners.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:4617".into(),
            http_addr: None,
            live_addr: None,
            live_tuning: crate::live::LiveTuning::default(),
            scheduler: SchedulerConfig::default(),
            max_connections: 128,
        }
    }
}

/// The transport-independent request handler: the scheduler plus the
/// protocol-level counters that do not belong to it (today: how many v1
/// requests leaned on the lenient absent-`op` default).
pub struct ServiceCore {
    scheduler: Arc<Scheduler>,
    /// v1 requests that omitted `"op"` and got the historic `layout`
    /// default; reported by `stats` as `lenient_requests` so operators
    /// can find clients to migrate before the default is retired.
    lenient_requests: AtomicU64,
    /// End-to-end request latency, registered in the scheduler's
    /// registry so `GET /metrics` renders one page for the process.
    request_us: Arc<Histogram>,
    /// The K slowest requests with their phase breakdowns (`debug` op).
    slow_log: SlowLog,
    /// Milliseconds to sleep before answering each request — 0 in
    /// production, set by fault harnesses (`FaultAction::Delay`) to make
    /// a shard *slow* rather than dead, which is the failure mode that
    /// exercises the router's `io_timeout` reroute path.
    respond_delay_ms: AtomicU64,
    /// The live-session tier's counters, registered here (not in the
    /// reactor) so `stats` and `GET /metrics` report them even when no
    /// `--live` listener is running — the names are part of the stats
    /// contract, zero-valued or not.
    session_metrics: Arc<crate::session::SessionMetrics>,
}

impl ServiceCore {
    /// Builds a core around a scheduler.
    pub fn new(scheduler: Arc<Scheduler>) -> ServiceCore {
        let request_us = scheduler.metrics().histogram(
            "server_request_us",
            "end-to-end microseconds from request parse to encoded reply",
        );
        let session_metrics = crate::session::SessionMetrics::new(scheduler.metrics());
        ServiceCore {
            scheduler,
            lenient_requests: AtomicU64::new(0),
            request_us,
            slow_log: SlowLog::new(SLOW_LOG_CAPACITY),
            respond_delay_ms: AtomicU64::new(0),
            session_metrics,
        }
    }

    /// The live-session tier's metrics handles (shared with the
    /// reactor).
    pub fn session_metrics(&self) -> &Arc<crate::session::SessionMetrics> {
        &self.session_metrics
    }

    /// Sets the artificial per-request respond delay (fault injection:
    /// a slow shard, not a dead one). `0` restores normal service.
    pub fn set_respond_delay(&self, delay: Duration) {
        self.respond_delay_ms
            .store(delay.as_millis() as u64, Ordering::Relaxed);
    }

    /// The slow-request log (for in-process inspection and tests).
    pub fn slow_log(&self) -> &SlowLog {
        &self.slow_log
    }

    /// The shared scheduler (for in-process inspection).
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.scheduler
    }

    /// v1 requests served through the lenient absent-`op` default.
    pub fn lenient_requests(&self) -> u64 {
        self.lenient_requests.load(Ordering::Relaxed)
    }

    /// Computes the response for one request payload (v1 or v2); the
    /// single dispatch point every transport calls.
    ///
    /// Every request is timed end to end into the `server_request_us`
    /// histogram and, when slow enough, into the [`SlowLog`] with its
    /// phase breakdown (`parse → cache_lookup → queue_wait → compute →
    /// encode`). A v2 request with `"trace":true` gets the same
    /// breakdown echoed in the response's `"trace"` member — the
    /// router's way of stitching a fleet-wide timeline.
    pub fn respond(&self, line: &str) -> String {
        let delay_ms = self.respond_delay_ms.load(Ordering::Relaxed);
        if delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(delay_ms));
        }
        let started = Instant::now();
        let (request, env) = match protocol::parse_request_envelope(line) {
            Err((err, env)) => return Response::Error(err).encode(&env),
            Ok(parsed) => parsed,
        };
        if env.lenient_op {
            self.lenient_requests.fetch_add(1, Ordering::Relaxed);
        }
        let op = request.op();
        let mut phases: Vec<(&'static str, u64)> =
            vec![("parse", started.elapsed().as_micros() as u64)];
        let response = match request {
            Request::Ping => Response::Pong { router: false },
            Request::Stats => Response::Stats(self.stats_counters()),
            Request::Debug => Response::Debug(self.debug_body()),
            Request::Layout(req) => {
                let submitted = Instant::now();
                match self.scheduler.submit(*req) {
                    Err(e) => error_response(&e),
                    Ok(ticket) => {
                        // Digest + cache probe + admission, before any
                        // queueing: the hit path ends here.
                        phases.push(("cache_lookup", submitted.elapsed().as_micros() as u64));
                        self.finish_layout(ticket, &mut phases)
                    }
                }
            }
            Request::LayoutDelta(req) => {
                let submitted = Instant::now();
                match self.scheduler.submit_delta(*req) {
                    Err(e) => error_response(&e),
                    Ok(ticket) => {
                        phases.push(("cache_lookup", submitted.elapsed().as_micros() as u64));
                        self.finish_layout(ticket, &mut phases)
                    }
                }
            }
            Request::CachePut(entry) => match self.scheduler.install(&entry) {
                Ok(stored) => Response::CachePutAck { stored },
                Err(e) => error_response(&e),
            },
            Request::CachePull { cursor, limit } => {
                let (entries, next, done) = self.scheduler.export_page(cursor, limit);
                Response::CachePage(Box::new(protocol::CachePage {
                    entries,
                    next,
                    done,
                }))
            }
            // Topology changes are the router's job; a shard has no ring.
            Request::ShardJoin { .. } | Request::ShardDrain { .. } => {
                Response::Error(WireError::new(
                    ErrorKind::InvalidRequest,
                    format!("invalid request: '{op}' is a router admin op; send it to the router"),
                ))
            }
            // Sessions live on the reactor listener, where the server
            // can *push* frames; a request/reply transport has nowhere
            // to deliver the unsolicited updates.
            Request::SessionOpen(_) | Request::SessionDelta { .. } | Request::SessionClose => {
                Response::Error(WireError::new(
                    ErrorKind::InvalidRequest,
                    format!(
                        "invalid request: '{op}' is a live-session op; connect to the \
                         --live listener"
                    ),
                ))
            }
        };
        // The wire trace closes before encoding (it is part of what gets
        // encoded); the slow log closes after, so it sees the full cost.
        let wire_trace = env
            .trace
            .then(|| wire_trace_json(&env.id, op, started.elapsed().as_micros() as u64, &phases));
        let encoding = Instant::now();
        let reply = response.encode_with_trace(&env, wire_trace);
        phases.push(("encode", encoding.elapsed().as_micros() as u64));
        let total_us = started.elapsed().as_micros() as u64;
        self.request_us.record(total_us);
        if self.slow_log.would_keep(total_us) {
            self.slow_log.record(TraceEntry {
                id: correlation_id(&env.id),
                op,
                total_us,
                phases,
                remote: None,
            });
        }
        reply
    }

    /// Waits out a layout ticket, recording where the time went.
    fn finish_layout(
        &self,
        ticket: crate::scheduler::Ticket,
        phases: &mut Vec<(&'static str, u64)>,
    ) -> Response {
        match ticket.wait() {
            Ok(r) => {
                // A cache hit neither queued nor computed; its
                // breakdown is parse + cache_lookup + encode.
                if r.source != Source::CacheHit {
                    phases.push(("queue_wait", r.queue_us));
                    phases.push(("compute", r.result.compute_micros));
                }
                Response::Layout(Box::new(protocol::layout_reply_of(&r)))
            }
            Err(e) => error_response(&e),
        }
    }

    fn stats_counters(&self) -> BTreeMap<String, Json> {
        let c = self.scheduler.counters();
        let mut obj = BTreeMap::new();
        let mut num = |k: &str, v: f64| {
            obj.insert(k.to_string(), Json::Num(v));
        };
        num("served", c.served as f64);
        num("computed", c.computed as f64);
        num("coalesced", c.coalesced as f64);
        num("rejected", c.rejected as f64);
        num("inflight", c.inflight as f64);
        num("lenient_requests", self.lenient_requests() as f64);
        num("cache_hits", c.cache.hits as f64);
        num("cache_misses", c.cache.misses as f64);
        num("cache_insertions", c.cache.insertions as f64);
        num("cache_evictions", c.cache.evictions as f64);
        num("cache_bytes", c.cache.bytes as f64);
        num("cache_restored", self.scheduler.restored() as f64);
        num("cold_refresh", c.cold_refresh as f64);
        num("batch_shared", c.batch_shared as f64);
        let sm = &self.session_metrics;
        num("sessions_open", sm.open_count() as f64);
        num("sessions_idle", sm.idle_value() as f64);
        num("session_pushes", sm.pushes.get() as f64);
        num("session_coalesced", sm.coalesced.get() as f64);
        num("session_evicted", sm.evicted.get() as f64);
        // Latency histograms ride along as objects (count, sum_us,
        // percentiles, raw buckets) — see `protocol::histogram_json`.
        // The flat counters above stay plain numbers for compatibility.
        for (name, value) in self.scheduler.metrics().snapshot() {
            if let MetricValue::Histogram(snap) = value {
                obj.insert(name.to_string(), protocol::histogram_json(&snap));
            }
        }
        obj
    }

    fn debug_body(&self) -> BTreeMap<String, Json> {
        let mut obj = BTreeMap::new();
        obj.insert(
            "slow_requests".into(),
            Json::Arr(
                self.slow_log
                    .snapshot()
                    .iter()
                    .map(protocol::trace_entry_json)
                    .collect(),
            ),
        );
        obj
    }

    /// The process-wide Prometheus page (`GET /metrics`).
    pub fn metrics_text(&self) -> String {
        self.scheduler.metrics().render_prometheus()
    }
}

/// The envelope `id` as a slow-log correlation string: the encoded JSON
/// value for strings/numbers, `"-"` when the request carried none.
fn correlation_id(id: &Option<Json>) -> String {
    match id {
        Some(Json::Str(s)) => s.clone(),
        Some(other) => other.encode(),
        None => "-".into(),
    }
}

/// The `"trace"` member of a traced response: the same phase breakdown
/// the slow log keeps, minus `encode` (which cannot measure itself).
fn wire_trace_json(
    id: &Option<Json>,
    op: &'static str,
    total_us: u64,
    phases: &[(&'static str, u64)],
) -> Json {
    let mut obj = BTreeMap::new();
    if let Some(id) = id {
        obj.insert("id".into(), id.clone());
    }
    obj.insert("op".into(), Json::Str(op.into()));
    obj.insert("total_us".into(), Json::Num(total_us as f64));
    let mut p = BTreeMap::new();
    for (name, us) in phases {
        p.insert((*name).to_string(), Json::Num(*us as f64));
    }
    obj.insert("phase_us".into(), Json::Obj(p));
    Json::Obj(obj)
}

/// The [`Handler`] connection handlers use: protocol payloads go to
/// [`ServiceCore::respond`], `GET /metrics` renders the registry.
struct CoreHandler {
    shared: Arc<ServerShared>,
}

impl Handler for CoreHandler {
    fn respond(&mut self, line: &str) -> String {
        self.shared.core.respond(line)
    }

    fn metrics(&mut self) -> Option<String> {
        Some(self.shared.core.metrics_text())
    }
}

fn error_response(e: &ServiceError) -> Response {
    Response::Error(WireError::new(
        ErrorKind::of_service_error(e),
        e.to_string(),
    ))
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    http_listener: Option<TcpListener>,
    live_listener: Option<TcpListener>,
    live_tuning: crate::live::LiveTuning,
    shared: Arc<ServerShared>,
}

/// State shared by both accept loops and every connection handler.
struct ServerShared {
    core: ServiceCore,
    max_connections: usize,
    shutdown: AtomicBool,
    connections: AtomicUsize,
    registry: ConnRegistry,
}

/// Handle to a server running on background threads; dropping it shuts
/// the server down.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    http_addr: Option<std::net::SocketAddr>,
    live_addr: Option<std::net::SocketAddr>,
    live_stop: Option<crate::live::LiveStopper>,
    shared: Arc<ServerShared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the configured address(es).
    ///
    /// # Examples
    ///
    /// ```
    /// use antlayer_service::{Server, ServerConfig};
    ///
    /// // Port 0 picks a free loopback port; `spawn` serves on a
    /// // background thread until the handle is dropped.
    /// let server = Server::bind(ServerConfig {
    ///     addr: "127.0.0.1:0".into(),
    ///     ..Default::default()
    /// })
    /// .unwrap();
    /// let handle = server.spawn().unwrap();
    /// println!("serving on {}", handle.addr());
    /// handle.shutdown();
    /// ```
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let http_listener = match &config.http_addr {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        let live_listener = match &config.live_addr {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        Ok(Server {
            listener,
            http_listener,
            live_listener,
            live_tuning: config.live_tuning.clone(),
            shared: Arc::new(ServerShared {
                core: ServiceCore::new(Arc::new(Scheduler::new(config.scheduler.clone()))),
                max_connections: config.max_connections,
                shutdown: AtomicBool::new(false),
                connections: AtomicUsize::new(0),
                registry: ConnRegistry::default(),
            }),
        })
    }

    /// The actually-bound line-TCP address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The actually-bound HTTP address, when an HTTP listener exists.
    pub fn http_addr(&self) -> Option<std::net::SocketAddr> {
        self.http_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// The actually-bound live (reactor) address, when one exists.
    pub fn live_addr(&self) -> Option<std::net::SocketAddr> {
        self.live_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// The shared scheduler (for in-process inspection).
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        self.shared.core.scheduler()
    }

    /// Runs the accept loop(s) on the calling thread until shutdown; the
    /// HTTP and live listeners (if any) get background threads.
    pub fn run(self) {
        let mut threads = Vec::new();
        if let Some(http) = self.http_listener {
            let shared = self.shared.clone();
            if let Ok(t) = std::thread::Builder::new()
                .name("antlayer-serve-http".into())
                .spawn(move || accept_loop(&http, &HttpTransport, &shared))
            {
                threads.push(t);
            }
        }
        if let Some(live) = self.live_listener {
            if let Ok((_stopper, t)) = spawn_live(live, &self.shared, self.live_tuning.clone()) {
                threads.push(t);
            }
        }
        accept_loop(&self.listener, &LineTransport, &self.shared);
        for t in threads {
            let _ = t.join();
        }
    }

    /// Runs the server on background threads and returns a handle.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let http_addr = self.http_addr();
        let live_addr = self.live_addr();
        let shared = self.shared.clone();
        let mut threads = Vec::new();
        if let Some(http) = self.http_listener {
            let shared = self.shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("antlayer-serve-http".into())
                    .spawn(move || accept_loop(&http, &HttpTransport, &shared))?,
            );
        }
        let mut live_stop = None;
        if let Some(live) = self.live_listener {
            let (stopper, t) = spawn_live(live, &self.shared, self.live_tuning.clone())?;
            live_stop = Some(stopper);
            threads.push(t);
        }
        let listener = self.listener;
        let line_shared = self.shared.clone();
        threads.push(
            std::thread::Builder::new()
                .name("antlayer-serve-accept".into())
                .spawn(move || accept_loop(&listener, &LineTransport, &line_shared))?,
        );
        Ok(ServerHandle {
            addr,
            http_addr,
            live_addr,
            live_stop,
            shared,
            threads,
        })
    }
}

/// Builds the live reactor over `listener` and gives it a thread.
fn spawn_live(
    listener: TcpListener,
    shared: &Arc<ServerShared>,
    tuning: crate::live::LiveTuning,
) -> std::io::Result<(crate::live::LiveStopper, JoinHandle<()>)> {
    let reactor = crate::live::LiveReactor::with_tuning(
        listener,
        shared.core.scheduler().clone(),
        shared.core.session_metrics().clone(),
        tuning,
    )?;
    let stopper = reactor.stopper();
    let thread = std::thread::Builder::new()
        .name("antlayer-serve-live".into())
        .spawn(move || reactor.run())?;
    Ok((stopper, thread))
}

impl ServerHandle {
    /// The server's line-TCP address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The server's HTTP address, when an HTTP listener is serving.
    pub fn http_addr(&self) -> Option<std::net::SocketAddr> {
        self.http_addr
    }

    /// The server's live (reactor) address, when one is serving.
    pub fn live_addr(&self) -> Option<std::net::SocketAddr> {
        self.live_addr
    }

    /// The shared scheduler (for in-process inspection: fault harnesses
    /// trigger segment-log compaction and read restore counters here).
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        self.shared.core.scheduler()
    }

    /// Makes every request on this server sleep `delay` before being
    /// answered — the fault harness's *slow shard* (`Delay` event), as
    /// opposed to a killed one. `Duration::ZERO` restores normal
    /// service.
    pub fn set_respond_delay(&self, delay: Duration) {
        self.shared.core.set_respond_delay(delay);
    }

    /// Stops the accept loops, severs every live connection, and joins
    /// the server threads. After this returns, the process answers
    /// nothing on its ports — clients (and routers) observe EOF/reset,
    /// exactly like a crashed shard, which is what failover tests and
    /// fleet health checks rely on.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake each accept loop so it observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(http) = self.http_addr {
            let _ = TcpStream::connect_timeout(&http, Duration::from_secs(1));
        }
        // The reactor has its own waker; its stopper makes run() return.
        if let Some(stopper) = self.live_stop.take() {
            stopper.stop();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Sever after the accept loops are gone so no new connection can
        // slip in post-drain.
        self.shared.registry.sever_all();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One accept loop: admission (connection cap), registration (so
/// shutdown can sever), and a handler thread per connection serving it
/// through `transport`.
fn accept_loop(
    listener: &TcpListener,
    transport: &'static dyn Transport,
    shared: &Arc<ServerShared>,
) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        // One small request, one small response: Nagle + delayed ACK
        // would add ~40 ms to every exchange.
        let _ = stream.set_nodelay(true);
        let active = shared.connections.fetch_add(1, Ordering::AcqRel) + 1;
        if active > shared.max_connections {
            shared.connections.fetch_sub(1, Ordering::AcqRel);
            transport.reject(
                stream,
                &protocol::encode_error(&format!(
                    "overloaded: {active} connections (cap {})",
                    shared.max_connections
                )),
            );
            continue;
        }
        let shared = shared.clone();
        // Register on the accept thread, not the handler: by the time
        // shutdown has joined this loop, every accepted connection is in
        // the registry, so sever_all cannot miss one that a handler
        // thread had not registered yet.
        let id = shared.registry.register(&stream);
        std::thread::spawn(move || {
            let mut handler = CoreHandler {
                shared: shared.clone(),
            };
            transport.serve(stream, &mut handler);
            if let Some(id) = id {
                shared.registry.deregister(id);
            }
            shared.connections.fetch_sub(1, Ordering::AcqRel);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse;

    fn test_core() -> ServiceCore {
        ServiceCore::new(Arc::new(Scheduler::new(SchedulerConfig {
            threads: 2,
            ..Default::default()
        })))
    }

    #[test]
    fn respond_ping_and_stats() {
        let core = test_core();
        let pong = parse(&core.respond(r#"{"op":"ping"}"#)).unwrap();
        assert_eq!(pong.get("ok"), Some(&Json::Bool(true)));
        let stats = parse(&core.respond(r#"{"op":"stats"}"#)).unwrap();
        assert_eq!(stats.get("served").and_then(Json::as_u64), Some(0));
        assert_eq!(
            stats.get("lenient_requests").and_then(Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn respond_layout_then_cached_layout() {
        let core = test_core();
        let line = r#"{"op":"layout","algo":"aco","nodes":5,"edges":[[0,1],[1,2],[2,3],[3,4]],"ants":3,"tours":3}"#;
        let first = parse(&core.respond(line)).unwrap();
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(first.get("source").and_then(Json::as_str), Some("computed"));
        let second = parse(&core.respond(line)).unwrap();
        assert_eq!(second.get("source").and_then(Json::as_str), Some("hit"));
        assert_eq!(first.get("layers"), second.get("layers"));
        assert_eq!(first.get("digest"), second.get("digest"));
    }

    #[test]
    fn respond_cache_pull_pages_and_rejects_admin_ops() {
        let core = test_core();
        let line = r#"{"op":"layout","algo":"lpl","nodes":4,"edges":[[0,1],[1,2],[2,3]]}"#;
        assert_eq!(
            parse(&core.respond(line)).unwrap().get("ok"),
            Some(&Json::Bool(true))
        );
        // One cached entry: the first pull returns it and is done.
        let page = parse(&core.respond(r#"{"op":"cache_pull","limit":8}"#)).unwrap();
        assert_eq!(page.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(page.get("done"), Some(&Json::Bool(true)));
        let Some(Json::Arr(entries)) = page.get("entries") else {
            panic!("cache_pull reply carries entries");
        };
        assert_eq!(entries.len(), 1);
        // Resuming after the returned cursor yields an empty, done page.
        let next = page.get("next").and_then(Json::as_str).unwrap();
        let line = format!(r#"{{"op":"cache_pull","cursor":"{next}"}}"#);
        let empty = parse(&core.respond(&line)).unwrap();
        assert_eq!(empty.get("done"), Some(&Json::Bool(true)));
        assert_eq!(empty.get("entries"), Some(&Json::Arr(Vec::new())));

        // Topology admin ops belong to the router, not a shard.
        for op in ["shard_join", "shard_drain"] {
            let line = format!(r#"{{"v":2,"op":"{op}","body":{{"addr":"127.0.0.1:1"}}}}"#);
            let v = parse(&core.respond(&line)).unwrap();
            assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{op}");
            assert_eq!(
                v.get("kind").and_then(Json::as_str),
                Some("invalid_request")
            );
            assert!(v
                .get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("router admin op"));
        }
    }

    #[test]
    fn respond_delay_slows_every_request() {
        let core = test_core();
        core.set_respond_delay(Duration::from_millis(40));
        let started = Instant::now();
        let pong = parse(&core.respond(r#"{"op":"ping"}"#)).unwrap();
        assert_eq!(pong.get("ok"), Some(&Json::Bool(true)));
        assert!(
            started.elapsed() >= Duration::from_millis(40),
            "delayed respond returned in {:?}",
            started.elapsed()
        );
        // Zero restores normal service.
        core.set_respond_delay(Duration::ZERO);
        let started = Instant::now();
        core.respond(r#"{"op":"ping"}"#);
        assert!(started.elapsed() < Duration::from_millis(40));
    }

    #[test]
    fn respond_bad_line_is_error_json() {
        let core = test_core();
        let v = parse(&core.respond("this is not json")).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert!(v
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("bad JSON"));
    }

    #[test]
    fn lenient_v1_requests_are_counted_v2_rejected() {
        let core = test_core();
        // v1 without an op: served as layout, counted as lenient.
        let v = parse(&core.respond(r#"{"nodes":2,"edges":[[0,1]],"algo":"lpl"}"#)).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(core.lenient_requests(), 1);
        let stats = parse(&core.respond(r#"{"op":"stats"}"#)).unwrap();
        assert_eq!(
            stats.get("lenient_requests").and_then(Json::as_u64),
            Some(1)
        );
        // v2 without an op: structured rejection, not a layout.
        let v = parse(&core.respond(r#"{"v":2,"id":5,"body":{"nodes":2}}"#)).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("missing_op"));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(5));
        assert_eq!(core.lenient_requests(), 1, "a v2 rejection is not lenient");
    }

    #[test]
    fn v2_layout_echoes_envelope() {
        let core = test_core();
        let line = r#"{"v":2,"op":"layout","id":"req-1","body":{"nodes":3,"edges":[[0,1],[1,2]],"algo":"lpl"}}"#;
        let v = parse(&core.respond(line)).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("v").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("id").and_then(Json::as_str), Some("req-1"));
        // The same body through v1 computes the same digest: the
        // envelope is framing, not identity.
        let v1 =
            parse(&core.respond(r#"{"op":"layout","nodes":3,"edges":[[0,1],[1,2]],"algo":"lpl"}"#))
                .unwrap();
        assert_eq!(v1.get("digest"), v.get("digest"));
        assert_eq!(v1.get("source").and_then(Json::as_str), Some("hit"));
    }

    #[test]
    fn traced_v2_layout_carries_phase_breakdown() {
        let core = test_core();
        let line = r#"{"v":2,"op":"layout","id":"t-1","trace":true,"body":{"nodes":4,"edges":[[0,1],[1,2],[2,3]],"algo":"aco","ants":3,"tours":3}}"#;
        let v = parse(&core.respond(line)).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        let trace = v.get("trace").expect("traced request echoes a trace");
        assert_eq!(trace.get("id").and_then(Json::as_str), Some("t-1"));
        assert_eq!(trace.get("op").and_then(Json::as_str), Some("layout"));
        assert!(trace.get("total_us").and_then(Json::as_u64).is_some());
        let phases = trace.get("phase_us").expect("phase breakdown");
        for phase in ["parse", "cache_lookup", "queue_wait", "compute"] {
            assert!(phases.get(phase).is_some(), "missing phase {phase}");
        }
        // An untraced request gets no trace member.
        let quiet = parse(&core.respond(r#"{"v":2,"op":"ping"}"#)).unwrap();
        assert!(quiet.get("trace").is_none());
    }

    #[test]
    fn debug_op_returns_slow_requests_with_phases() {
        let core = test_core();
        let line = r#"{"v":2,"op":"layout","id":77,"body":{"nodes":4,"edges":[[0,1],[1,2],[2,3]],"algo":"aco","ants":3,"tours":3}}"#;
        assert_eq!(
            parse(&core.respond(line)).unwrap().get("ok"),
            Some(&Json::Bool(true))
        );
        let v = parse(&core.respond(r#"{"v":2,"op":"debug"}"#)).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("op").and_then(Json::as_str), Some("debug"));
        let Some(Json::Arr(entries)) = v.get("slow_requests") else {
            panic!("debug body should carry slow_requests");
        };
        let layout = entries
            .iter()
            .find(|e| e.get("op").and_then(Json::as_str) == Some("layout"))
            .expect("the layout request should rank in the slow log");
        assert_eq!(layout.get("id").and_then(Json::as_str), Some("77"));
        let phases = layout.get("phase_us").expect("phase breakdown");
        assert!(phases.get("compute").is_some());
        assert!(phases.get("encode").is_some(), "slow log includes encode");
    }

    #[test]
    fn stats_includes_request_histogram_with_buckets() {
        let core = test_core();
        core.respond(r#"{"op":"ping"}"#);
        let v = parse(&core.respond(r#"{"op":"stats"}"#)).unwrap();
        let hist = v.get("server_request_us").expect("histogram in stats");
        assert!(hist.get("count").and_then(Json::as_u64).unwrap() >= 1);
        assert!(hist.get("p99_us").is_some());
        assert!(matches!(hist.get("buckets"), Some(Json::Arr(_))));
        // The wire shape round-trips into a mergeable snapshot.
        let snap = crate::protocol::histogram_from_json(hist).unwrap();
        assert!(snap.count >= 1);
    }

    #[test]
    fn metrics_text_renders_all_layers() {
        let core = test_core();
        core.respond(r#"{"op":"layout","nodes":3,"edges":[[0,1],[1,2]],"algo":"lpl"}"#);
        let text = core.metrics_text();
        for metric in [
            "server_request_us_count",
            "scheduler_served_total",
            "scheduler_queue_wait_us_count",
            "cache_bytes",
            "colony_stopped_early_total",
        ] {
            assert!(text.contains(metric), "missing {metric} in:\n{text}");
        }
    }

    #[test]
    fn http_get_metrics_serves_prometheus_text() {
        use std::io::{Read as _, Write as _};
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            http_addr: Some("127.0.0.1:0".into()),
            scheduler: SchedulerConfig {
                threads: 2,
                ..Default::default()
            },
            ..Default::default()
        })
        .unwrap();
        let handle = server.spawn().unwrap();
        let addr = handle.http_addr().unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.contains("Content-Type: text/plain"), "{reply}");
        assert!(reply.contains("scheduler_served_total"), "{reply}");
        handle.shutdown();
    }

    #[test]
    fn unified_invalid_graph_kind_for_layout_and_delta() {
        let core = test_core();
        // Inline self-loop via `layout`.
        let v = parse(&core.respond(r#"{"v":2,"op":"layout","body":{"nodes":2,"edges":[[1,1]]}}"#))
            .unwrap();
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("invalid_graph"));
        // The same defect as a delta: add a duplicate edge to a cached base.
        let base =
            parse(&core.respond(r#"{"op":"layout","nodes":2,"edges":[[0,1]],"algo":"lpl"}"#))
                .unwrap();
        let digest = base.get("digest").and_then(Json::as_str).unwrap();
        let line = format!(
            r#"{{"v":2,"op":"layout_delta","body":{{"base":"{digest}","add":[[0,1]],"algo":"lpl"}}}}"#
        );
        let v = parse(&core.respond(&line)).unwrap();
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("invalid_graph"));
        assert!(v
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .starts_with("invalid graph"));
    }
}
