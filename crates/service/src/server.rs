//! The network front end: accepts connections and answers protocol
//! requests through a pluggable [`Transport`] framing.
//!
//! Two listeners can serve the same scheduler side by side: the
//! line-delimited TCP listener ([`ServerConfig::addr`], the original
//! wire) and an optional HTTP/1.1 listener ([`ServerConfig::http_addr`],
//! `antlayer serve --http PORT`) speaking `POST /v2` — see
//! [`crate::transport`]. Everything below the framing is shared: one
//! connection cap, one [`Scheduler`], one cache.
//!
//! Connections are handled by one thread each (bounded by
//! [`ServerConfig::max_connections`]; excess connections are answered
//! with an `overloaded` error and closed). Requests on one connection
//! are pipelined: the handler reads, submits to the shared
//! [`Scheduler`], and blocks on the ticket — concurrency across
//! connections comes from the scheduler's worker pool, which also gives
//! digest-level dedup across clients for free.

use crate::protocol::{self, ErrorKind, Json, Request, Response, WireError};
use crate::scheduler::{Scheduler, SchedulerConfig, ServiceError};
use crate::transport::{HttpTransport, LineTransport, Transport};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Live connection streams, registered so shutdown can sever them. A
/// handler removes itself when its client disconnects; shutdown calls
/// `Shutdown::Both` on whatever is left, which makes every blocked
/// read return and the handler threads exit promptly — a stopped
/// server answers nothing, which is what fleet failover relies on.
#[derive(Default)]
struct ConnRegistry {
    streams: Mutex<HashMap<u64, TcpStream>>,
    next_id: AtomicU64,
}

impl ConnRegistry {
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.streams.lock().insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.streams.lock().remove(&id);
    }

    fn sever_all(&self) {
        for (_, stream) in self.streams.lock().drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address of the line-delimited TCP listener, e.g. `127.0.0.1:4617`
    /// (port 0 picks a free one).
    pub addr: String,
    /// Optional address of the HTTP/1.1 listener (`POST /v2`); `None`
    /// serves line-delimited TCP only.
    pub http_addr: Option<String>,
    /// Scheduler configuration (threads, cache, admission).
    pub scheduler: SchedulerConfig,
    /// Maximum concurrently served connections, across both listeners.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:4617".into(),
            http_addr: None,
            scheduler: SchedulerConfig::default(),
            max_connections: 128,
        }
    }
}

/// The transport-independent request handler: the scheduler plus the
/// protocol-level counters that do not belong to it (today: how many v1
/// requests leaned on the lenient absent-`op` default).
pub struct ServiceCore {
    scheduler: Arc<Scheduler>,
    /// v1 requests that omitted `"op"` and got the historic `layout`
    /// default; reported by `stats` as `lenient_requests` so operators
    /// can find clients to migrate before the default is retired.
    lenient_requests: AtomicU64,
}

impl ServiceCore {
    /// Builds a core around a scheduler.
    pub fn new(scheduler: Arc<Scheduler>) -> ServiceCore {
        ServiceCore {
            scheduler,
            lenient_requests: AtomicU64::new(0),
        }
    }

    /// The shared scheduler (for in-process inspection).
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.scheduler
    }

    /// v1 requests served through the lenient absent-`op` default.
    pub fn lenient_requests(&self) -> u64 {
        self.lenient_requests.load(Ordering::Relaxed)
    }

    /// Computes the response for one request payload (v1 or v2); the
    /// single dispatch point every transport calls.
    pub fn respond(&self, line: &str) -> String {
        let (request, env) = match protocol::parse_request_envelope(line) {
            Err((err, env)) => return Response::Error(err).encode(&env),
            Ok(parsed) => parsed,
        };
        if env.lenient_op {
            self.lenient_requests.fetch_add(1, Ordering::Relaxed);
        }
        let response = match request {
            Request::Ping => Response::Pong { router: false },
            Request::Stats => Response::Stats(self.stats_counters()),
            Request::Layout(req) => match self.scheduler.submit(*req) {
                Err(e) => error_response(&e),
                Ok(ticket) => match ticket.wait() {
                    Ok(r) => Response::Layout(Box::new(protocol::layout_reply_of(&r))),
                    Err(e) => error_response(&e),
                },
            },
            Request::LayoutDelta(req) => match self.scheduler.submit_delta(*req) {
                Err(e) => error_response(&e),
                Ok(ticket) => match ticket.wait() {
                    Ok(r) => Response::Layout(Box::new(protocol::layout_reply_of(&r))),
                    Err(e) => error_response(&e),
                },
            },
        };
        response.encode(&env)
    }

    fn stats_counters(&self) -> BTreeMap<String, Json> {
        let c = self.scheduler.counters();
        let mut obj = BTreeMap::new();
        let mut num = |k: &str, v: f64| {
            obj.insert(k.to_string(), Json::Num(v));
        };
        num("served", c.served as f64);
        num("computed", c.computed as f64);
        num("coalesced", c.coalesced as f64);
        num("rejected", c.rejected as f64);
        num("inflight", c.inflight as f64);
        num("lenient_requests", self.lenient_requests() as f64);
        num("cache_hits", c.cache.hits as f64);
        num("cache_misses", c.cache.misses as f64);
        num("cache_insertions", c.cache.insertions as f64);
        num("cache_evictions", c.cache.evictions as f64);
        obj
    }
}

fn error_response(e: &ServiceError) -> Response {
    Response::Error(WireError::new(
        ErrorKind::of_service_error(e),
        e.to_string(),
    ))
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    http_listener: Option<TcpListener>,
    shared: Arc<ServerShared>,
}

/// State shared by both accept loops and every connection handler.
struct ServerShared {
    core: ServiceCore,
    max_connections: usize,
    shutdown: AtomicBool,
    connections: AtomicUsize,
    registry: ConnRegistry,
}

/// Handle to a server running on background threads; dropping it shuts
/// the server down.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    http_addr: Option<std::net::SocketAddr>,
    shared: Arc<ServerShared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the configured address(es).
    ///
    /// # Examples
    ///
    /// ```
    /// use antlayer_service::{Server, ServerConfig};
    ///
    /// // Port 0 picks a free loopback port; `spawn` serves on a
    /// // background thread until the handle is dropped.
    /// let server = Server::bind(ServerConfig {
    ///     addr: "127.0.0.1:0".into(),
    ///     ..Default::default()
    /// })
    /// .unwrap();
    /// let handle = server.spawn().unwrap();
    /// println!("serving on {}", handle.addr());
    /// handle.shutdown();
    /// ```
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let http_listener = match &config.http_addr {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        Ok(Server {
            listener,
            http_listener,
            shared: Arc::new(ServerShared {
                core: ServiceCore::new(Arc::new(Scheduler::new(config.scheduler.clone()))),
                max_connections: config.max_connections,
                shutdown: AtomicBool::new(false),
                connections: AtomicUsize::new(0),
                registry: ConnRegistry::default(),
            }),
        })
    }

    /// The actually-bound line-TCP address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The actually-bound HTTP address, when an HTTP listener exists.
    pub fn http_addr(&self) -> Option<std::net::SocketAddr> {
        self.http_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// The shared scheduler (for in-process inspection).
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        self.shared.core.scheduler()
    }

    /// Runs the accept loop(s) on the calling thread until shutdown; the
    /// HTTP listener (if any) gets a background thread.
    pub fn run(self) {
        let mut threads = Vec::new();
        if let Some(http) = self.http_listener {
            let shared = self.shared.clone();
            if let Ok(t) = std::thread::Builder::new()
                .name("antlayer-serve-http".into())
                .spawn(move || accept_loop(&http, &HttpTransport, &shared))
            {
                threads.push(t);
            }
        }
        accept_loop(&self.listener, &LineTransport, &self.shared);
        for t in threads {
            let _ = t.join();
        }
    }

    /// Runs the server on background threads and returns a handle.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let http_addr = self.http_addr();
        let shared = self.shared.clone();
        let mut threads = Vec::new();
        if let Some(http) = self.http_listener {
            let shared = self.shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("antlayer-serve-http".into())
                    .spawn(move || accept_loop(&http, &HttpTransport, &shared))?,
            );
        }
        let listener = self.listener;
        let line_shared = self.shared.clone();
        threads.push(
            std::thread::Builder::new()
                .name("antlayer-serve-accept".into())
                .spawn(move || accept_loop(&listener, &LineTransport, &line_shared))?,
        );
        Ok(ServerHandle {
            addr,
            http_addr,
            shared,
            threads,
        })
    }
}

impl ServerHandle {
    /// The server's line-TCP address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The server's HTTP address, when an HTTP listener is serving.
    pub fn http_addr(&self) -> Option<std::net::SocketAddr> {
        self.http_addr
    }

    /// Stops the accept loops, severs every live connection, and joins
    /// the server threads. After this returns, the process answers
    /// nothing on its ports — clients (and routers) observe EOF/reset,
    /// exactly like a crashed shard, which is what failover tests and
    /// fleet health checks rely on.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake each accept loop so it observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(http) = self.http_addr {
            let _ = TcpStream::connect_timeout(&http, Duration::from_secs(1));
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Sever after the accept loops are gone so no new connection can
        // slip in post-drain.
        self.shared.registry.sever_all();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One accept loop: admission (connection cap), registration (so
/// shutdown can sever), and a handler thread per connection serving it
/// through `transport`.
fn accept_loop(
    listener: &TcpListener,
    transport: &'static dyn Transport,
    shared: &Arc<ServerShared>,
) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        // One small request, one small response: Nagle + delayed ACK
        // would add ~40 ms to every exchange.
        let _ = stream.set_nodelay(true);
        let active = shared.connections.fetch_add(1, Ordering::AcqRel) + 1;
        if active > shared.max_connections {
            shared.connections.fetch_sub(1, Ordering::AcqRel);
            transport.reject(
                stream,
                &protocol::encode_error(&format!(
                    "overloaded: {active} connections (cap {})",
                    shared.max_connections
                )),
            );
            continue;
        }
        let shared = shared.clone();
        // Register on the accept thread, not the handler: by the time
        // shutdown has joined this loop, every accepted connection is in
        // the registry, so sever_all cannot miss one that a handler
        // thread had not registered yet.
        let id = shared.registry.register(&stream);
        std::thread::spawn(move || {
            transport.serve(stream, &mut |line| shared.core.respond(line));
            if let Some(id) = id {
                shared.registry.deregister(id);
            }
            shared.connections.fetch_sub(1, Ordering::AcqRel);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse;

    fn test_core() -> ServiceCore {
        ServiceCore::new(Arc::new(Scheduler::new(SchedulerConfig {
            threads: 2,
            ..Default::default()
        })))
    }

    #[test]
    fn respond_ping_and_stats() {
        let core = test_core();
        let pong = parse(&core.respond(r#"{"op":"ping"}"#)).unwrap();
        assert_eq!(pong.get("ok"), Some(&Json::Bool(true)));
        let stats = parse(&core.respond(r#"{"op":"stats"}"#)).unwrap();
        assert_eq!(stats.get("served").and_then(Json::as_u64), Some(0));
        assert_eq!(
            stats.get("lenient_requests").and_then(Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn respond_layout_then_cached_layout() {
        let core = test_core();
        let line = r#"{"op":"layout","algo":"aco","nodes":5,"edges":[[0,1],[1,2],[2,3],[3,4]],"ants":3,"tours":3}"#;
        let first = parse(&core.respond(line)).unwrap();
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(first.get("source").and_then(Json::as_str), Some("computed"));
        let second = parse(&core.respond(line)).unwrap();
        assert_eq!(second.get("source").and_then(Json::as_str), Some("hit"));
        assert_eq!(first.get("layers"), second.get("layers"));
        assert_eq!(first.get("digest"), second.get("digest"));
    }

    #[test]
    fn respond_bad_line_is_error_json() {
        let core = test_core();
        let v = parse(&core.respond("this is not json")).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert!(v
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("bad JSON"));
    }

    #[test]
    fn lenient_v1_requests_are_counted_v2_rejected() {
        let core = test_core();
        // v1 without an op: served as layout, counted as lenient.
        let v = parse(&core.respond(r#"{"nodes":2,"edges":[[0,1]],"algo":"lpl"}"#)).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(core.lenient_requests(), 1);
        let stats = parse(&core.respond(r#"{"op":"stats"}"#)).unwrap();
        assert_eq!(
            stats.get("lenient_requests").and_then(Json::as_u64),
            Some(1)
        );
        // v2 without an op: structured rejection, not a layout.
        let v = parse(&core.respond(r#"{"v":2,"id":5,"body":{"nodes":2}}"#)).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("missing_op"));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(5));
        assert_eq!(core.lenient_requests(), 1, "a v2 rejection is not lenient");
    }

    #[test]
    fn v2_layout_echoes_envelope() {
        let core = test_core();
        let line = r#"{"v":2,"op":"layout","id":"req-1","body":{"nodes":3,"edges":[[0,1],[1,2]],"algo":"lpl"}}"#;
        let v = parse(&core.respond(line)).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("v").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("id").and_then(Json::as_str), Some("req-1"));
        // The same body through v1 computes the same digest: the
        // envelope is framing, not identity.
        let v1 =
            parse(&core.respond(r#"{"op":"layout","nodes":3,"edges":[[0,1],[1,2]],"algo":"lpl"}"#))
                .unwrap();
        assert_eq!(v1.get("digest"), v.get("digest"));
        assert_eq!(v1.get("source").and_then(Json::as_str), Some("hit"));
    }

    #[test]
    fn unified_invalid_graph_kind_for_layout_and_delta() {
        let core = test_core();
        // Inline self-loop via `layout`.
        let v = parse(&core.respond(r#"{"v":2,"op":"layout","body":{"nodes":2,"edges":[[1,1]]}}"#))
            .unwrap();
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("invalid_graph"));
        // The same defect as a delta: add a duplicate edge to a cached base.
        let base =
            parse(&core.respond(r#"{"op":"layout","nodes":2,"edges":[[0,1]],"algo":"lpl"}"#))
                .unwrap();
        let digest = base.get("digest").and_then(Json::as_str).unwrap();
        let line = format!(
            r#"{{"v":2,"op":"layout_delta","body":{{"base":"{digest}","add":[[0,1]],"algo":"lpl"}}}}"#
        );
        let v = parse(&core.respond(&line)).unwrap();
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("invalid_graph"));
        assert!(v
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .starts_with("invalid graph"));
    }
}
