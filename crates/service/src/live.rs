//! The live listener: a readiness reactor serving streaming edit
//! sessions (`antlayer serve --live PORT`).
//!
//! The request/reply listeners spend a thread per connection, which is
//! the right shape when every connection is actively asking questions.
//! A session tier is the opposite workload: tens of thousands of
//! mostly-idle subscriptions, each waiting for the handful of moments
//! when *its* graph changes. This module runs them all on **one**
//! thread parked in `epoll_wait` (via [`antlayer_reactor::Poller`]),
//! woken only by sockets with bytes to read, sockets with room to
//! write, or solve completions.
//!
//! ## Anatomy
//!
//! * Token 0 — the nonblocking listener: readable means pending
//!   accepts.
//! * Token 1 — the [`Waker`]: solve-completion threads (and shutdown)
//!   write a byte to pop the loop out of `epoll_wait`.
//! * Tokens 2+ — connections, each a small state machine: an inbound
//!   line-assembly buffer and an [`OutboundQueue`] of pending frames.
//!
//! Solves never run on the reactor thread. `session_open` and
//! `session_delta` each spawn a short-lived thread that submits to the
//! shared [`Scheduler`] (whose worker pool does the actual compute),
//! waits out the ticket, and posts a completion through an `mpsc`
//! channel plus a wake. The reactor folds the completion back into the
//! session — version bump, changed-layer diff against the previous
//! push, frame enqueue — all single-threaded, no locks.
//!
//! Deltas arriving while a solve is in flight compose into one pending
//! edit ([`GraphDelta::compose`]) and cost one re-solve when the
//! in-flight one lands — the wire frame reports how many edits it
//! covers in its `coalesced` member.

use crate::protocol::{
    self, Envelope, ErrorKind, Request, Response, SessionUpdate, WireError,
};
use crate::scheduler::{
    DeltaRequest, LayoutRequest, LayoutResponse, LayoutResult, Scheduler, ServiceError,
};
use crate::session::{
    diff_layers, OutboundQueue, SessionKey, SessionMetrics, SessionTable,
};
use antlayer_graph::GraphDelta;
use antlayer_reactor::{Interest, Poller, Waker};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// The listener's readiness token.
const TOKEN_LISTENER: u64 = 0;
/// The waker's readiness token.
const TOKEN_WAKER: u64 = 1;
/// First connection token; the counter never reuses values, so a stale
/// event for a torn-down connection can never address a new one.
const FIRST_CONN_TOKEN: u64 = 2;

/// Operator tuning for the live tier.
#[derive(Clone, Debug)]
pub struct LiveTuning {
    /// Outbound frames one session may have queued before it is
    /// declared a slow consumer and evicted. The default 32 is ~32
    /// pushes behind a fast editor — a client that far behind is not
    /// rendering them anyway.
    pub queue_cap: usize,
    /// `SO_SNDBUF` for accepted connections; `None` keeps the kernel
    /// default. Tens of thousands of connections each autotuning a
    /// multi-megabyte send buffer is a real memory bill, and capping
    /// the kernel's share makes `queue_cap` the *effective*
    /// backpressure bound instead of a limit hidden behind megabytes
    /// of kernel absorption.
    pub send_buffer: Option<usize>,
}

impl Default for LiveTuning {
    fn default() -> Self {
        LiveTuning {
            queue_cap: 32,
            send_buffer: None,
        }
    }
}

/// Bound on one line of inbound JSON; a connection exceeding it is
/// closed (mirrors the request/reply transports' `too_large` behavior).
const MAX_LINE_BYTES: usize = 64 * 1024 * 1024;

/// A session with no open/delta for this long counts into the
/// `sessions_idle` gauge.
const IDLE_AFTER: Duration = Duration::from_secs(5);

/// How often (at most) the reactor rescans for idle sessions; also the
/// `epoll_wait` timeout, so the gauge refreshes even on a quiet tier.
const IDLE_SCAN_PERIOD: Duration = Duration::from_secs(1);

/// What a solve thread posts back to the reactor.
struct Completion {
    key: SessionKey,
    /// Guards against re-open/close races: mismatched epochs are stale
    /// and dropped.
    epoch: u64,
    kind: CompletionKind,
}

enum CompletionKind {
    /// The base layout of a `session_open`.
    Open(Result<LayoutResponse, ServiceError>),
    Update {
        result: Result<LayoutResponse, ServiceError>,
        /// Extra deltas folded into this solve (0 = it covers one).
        coalesced: u64,
        /// Arrival of the earliest covered delta (push-latency clock).
        since: Instant,
    },
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Inbound bytes not yet terminated by `\n`.
    buf: Vec<u8>,
    out: OutboundQueue,
    /// Whether the poller registration currently includes write
    /// interest (tracked to skip redundant `epoll_ctl` calls).
    wants_write: bool,
}

/// Stops a running [`LiveReactor`] from any thread.
#[derive(Clone)]
pub struct LiveStopper {
    stop: Arc<AtomicBool>,
    waker: Arc<Waker>,
}

impl LiveStopper {
    /// Raises the stop flag and wakes the reactor; [`LiveReactor::run`]
    /// returns promptly.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        self.waker.wake();
    }
}

/// The live listener's event loop. Construct with [`LiveReactor::new`],
/// keep a [`stopper`](LiveReactor::stopper), and give [`run`]
/// (LiveReactor::run) a thread.
pub struct LiveReactor {
    listener: TcpListener,
    poller: Poller,
    waker: Arc<Waker>,
    stop: Arc<AtomicBool>,
    scheduler: Arc<Scheduler>,
    metrics: Arc<SessionMetrics>,
    conns: HashMap<u64, Conn>,
    sessions: SessionTable,
    next_token: u64,
    tx: mpsc::Sender<Completion>,
    rx: mpsc::Receiver<Completion>,
    last_idle_scan: Instant,
    tuning: LiveTuning,
}

impl LiveReactor {
    /// Wraps a bound listener in a reactor serving `scheduler`, with
    /// default [`LiveTuning`].
    pub fn new(
        listener: TcpListener,
        scheduler: Arc<Scheduler>,
        metrics: Arc<SessionMetrics>,
    ) -> std::io::Result<LiveReactor> {
        LiveReactor::with_tuning(listener, scheduler, metrics, LiveTuning::default())
    }

    /// [`LiveReactor::new`] with explicit tuning.
    pub fn with_tuning(
        listener: TcpListener,
        scheduler: Arc<Scheduler>,
        metrics: Arc<SessionMetrics>,
        tuning: LiveTuning,
    ) -> std::io::Result<LiveReactor> {
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;
        let waker = Arc::new(Waker::new()?);
        poller.register(waker.fd(), TOKEN_WAKER, Interest::READABLE)?;
        let (tx, rx) = mpsc::channel();
        Ok(LiveReactor {
            listener,
            poller,
            waker,
            stop: Arc::new(AtomicBool::new(false)),
            scheduler,
            metrics: metrics.clone(),
            conns: HashMap::new(),
            sessions: SessionTable::new(metrics),
            next_token: FIRST_CONN_TOKEN,
            tx,
            rx,
            last_idle_scan: Instant::now(),
            tuning,
        })
    }

    /// A handle that stops the loop from another thread.
    pub fn stopper(&self) -> LiveStopper {
        LiveStopper {
            stop: self.stop.clone(),
            waker: self.waker.clone(),
        }
    }

    /// Runs the event loop until [`LiveStopper::stop`] (or an epoll
    /// failure, which cannot be serviced).
    pub fn run(mut self) {
        let mut events = Vec::new();
        loop {
            if self.stop.load(Ordering::Acquire) {
                return;
            }
            if self
                .poller
                .wait(&mut events, Some(IDLE_SCAN_PERIOD))
                .is_err()
            {
                return;
            }
            for ev in std::mem::take(&mut events) {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => {
                        self.waker.drain();
                        self.drain_completions();
                    }
                    token => self.conn_ready(token, ev.readable, ev.writable, ev.hangup),
                }
            }
            // Completions can land while the loop is busy with socket
            // events; a wake byte may already be drained by then, so
            // sweep the channel once per iteration regardless.
            self.drain_completions();
            self.maybe_scan_idle();
        }
    }

    /// Accepts every pending connection (the listener is nonblocking
    /// and level-triggered: stop at `WouldBlock`).
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if let Some(bytes) = self.tuning.send_buffer {
                        let _ = antlayer_reactor::set_send_buffer(stream.as_raw_fd(), bytes);
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, Interest::READABLE)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            buf: Vec::new(),
                            out: OutboundQueue::new(self.tuning.queue_cap),
                            wants_write: false,
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Services one connection's readiness report.
    fn conn_ready(&mut self, token: u64, readable: bool, writable: bool, hangup: bool) {
        if !self.conns.contains_key(&token) {
            // Torn down earlier in this batch; events are stale.
            return;
        }
        if hangup {
            self.teardown(token);
            return;
        }
        if readable && !self.read_ready(token) {
            return; // torn down
        }
        if writable {
            self.write_ready(token);
        }
    }

    /// Drains the socket into the line buffer and handles every
    /// complete line. Returns `false` when the connection was torn
    /// down.
    fn read_ready(&mut self, token: u64) -> bool {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            match (&conn.stream).read(&mut chunk) {
                Ok(0) => {
                    self.teardown(token);
                    return false;
                }
                Ok(n) => {
                    conn.buf.extend_from_slice(&chunk[..n]);
                    if conn.buf.len() > MAX_LINE_BYTES {
                        self.teardown(token);
                        return false;
                    }
                    // Handle complete lines as they assemble; a line may
                    // arrive across many readiness events (the partial-
                    // frame tests feed one byte at a time).
                    while let Some(pos) = {
                        let conn = self.conns.get_mut(&token);
                        conn.and_then(|c| c.buf.iter().position(|&b| b == b'\n'))
                    } {
                        let line: Vec<u8> = {
                            let conn = self.conns.get_mut(&token).expect("checked above");
                            conn.buf.drain(..=pos).collect()
                        };
                        let text = String::from_utf8_lossy(&line);
                        self.handle_line(token, text.trim_end_matches(['\n', '\r']));
                        if !self.conns.contains_key(&token) {
                            return false;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.teardown(token);
                    return false;
                }
            }
        }
        true
    }

    /// Writes queued frames until the socket pushes back.
    fn write_ready(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let Some(front) = conn.out.front() else {
                break;
            };
            match (&conn.stream).write(front) {
                Ok(0) => {
                    self.teardown(token);
                    return;
                }
                Ok(n) => conn.out.advance(n),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.teardown(token);
                    return;
                }
            }
        }
        self.update_interest(token);
    }

    /// Re-registers the connection with write interest iff frames are
    /// queued (skipping the syscall when nothing changed).
    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let wants = !conn.out.is_empty();
        if wants == conn.wants_write {
            return;
        }
        let interest = if wants {
            Interest::BOTH
        } else {
            Interest::READABLE
        };
        if self
            .poller
            .modify(conn.stream.as_raw_fd(), token, interest)
            .is_ok()
        {
            conn.wants_write = wants;
        }
    }

    /// Drops a connection and every session it owned. In-flight solves
    /// for those sessions complete into nothing: their keys no longer
    /// resolve.
    fn teardown(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
        }
        self.sessions.remove_conn(token);
    }

    /// Parses and dispatches one inbound line.
    fn handle_line(&mut self, token: u64, line: &str) {
        if line.is_empty() {
            return;
        }
        let (request, env) = match protocol::parse_request_envelope(line) {
            Err((err, env)) => {
                self.enqueue_control(token, &Response::Error(err), &env);
                return;
            }
            Ok(parsed) => parsed,
        };
        match request {
            Request::Ping => {
                self.enqueue_control(token, &Response::Pong { router: false }, &env);
            }
            Request::SessionOpen(req) => self.handle_open(token, *req, env),
            Request::SessionDelta { delta } => self.handle_delta(token, delta, env),
            Request::SessionClose => self.handle_close(token, env),
            other => {
                let op = other.op();
                self.enqueue_control(
                    token,
                    &Response::Error(WireError::new(
                        ErrorKind::InvalidRequest,
                        format!(
                            "invalid request: '{op}' is a request/reply op; send it to the \
                             line-TCP or HTTP listener"
                        ),
                    )),
                    &env,
                );
            }
        }
    }

    /// The session key a v2 envelope addresses, or an error frame if
    /// the envelope cannot address one.
    fn session_key(&mut self, token: u64, env: &Envelope, op: &str) -> Option<(SessionKey, protocol::Json)> {
        match (&env.id, env.version) {
            (Some(id), 2) => Some(((token, id.encode()), id.clone())),
            _ => {
                self.enqueue_control(
                    token,
                    &Response::Error(WireError::new(
                        ErrorKind::InvalidRequest,
                        format!(
                            "invalid request: '{op}' requires a v2 envelope with an 'id' \
                             (the session key)"
                        ),
                    )),
                    env,
                );
                None
            }
        }
    }

    fn handle_open(&mut self, token: u64, req: LayoutRequest, env: Envelope) {
        let Some((key, id)) = self.session_key(token, &env, "session_open") else {
            return;
        };
        let now = Instant::now();
        let epoch = self.sessions.open(
            key.clone(),
            id,
            req.algo.clone(),
            req.nd_width,
            req.deadline,
            now,
        );
        let tx = self.tx.clone();
        let waker = self.waker.clone();
        let scheduler = self.scheduler.clone();
        // The solve must not block the reactor: a worker thread submits,
        // waits out the ticket (the scheduler pool computes), and wakes
        // the loop with the completion.
        std::thread::spawn(move || {
            let result = scheduler.submit(req).and_then(|t| t.wait());
            let _ = tx.send(Completion {
                key,
                epoch,
                kind: CompletionKind::Open(result),
            });
            waker.wake();
        });
    }

    fn handle_delta(&mut self, token: u64, delta: GraphDelta, env: Envelope) {
        let Some((key, _id)) = self.session_key(token, &env, "session_delta") else {
            return;
        };
        let now = Instant::now();
        let Some(session) = self.sessions.get_mut(&key) else {
            self.enqueue_control(
                token,
                &Response::Error(WireError::new(
                    ErrorKind::InvalidRequest,
                    "invalid request: no open session with this id on this connection; \
                     send session_open first",
                )),
                &env,
            );
            return;
        };
        if session.in_flight {
            // A solve is running (or the base layout is still being
            // computed): fold the edit into the pending set — the whole
            // burst costs one re-solve when the in-flight one lands.
            let queued = session.queue_delta(delta, now);
            if queued > 1 {
                self.metrics.coalesced.inc();
            }
            return;
        }
        let base = session
            .digest
            .expect("a session not in flight has its base layout");
        session.in_flight = true;
        session.last_activity = now;
        let epoch = session.epoch;
        let request = DeltaRequest {
            base,
            delta,
            algo: session.algo.clone(),
            nd_width: session.nd_width,
            deadline: session.deadline,
        };
        self.spawn_update_solve(key, epoch, request, 0, now);
    }

    fn handle_close(&mut self, token: u64, env: Envelope) {
        let Some((key, _id)) = self.session_key(token, &env, "session_close") else {
            return;
        };
        match self.sessions.remove(&key) {
            Some(session) => {
                self.enqueue_control(
                    token,
                    &Response::SessionClosed {
                        version: session.version,
                    },
                    &env,
                );
            }
            None => {
                self.enqueue_control(
                    token,
                    &Response::Error(WireError::new(
                        ErrorKind::InvalidRequest,
                        "invalid request: no open session with this id on this connection",
                    )),
                    &env,
                );
            }
        }
    }

    fn spawn_update_solve(
        &self,
        key: SessionKey,
        epoch: u64,
        request: DeltaRequest,
        coalesced: u64,
        since: Instant,
    ) {
        let tx = self.tx.clone();
        let waker = self.waker.clone();
        let scheduler = self.scheduler.clone();
        std::thread::spawn(move || {
            let result = scheduler.submit_delta(request).and_then(|t| t.wait());
            let _ = tx.send(Completion {
                key,
                epoch,
                kind: CompletionKind::Update {
                    result,
                    coalesced,
                    since,
                },
            });
            waker.wake();
        });
    }

    fn drain_completions(&mut self) {
        while let Ok(completion) = self.rx.try_recv() {
            self.handle_completion(completion);
        }
    }

    fn handle_completion(&mut self, completion: Completion) {
        let token = completion.key.0;
        let Some(session) = self.sessions.get_mut(&completion.key) else {
            return; // closed or the connection hung up; nothing to push
        };
        if session.epoch != completion.epoch {
            return; // a stale solve from the session's previous life
        }
        match completion.kind {
            CompletionKind::Open(Ok(response)) => {
                session.digest = Some(response.result.digest);
                session.layers = wire_layers(&response.result);
                session.version = 0;
                session.in_flight = false;
                let id = session.id.clone();
                let frame = Response::SessionOpened {
                    version: 0,
                    reply: Box::new(protocol::layout_reply_of(&response)),
                };
                self.enqueue_session(token, &completion.key.1, &frame, &Envelope::v2(Some(id)));
                self.start_pending(&completion.key);
            }
            CompletionKind::Update {
                result: Ok(response),
                coalesced,
                since,
            } => {
                session.version += 1;
                let new_layers = wire_layers(&response.result);
                let changed = diff_layers(&session.layers, &new_layers);
                session.layers = new_layers;
                session.digest = Some(response.result.digest);
                session.in_flight = false;
                let id = session.id.clone();
                let update = SessionUpdate {
                    version: session.version,
                    digest: response.result.digest.to_string(),
                    source: response.source.name().to_string(),
                    height: session.layers.len() as u64,
                    changed,
                    coalesced,
                    refreshed: response.result.refreshed,
                    compute_micros: response.result.compute_micros,
                };
                let frame = Response::SessionUpdate(Box::new(update));
                if self.enqueue_session(token, &completion.key.1, &frame, &Envelope::v2(Some(id)))
                {
                    self.metrics.pushes.inc();
                    self.metrics
                        .push_us
                        .record(since.elapsed().as_micros() as u64);
                }
                self.start_pending(&completion.key);
            }
            CompletionKind::Open(Err(e)) | CompletionKind::Update { result: Err(e), .. } => {
                // The session's server-side graph state is no longer
                // trustworthy (base evicted, delta rejected, …): close
                // it with the error; the client re-opens with its full
                // graph. `base_not_found` is the expected shape after a
                // shard drain moved the cache entry elsewhere.
                let id = self.sessions.remove(&completion.key).map(|s| s.id);
                self.enqueue_control(
                    token,
                    &Response::Error(WireError::new(ErrorKind::of_service_error(&e), e.to_string())),
                    &Envelope::v2(id),
                );
            }
        }
    }

    /// Starts the next solve if edits queued up while one was in
    /// flight.
    fn start_pending(&mut self, key: &SessionKey) {
        let Some(session) = self.sessions.get_mut(key) else {
            return;
        };
        if session.in_flight {
            return;
        }
        let Some(pending) = session.pending.take() else {
            return;
        };
        let Some(base) = session.digest else {
            return; // open failed; an error frame already closed it
        };
        session.in_flight = true;
        let request = DeltaRequest {
            base,
            delta: pending.delta,
            algo: session.algo.clone(),
            nd_width: session.nd_width,
            deadline: session.deadline,
        };
        let epoch = session.epoch;
        self.spawn_update_solve(key.clone(), epoch, request, pending.count - 1, pending.since);
    }

    /// Encodes and queues a frame that belongs to no session (errors,
    /// pong, close acks): never dropped.
    fn enqueue_control(&mut self, token: u64, response: &Response, env: &Envelope) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut bytes = response.encode(env).into_bytes();
        bytes.push(b'\n');
        conn.out.push_control(bytes);
        self.write_ready(token);
    }

    /// Encodes and queues a session-owned frame, evicting the session
    /// when its queue is over the cap (a consumer that is not draining).
    /// Returns whether the frame was queued.
    fn enqueue_session(
        &mut self,
        token: u64,
        session: &str,
        response: &Response,
        env: &Envelope,
    ) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        let mut bytes = response.encode(env).into_bytes();
        bytes.push(b'\n');
        if conn.out.push_session(session, bytes) {
            self.write_ready(token);
            return true;
        }
        // Slow consumer: drop its backlog and the session itself, and
        // tell the client why (the control frame bypasses the cap).
        self.metrics.evicted.inc();
        conn.out.drop_session(session);
        let key: SessionKey = (token, session.to_string());
        if let Some(removed) = self.sessions.remove(&key) {
            let err = Response::Error(WireError::new(
                ErrorKind::Overloaded,
                format!(
                    "session evicted: {} frames queued and the connection \
                     is not draining; re-open to resume",
                    self.tuning.queue_cap
                ),
            ));
            let mut bytes = err.encode(&Envelope::v2(Some(removed.id))).into_bytes();
            bytes.push(b'\n');
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.out.push_control(bytes);
            }
        }
        self.write_ready(token);
        false
    }

    /// Rescans for idle sessions at most once per [`IDLE_SCAN_PERIOD`].
    fn maybe_scan_idle(&mut self) {
        let now = Instant::now();
        if now.duration_since(self.last_idle_scan) < IDLE_SCAN_PERIOD {
            return;
        }
        self.last_idle_scan = now;
        self.metrics
            .set_idle(self.sessions.idle_count(now, IDLE_AFTER) as u64);
    }
}

/// The bottom-up layer lists of a result, in wire form.
fn wire_layers(result: &LayoutResult) -> Vec<Vec<u32>> {
    result
        .layering
        .layers()
        .into_iter()
        .map(|layer| layer.into_iter().map(|v| v.index() as u32).collect())
        .collect()
}
