//! Sharded LRU result cache keyed by canonical [`Digest`]s.
//!
//! The cache is `N` independent LRU shards, each behind its own mutex;
//! a request's shard is picked from the low digest bits, so contention
//! scales with core count instead of serializing on one lock. Eviction is
//! strict least-recently-used per shard via an index-linked list over a
//! slab — no per-access allocation, `O(1)` get/insert/evict.
//!
//! Hit/miss/insert/evict counters are process-wide atomics, cheap enough
//! to keep always-on and exposed through the server's `stats` op.

use crate::digest::Digest;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of cache behaviour (plus the live byte gauge).
#[derive(Default, Debug)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    /// Live gauge: the summed byte cost of every stored entry, as
    /// declared by [`ShardedCache::insert_costed`] callers.
    bytes: AtomicU64,
}

/// A point-in-time copy of [`CacheStats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Lookups that returned a stored value.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Values stored.
    pub insertions: u64,
    /// Values dropped to make room.
    pub evictions: u64,
    /// Approximate bytes held right now (a gauge, not a counter): the
    /// summed per-entry cost declared at insertion. Entries inserted
    /// without a cost count as zero.
    pub bytes: u64,
}

impl CacheStats {
    fn snapshot(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

const NIL: usize = usize::MAX;

struct Slot<V> {
    key: u128,
    value: V,
    /// Declared byte cost of the value (0 for cost-free inserts).
    cost: u64,
    prev: usize,
    next: usize,
}

/// One LRU shard: hash map for lookup, slab-linked list for recency.
struct LruShard<V> {
    map: HashMap<u128, usize>,
    slots: Vec<Slot<V>>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used.
    tail: usize,
    capacity: usize,
}

impl<V: Clone> LruShard<V> {
    fn new(capacity: usize) -> Self {
        LruShard {
            map: HashMap::with_capacity(capacity.min(1024)),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h].prev = i,
        }
        self.head = i;
    }

    fn get(&mut self, key: u128) -> Option<V> {
        let &i = self.map.get(&key)?;
        self.unlink(i);
        self.push_front(i);
        Some(self.slots[i].value.clone())
    }

    /// Inserts with a declared byte cost; returns `(evicted, freed)`
    /// where `freed` is the summed cost of entries this insert displaced
    /// (the refreshed old value and/or the evicted LRU entry), so the
    /// caller can keep the byte gauge exact.
    fn insert(&mut self, key: u128, value: V, cost: u64) -> (bool, u64) {
        if let Some(&i) = self.map.get(&key) {
            // Refresh both value and recency (recompute race: last wins).
            let freed = self.slots[i].cost;
            self.slots[i].value = value;
            self.slots[i].cost = cost;
            self.unlink(i);
            self.push_front(i);
            return (false, freed);
        }
        let mut evicted = false;
        let mut freed = 0;
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL, "capacity >= 1 and map non-empty");
            self.unlink(lru);
            self.map.remove(&self.slots[lru].key);
            freed = self.slots[lru].cost;
            self.free.push(lru);
            evicted = true;
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i].key = key;
                self.slots[i].value = value;
                self.slots[i].cost = cost;
                i
            }
            None => {
                self.slots.push(Slot {
                    key,
                    value,
                    cost,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.push_front(i);
        self.map.insert(key, i);
        (evicted, freed)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    /// Visits every live entry from least- to most-recently used without
    /// touching recency.
    fn for_each(&self, mut f: impl FnMut(u128, &V)) {
        let mut i = self.tail;
        while i != NIL {
            let slot = &self.slots[i];
            f(slot.key, &slot.value);
            i = slot.prev;
        }
    }
}

/// The sharded cache. `V` is cheaply cloneable (the scheduler stores
/// `Arc`ed results).
///
/// # Examples
///
/// ```
/// use antlayer_service::{Digest, ShardedCache};
///
/// let cache: ShardedCache<&str> = ShardedCache::new(1024, 8);
/// let key = Digest { hi: 7, lo: 9 };
/// assert_eq!(cache.get(key), None);
/// cache.insert(key, "layering bits");
/// assert_eq!(cache.get(key), Some("layering bits"));
/// assert_eq!(cache.counters().hits, 1);
/// ```
pub struct ShardedCache<V> {
    shards: Vec<Mutex<LruShard<V>>>,
    /// Power-of-two mask over the shard index bits.
    mask: u64,
    stats: CacheStats,
}

impl<V: Clone> ShardedCache<V> {
    /// A cache holding at most ~`capacity` values across `shards` shards
    /// (each shard gets the rounded-up share). `shards` is rounded up to
    /// a power of two; both are clamped to at least 1.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard = capacity.max(1).div_ceil(shards);
        ShardedCache {
            shards: (0..shards)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
            mask: shards as u64 - 1,
            stats: CacheStats::default(),
        }
    }

    fn shard(&self, digest: Digest) -> &Mutex<LruShard<V>> {
        // hi bits feed the in-shard HashMap; lo bits pick the shard.
        &self.shards[(digest.lo & self.mask) as usize]
    }

    /// Looks a digest up, refreshing its recency.
    pub fn get(&self, digest: Digest) -> Option<V> {
        let got = self.shard(digest).lock().get(digest.as_u128());
        match got {
            Some(v) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Like [`get`](Self::get) — recency is refreshed — but without
    /// touching the hit/miss counters. For internal resolutions (e.g.
    /// `layout_delta` base lookups) that are not responses served from
    /// the cache; counting them would make `cache_hits` overstate how
    /// much compute the cache absorbed.
    pub fn peek(&self, digest: Digest) -> Option<V> {
        self.shard(digest).lock().get(digest.as_u128())
    }

    /// Stores a value, evicting the shard's LRU entry when full. The
    /// entry counts zero bytes toward [`bytes`](Self::bytes); use
    /// [`insert_costed`](Self::insert_costed) when memory accounting
    /// matters.
    pub fn insert(&self, digest: Digest, value: V) {
        self.insert_costed(digest, value, 0);
    }

    /// Stores a value with a declared byte cost; the cache maintains
    /// the exact sum of live entries' costs in [`bytes`](Self::bytes)
    /// (costs of refreshed and evicted entries leave the gauge).
    pub fn insert_costed(&self, digest: Digest, value: V, bytes: u64) {
        let (evicted, freed) = self
            .shard(digest)
            .lock()
            .insert(digest.as_u128(), value, bytes);
        self.stats.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted {
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
        // Add before sub could transiently overshoot; sub-then-add could
        // transiently underflow the unsigned gauge. Do the net change in
        // one step.
        if bytes >= freed {
            self.stats.bytes.fetch_add(bytes - freed, Ordering::Relaxed);
        } else {
            self.stats.bytes.fetch_sub(freed - bytes, Ordering::Relaxed);
        }
    }

    /// Approximate bytes held right now (see
    /// [`insert_costed`](Self::insert_costed)).
    pub fn bytes(&self) -> u64 {
        self.stats.bytes.load(Ordering::Relaxed)
    }

    /// Number of currently stored values.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current counters.
    pub fn counters(&self) -> CacheCounters {
        self.stats.snapshot()
    }

    /// Visits every live entry, shard by shard, least- to most-recently
    /// used within each shard. Recency and counters are untouched; each
    /// shard's lock is held only while that shard is walked. Used by the
    /// persistence layer to snapshot live entries for compaction, where
    /// the LRU-first order means a replay of the snapshot reconstructs
    /// the same per-shard recency order.
    pub fn for_each(&self, mut f: impl FnMut(Digest, &V)) {
        for shard in &self.shards {
            shard.lock().for_each(|key, value| {
                let digest = Digest {
                    hi: (key >> 64) as u64,
                    lo: key as u64,
                };
                f(digest, value);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u64) -> Digest {
        // Spread across shards via lo; unique via hi.
        Digest { hi: i, lo: i }
    }

    #[test]
    fn get_after_insert_hits() {
        let c: ShardedCache<u32> = ShardedCache::new(8, 2);
        assert_eq!(c.get(d(1)), None);
        c.insert(d(1), 10);
        assert_eq!(c.get(d(1)), Some(10));
        let counters = c.counters();
        assert_eq!(
            (counters.hits, counters.misses, counters.insertions),
            (1, 1, 1)
        );
    }

    #[test]
    fn evicts_least_recently_used_per_shard() {
        // One shard, capacity 2: inserting a third key evicts the LRU.
        let c: ShardedCache<u32> = ShardedCache::new(2, 1);
        c.insert(d(1), 1);
        c.insert(d(2), 2);
        assert_eq!(c.get(d(1)), Some(1)); // 2 is now LRU
        c.insert(d(3), 3);
        assert_eq!(c.get(d(2)), None, "LRU entry must be evicted");
        assert_eq!(c.get(d(1)), Some(1));
        assert_eq!(c.get(d(3)), Some(3));
        assert_eq!(c.counters().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let c: ShardedCache<u32> = ShardedCache::new(2, 1);
        c.insert(d(1), 1);
        c.insert(d(2), 2);
        c.insert(d(1), 11); // refresh, no eviction
        assert_eq!(c.counters().evictions, 0);
        c.insert(d(3), 3); // evicts 2, the LRU
        assert_eq!(c.get(d(2)), None);
        assert_eq!(c.get(d(1)), Some(11));
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let c: ShardedCache<u8> = ShardedCache::new(100, 3);
        assert_eq!(c.shards.len(), 4);
        let c: ShardedCache<u8> = ShardedCache::new(100, 0);
        assert_eq!(c.shards.len(), 1);
    }

    #[test]
    fn many_keys_across_shards() {
        let c: ShardedCache<u64> = ShardedCache::new(1024, 8);
        for i in 0..1000 {
            c.insert(d(i), i);
        }
        for i in 0..1000 {
            assert_eq!(c.get(d(i)), Some(i));
        }
        assert_eq!(c.len(), 1000);
    }

    #[test]
    fn byte_gauge_tracks_inserts_refreshes_and_evictions() {
        let c: ShardedCache<u32> = ShardedCache::new(2, 1);
        c.insert_costed(d(1), 1, 100);
        c.insert_costed(d(2), 2, 50);
        assert_eq!(c.bytes(), 150);
        // Refresh replaces the old cost, not adds to it.
        c.insert_costed(d(1), 11, 70);
        assert_eq!(c.bytes(), 120);
        // Eviction (of LRU entry 2) releases its cost.
        c.insert_costed(d(3), 3, 10);
        assert_eq!(c.bytes(), 80);
        assert_eq!(c.counters().bytes, 80);
        // Cost-free insert paths leave the gauge untouched.
        c.insert(d(4), 4);
        assert_eq!(c.bytes(), 80 - 70, "evicting 1 released its 70 bytes");
    }

    #[test]
    fn for_each_visits_live_entries_lru_first() {
        let c: ShardedCache<u64> = ShardedCache::new(2, 1);
        c.insert(d(1), 1);
        c.insert(d(2), 2);
        c.insert(d(3), 3); // evicts 1
        let mut seen = Vec::new();
        c.for_each(|digest, &v| seen.push((digest, v)));
        assert_eq!(seen, vec![(d(2), 2), (d(3), 3)], "LRU first, evictee gone");
        // Iteration must not disturb recency: 2 is still the LRU.
        c.insert(d(4), 4);
        assert_eq!(c.get(d(2)), None);
        assert_eq!(c.get(d(3)), Some(3));
    }

    #[test]
    fn eviction_pressure_keeps_len_bounded() {
        let c: ShardedCache<u64> = ShardedCache::new(64, 4);
        for i in 0..10_000 {
            c.insert(d(i), i);
        }
        assert!(c.len() <= 64, "len {} exceeds capacity", c.len());
        assert!(c.counters().evictions >= 10_000 - 64);
    }
}
