//! The wire protocol: one JSON object per message, carried either as a
//! newline-delimited line over TCP or as an HTTP/1.1 `POST /v2` body
//! (see [`crate::transport`]).
//!
//! This module is the **single source of truth** for serialization: the
//! typed [`Request`] / [`Response`] / [`ErrorKind`] codec is what the
//! server, the router, and the `antlayer-client` crate all speak; the
//! hand-rolled [`Json`] value underneath needs exactly the JSON subset
//! implemented here (objects, arrays, strings, finite numbers, booleans,
//! null) and no external dependency.
//!
//! ## Requests — v1 (flat) and v2 (enveloped)
//!
//! v1, the original wire format, is one flat object per message:
//!
//! ```json
//! {"op":"layout","algo":"aco","nodes":6,"edges":[[0,1],[0,2],[1,3]],
//!  "nd_width":1.0,"seed":7,"ants":10,"tours":10,"deadline_ms":50}
//! {"op":"layout_delta","base":"…32 hex…","add":[[0,3]],"remove":[[0,1]],
//!  "algo":"aco","seed":7}
//! {"op":"stats"}
//! {"op":"ping"}
//! ```
//!
//! v2 wraps the same op bodies in a versioned envelope with an optional
//! caller correlation `id` (number or string, echoed in the response):
//!
//! ```json
//! {"v":2,"op":"layout","id":7,"body":{"nodes":6,"edges":[[0,1],[0,2],[1,3]]}}
//! {"v":2,"op":"ping"}
//! ```
//!
//! v1 lines keep parsing **bit-for-bit** (regression-tested against the
//! example lines in `docs/PROTOCOL.md`), including the lenient historic
//! default of an absent `"op"` meaning `layout` — flagged as
//! [`Envelope::lenient_op`] so servers can count it. Under v2 the op is
//! mandatory: a missing one is rejected with [`ErrorKind::MissingOp`].
//!
//! `algo` is one of `lpl`, `lpl-pl`, `minwidth`, `minwidth-pl`, `cg`,
//! `ns`, `aco` (default `aco`), `exact`, `portfolio` — `solver` is an
//! accepted alias for the key, and `"portfolio": true` is shorthand for
//! selecting the portfolio; `seed`, `ants`, `tours` tune the colony
//! and default to the library defaults; `deadline_ms` bounds the search
//! (anytime ACO); `nd_width` defaults to 1.
//!
//! `layout_delta` is the incremental re-layout request: `base` is the
//! `digest` of a previously served response, `add`/`remove` are edge
//! diffs against that request's graph, and the remaining fields describe
//! the edited request exactly like `layout` (callers normally repeat the
//! base request's values). The server warm-starts the colony from the
//! cached base layering; if the base has been evicted the response is an
//! error containing `base not found` and the client falls back to a full
//! `layout`.
//!
//! ## Responses
//!
//! ```json
//! {"ok":true,"digest":"…32 hex…","source":"hit","height":3,"width":2.0,
//!  "dummies":1,"reversed_edges":0,"stopped_early":false,"seeded":false,
//!  "compute_micros":1234,"layers":[[0,2],[1],[3]]}
//! {"ok":false,"error":"overloaded: …"}
//! ```
//!
//! A response to a v2 request carries the envelope back: `"v":2`, the
//! request's `"id"` if one was sent, and — on errors — a structured
//! `"kind"` member naming the [`ErrorKind`]:
//!
//! ```json
//! {"error":"missing op: v2 requests must name an op","kind":"missing_op","ok":false,"v":2}
//! ```

use crate::digest::Digest;
use crate::scheduler::{AlgoSpec, DeltaRequest, LayoutRequest, LayoutResponse, LayoutResult};
use antlayer_graph::{DiGraph, GraphDelta, NodeId};
use antlayer_obs::{HistogramSnapshot, TraceEntry};

pub use antlayer_layering::{MemberStats, RaceReport};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// A parsed JSON value. Object keys are sorted (`BTreeMap`) so encoded
/// output is canonical.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as a finite f64, if it is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_num()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Serializes to a single line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => encode_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_str(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with byte position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses one JSON value; trailing whitespace is allowed, trailing
/// garbage is an error.
///
/// # Examples
///
/// ```
/// use antlayer_service::protocol::{parse, Json};
///
/// let v = parse(r#"{"ok":true,"height":4}"#).unwrap();
/// assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
/// assert_eq!(v.get("height").and_then(Json::as_u64), Some(4));
/// assert_eq!(v.encode(), r#"{"height":4,"ok":true}"#); // canonical: keys sorted
/// assert!(parse("{truncated").is_err());
/// ```
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // protocol; reject instead of mis-decoding.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }
}

/// Structured classification of every error a server or router answers
/// with. The v1 wire carries it implicitly as the message *prefix*
/// (clients dispatch on `overloaded`, `base not found`, …); v2 error
/// responses name it explicitly in a `"kind"` member.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line/body is not the accepted JSON subset.
    BadJson,
    /// A `"v"` member naming a version this server does not speak.
    BadVersion,
    /// A v2 request without an `"op"` (v1 leniently defaults to
    /// `layout`; v2 does not).
    MissingOp,
    /// An `"op"` no server recognizes.
    UnknownOp,
    /// Semantic validation failure (bad `nd_width`, colony params, caps,
    /// malformed fields).
    InvalidRequest,
    /// Graph-shape validation failure: self-loops, duplicate edges,
    /// endpoints out of range, a delta that does not apply. One kind for
    /// `layout` and `layout_delta` alike.
    InvalidGraph,
    /// Admission control (queue depth or connection cap); retry with
    /// backoff.
    Overloaded,
    /// `layout_delta` named a base digest that is not cached; re-send a
    /// full `layout`.
    BaseNotFound,
    /// A compute worker vanished (panic); the server itself stays up.
    Internal,
    /// The request exceeds a transport cap (line length, HTTP
    /// `Content-Length`); the connection closes.
    TooLarge,
    /// Router only: every backend shard is down.
    Unroutable,
}

impl ErrorKind {
    /// The stable snake_case name carried in a v2 `"kind"` member.
    pub fn wire_name(self) -> &'static str {
        match self {
            ErrorKind::BadJson => "bad_json",
            ErrorKind::BadVersion => "bad_version",
            ErrorKind::MissingOp => "missing_op",
            ErrorKind::UnknownOp => "unknown_op",
            ErrorKind::InvalidRequest => "invalid_request",
            ErrorKind::InvalidGraph => "invalid_graph",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::BaseNotFound => "base_not_found",
            ErrorKind::Internal => "internal",
            ErrorKind::TooLarge => "too_large",
            ErrorKind::Unroutable => "unroutable",
        }
    }

    /// Inverse of [`wire_name`](Self::wire_name).
    pub fn from_wire_name(name: &str) -> Option<ErrorKind> {
        Some(match name {
            "bad_json" => ErrorKind::BadJson,
            "bad_version" => ErrorKind::BadVersion,
            "missing_op" => ErrorKind::MissingOp,
            "unknown_op" => ErrorKind::UnknownOp,
            "invalid_request" => ErrorKind::InvalidRequest,
            "invalid_graph" => ErrorKind::InvalidGraph,
            "overloaded" => ErrorKind::Overloaded,
            "base_not_found" => ErrorKind::BaseNotFound,
            "internal" => ErrorKind::Internal,
            "too_large" => ErrorKind::TooLarge,
            "unroutable" => ErrorKind::Unroutable,
            _ => return None,
        })
    }

    /// Classifies a v1 error message by its stable prefix — how clients
    /// without the `"kind"` member have always dispatched.
    pub fn classify(message: &str) -> ErrorKind {
        for (prefix, kind) in [
            ("bad JSON", ErrorKind::BadJson),
            ("unsupported protocol version", ErrorKind::BadVersion),
            ("missing op", ErrorKind::MissingOp),
            ("unknown op", ErrorKind::UnknownOp),
            ("invalid graph", ErrorKind::InvalidGraph),
            ("overloaded", ErrorKind::Overloaded),
            ("base not found", ErrorKind::BaseNotFound),
            ("internal error", ErrorKind::Internal),
            ("request line exceeds", ErrorKind::TooLarge),
            ("request body exceeds", ErrorKind::TooLarge),
            ("no shards available", ErrorKind::Unroutable),
        ] {
            if message.starts_with(prefix) {
                return kind;
            }
        }
        ErrorKind::InvalidRequest
    }

    /// The kind a [`ServiceError`](crate::scheduler::ServiceError) maps
    /// to on the wire.
    pub fn of_service_error(e: &crate::scheduler::ServiceError) -> ErrorKind {
        use crate::scheduler::ServiceError;
        match e {
            ServiceError::Overloaded { .. } => ErrorKind::Overloaded,
            ServiceError::BaseNotFound(_) => ErrorKind::BaseNotFound,
            ServiceError::InvalidRequest(_) => ErrorKind::InvalidRequest,
            ServiceError::InvalidGraph(_) => ErrorKind::InvalidGraph,
            ServiceError::Internal(_) => ErrorKind::Internal,
        }
    }
}

/// A wire-level error: the structured kind plus the v1 message (whose
/// prefix is the kind's historic spelling).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Structured classification.
    pub kind: ErrorKind,
    /// Full human-readable message; its prefix is stable per kind.
    pub message: String,
}

impl WireError {
    /// Builds an error of `kind` with the given message.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> WireError {
        WireError {
            kind,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for WireError {}

/// The request envelope: protocol version, the caller's correlation id
/// (v2 only; echoed in the response), and whether a v1 request leaned on
/// the historic absent-`op`-means-`layout` default.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Protocol version the request spoke (1 or 2).
    pub version: u8,
    /// v2 correlation id (a JSON number or string), echoed verbatim.
    pub id: Option<Json>,
    /// `true` when a v1 request omitted `"op"` and got the lenient
    /// `layout` default — counted by servers as `lenient_requests`.
    pub lenient_op: bool,
    /// The v2 trace-context flag (`"trace":true` in the envelope): asks
    /// the responder to return its phase breakdown inside the reply
    /// body. Routers set it on forwarded requests so the shard's span
    /// stitches into the fleet timeline under the client's envelope id.
    pub trace: bool,
}

impl Envelope {
    /// A plain v1 envelope (no id, explicit op).
    pub fn v1() -> Envelope {
        Envelope {
            version: 1,
            id: None,
            lenient_op: false,
            trace: false,
        }
    }

    /// A v2 envelope with an optional correlation id.
    pub fn v2(id: Option<Json>) -> Envelope {
        Envelope {
            version: 2,
            id,
            lenient_op: false,
            trace: false,
        }
    }

    /// The same envelope with the trace flag raised.
    pub fn traced(mut self) -> Envelope {
        self.trace = true;
        self
    }
}

/// A decoded client request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Compute (or fetch) a layout. Boxed: a layout request carries a
    /// whole graph, the other variants nothing.
    Layout(Box<LayoutRequest>),
    /// Incremental re-layout: an edge diff against a cached base layout.
    LayoutDelta(Box<DeltaRequest>),
    /// Store an already-computed entry in the receiver's cache — the
    /// replication write-through (router → replica shard) and read-repair
    /// carrier. Boxed like `Layout`: the entry carries a whole graph.
    CachePut(Box<CacheEntry>),
    /// Page through the receiver's cache in digest order — the transfer
    /// iterator live resharding replays as `cache_put`s. Answered by
    /// shards; the router uses it to stream entries during a
    /// `shard_join`/`shard_drain`.
    CachePull {
        /// Resume strictly after this digest; absent starts from the
        /// lowest cached digest.
        cursor: Option<Digest>,
        /// Maximum entries per page (1..=1024; default 64).
        limit: u64,
    },
    /// Router admin: add the shard at `addr` to the serving ring. The
    /// router streams the keys the new shard now owns from their old
    /// owners while requests keep serving. Shards reject it.
    ShardJoin {
        /// The joining shard's `host:port`.
        addr: String,
    },
    /// Router admin: drain and remove the shard at `addr` — its owned
    /// entries stream to their next ring candidates first, so a planned
    /// scale-down loses no cached work. Shards reject it.
    ShardDrain {
        /// The draining shard's `host:port`.
        addr: String,
    },
    /// Open a streaming edit session on the live (reactor) listener:
    /// the body is a full `layout` body, the reply is the base layout
    /// stamped with session version 0, and the v2 envelope `id` becomes
    /// the session key for every later `session_delta` on the same
    /// connection. Boxed like `Layout`: it carries a whole graph.
    SessionOpen(Box<LayoutRequest>),
    /// Stream one edit into an open session. Unlike `layout_delta`
    /// there is no `base` digest — the server tracks the session's
    /// current graph; the body is just the `add`/`remove` edge lists.
    /// The server answers asynchronously with a pushed
    /// `session_update` frame carrying the changed layers.
    SessionDelta {
        /// The edge edit to fold into the session's graph.
        delta: GraphDelta,
    },
    /// Close the session addressed by the envelope `id`; the reply
    /// echoes the last pushed version so a client can confirm nothing
    /// was in flight.
    SessionClose,
    /// Report server counters.
    Stats,
    /// Liveness check.
    Ping,
    /// Dump the slow-request log (the K slowest requests with their
    /// phase breakdowns) for fleet debugging.
    Debug,
}

impl Request {
    /// The wire op name.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Layout(_) => "layout",
            Request::LayoutDelta(_) => "layout_delta",
            Request::CachePut(_) => "cache_put",
            Request::CachePull { .. } => "cache_pull",
            Request::ShardJoin { .. } => "shard_join",
            Request::ShardDrain { .. } => "shard_drain",
            Request::SessionOpen(_) => "session_open",
            Request::SessionDelta { .. } => "session_delta",
            Request::SessionClose => "session_close",
            Request::Stats => "stats",
            Request::Ping => "ping",
            Request::Debug => "debug",
        }
    }

    /// The op body as a JSON object (the fields *without* the op / the
    /// envelope) — what goes inline in v1 and under `"body"` in v2.
    pub fn body_json(&self) -> Json {
        match self {
            Request::Ping | Request::Stats | Request::Debug | Request::SessionClose => {
                Json::Obj(BTreeMap::new())
            }
            Request::CachePut(e) => e.to_json(),
            Request::CachePull { cursor, limit } => {
                let mut obj = BTreeMap::new();
                if let Some(cursor) = cursor {
                    obj.insert("cursor".into(), Json::Str(cursor.to_string()));
                }
                obj.insert("limit".into(), Json::Num(*limit as f64));
                Json::Obj(obj)
            }
            Request::ShardJoin { addr } | Request::ShardDrain { addr } => {
                let mut obj = BTreeMap::new();
                obj.insert("addr".into(), Json::Str(addr.clone()));
                Json::Obj(obj)
            }
            Request::SessionDelta { delta } => {
                let mut obj = BTreeMap::new();
                obj.insert("add".into(), edge_u32_pairs_json(&delta.added));
                obj.insert("remove".into(), edge_u32_pairs_json(&delta.removed));
                Json::Obj(obj)
            }
            Request::Layout(r) | Request::SessionOpen(r) => {
                layout_body_json(&r.graph, &r.algo, r.nd_width, r.deadline)
            }
            Request::LayoutDelta(r) => delta_body_json(
                r.base,
                &r.delta.added,
                &r.delta.removed,
                &r.algo,
                r.nd_width,
                r.deadline,
            ),
        }
    }

    /// Encodes the v1 (flat) wire form.
    pub fn encode_v1(&self) -> String {
        encode_op_v1(self.op(), self.body_json())
    }

    /// Encodes the v2 enveloped wire form, with an optional correlation
    /// id (must be a JSON number or string).
    pub fn encode_v2(&self, id: Option<&Json>) -> String {
        encode_op_v2(self.op(), id, self.body_json())
    }
}

/// Builds a `layout` op body from a **borrowed** graph — the allocation
/// a typed client actually needs is the serialized bytes, never a copy
/// of the graph (the wire allows up to a million nodes).
pub fn layout_body_json(
    graph: &DiGraph,
    algo: &AlgoSpec,
    nd_width: f64,
    deadline: Option<Duration>,
) -> Json {
    let mut obj = BTreeMap::new();
    obj.insert("nodes".into(), Json::Num(graph.node_count() as f64));
    obj.insert("edges".into(), edge_pairs_json(graph.edges()));
    encode_common_fields(algo, nd_width, deadline, &mut obj);
    Json::Obj(obj)
}

/// Builds a `layout_delta` op body from borrowed edit slices.
pub fn delta_body_json(
    base: Digest,
    add: &[(u32, u32)],
    remove: &[(u32, u32)],
    algo: &AlgoSpec,
    nd_width: f64,
    deadline: Option<Duration>,
) -> Json {
    let mut obj = BTreeMap::new();
    obj.insert("base".into(), Json::Str(base.to_string()));
    obj.insert("add".into(), edge_u32_pairs_json(add));
    obj.insert("remove".into(), edge_u32_pairs_json(remove));
    encode_common_fields(algo, nd_width, deadline, &mut obj);
    Json::Obj(obj)
}

/// Encodes one v1 (flat) request line: the op spliced into its body.
pub fn encode_op_v1(op: &str, body: Json) -> String {
    let Json::Obj(mut obj) = body else {
        panic!("request bodies are objects");
    };
    obj.insert("op".into(), Json::Str(op.into()));
    Json::Obj(obj).encode()
}

/// Encodes one v2 (enveloped) request line.
pub fn encode_op_v2(op: &str, id: Option<&Json>, body: Json) -> String {
    let mut obj = BTreeMap::new();
    obj.insert("v".into(), Json::Num(2.0));
    obj.insert("op".into(), Json::Str(op.into()));
    if let Some(id) = id {
        obj.insert("id".into(), id.clone());
    }
    obj.insert("body".into(), body);
    Json::Obj(obj).encode()
}

/// Splices `"trace":true` into an already-encoded single-line v2
/// request — the router's way of asking a shard for its phase
/// breakdown without re-parsing the payload it is forwarding. Duplicate
/// members are harmless (object parsing is last-wins and both are
/// `true`); non-object lines pass through unchanged and fail shard-side
/// parsing exactly as they would have.
pub fn with_trace_flag(line: &str) -> String {
    match line.trim_start().strip_prefix('{') {
        Some(rest) if rest.trim_start().starts_with('}') => format!("{{\"trace\":true{rest}"),
        Some(rest) => format!("{{\"trace\":true,{rest}"),
        None => line.to_string(),
    }
}

/// Encodes one histogram snapshot as the `stats` extension's JSON
/// shape: raw mergeable buckets plus precomputed percentiles, so a
/// human reading the body gets numbers and a router aggregating shard
/// stats gets data it can merge *correctly* (bucket-wise — percentiles
/// of sums, never sums of percentiles).
///
/// ```json
/// {"count":3,"sum_us":110,"p50_us":5,"p90_us":100,"p99_us":100,
///  "p999_us":100,"buckets":[[5,2],[100,1]]}
/// ```
pub fn histogram_json(snap: &HistogramSnapshot) -> Json {
    let mut obj = BTreeMap::new();
    obj.insert("count".into(), Json::Num(snap.count as f64));
    obj.insert("sum_us".into(), Json::Num(snap.sum as f64));
    obj.insert("p50_us".into(), Json::Num(snap.percentile(0.50) as f64));
    obj.insert("p90_us".into(), Json::Num(snap.percentile(0.90) as f64));
    obj.insert("p99_us".into(), Json::Num(snap.percentile(0.99) as f64));
    obj.insert("p999_us".into(), Json::Num(snap.percentile(0.999) as f64));
    obj.insert(
        "buckets".into(),
        Json::Arr(
            snap.nonzero_buckets()
                .into_iter()
                .map(|(bound, count)| {
                    Json::Arr(vec![Json::Num(bound as f64), Json::Num(count as f64)])
                })
                .collect(),
        ),
    );
    Json::Obj(obj)
}

/// Decodes a [`histogram_json`] value back into a mergeable snapshot.
/// Returns `None` when the value is not an object with a `buckets`
/// array — the member routers use to tell histogram stats apart from
/// plain counters when aggregating shard replies.
pub fn histogram_from_json(v: &Json) -> Option<HistogramSnapshot> {
    let buckets = match v.get("buckets")? {
        Json::Arr(items) => items,
        _ => return None,
    };
    let mut pairs = Vec::with_capacity(buckets.len());
    for pair in buckets {
        let Json::Arr(bc) = pair else { return None };
        match (bc.first()?.as_u64(), bc.get(1)?.as_u64()) {
            (Some(bound), Some(count)) => pairs.push((bound, count)),
            _ => return None,
        }
    }
    let sum = v.get("sum_us")?.as_u64()?;
    Some(HistogramSnapshot::from_buckets(&pairs, sum))
}

/// Encodes one slow-log entry for the `debug` op: the correlation id,
/// op, total, ordered phase breakdown, and — on a router — the stitched
/// downstream shard span under `"remote"`.
pub fn trace_entry_json(e: &TraceEntry) -> Json {
    let mut obj = BTreeMap::new();
    obj.insert("id".into(), Json::Str(e.id.clone()));
    obj.insert("op".into(), Json::Str(e.op.into()));
    obj.insert("total_us".into(), Json::Num(e.total_us as f64));
    let mut phases = BTreeMap::new();
    for (name, us) in &e.phases {
        phases.insert((*name).to_string(), Json::Num(*us as f64));
    }
    obj.insert("phase_us".into(), Json::Obj(phases));
    if let Some(remote) = &e.remote {
        let mut r = BTreeMap::new();
        r.insert("addr".into(), Json::Str(remote.addr.clone()));
        r.insert("total_us".into(), Json::Num(remote.total_us as f64));
        let mut p = BTreeMap::new();
        for (name, us) in &remote.phases {
            p.insert(name.clone(), Json::Num(*us as f64));
        }
        r.insert("phase_us".into(), Json::Obj(p));
        obj.insert("remote".into(), Json::Obj(r));
    }
    Json::Obj(obj)
}

fn edge_pairs_json(edges: impl Iterator<Item = (NodeId, NodeId)>) -> Json {
    Json::Arr(
        edges
            .map(|(u, v)| {
                Json::Arr(vec![
                    Json::Num(u.index() as f64),
                    Json::Num(v.index() as f64),
                ])
            })
            .collect(),
    )
}

fn edge_u32_pairs_json(pairs: &[(u32, u32)]) -> Json {
    Json::Arr(
        pairs
            .iter()
            .map(|&(u, v)| Json::Arr(vec![Json::Num(u as f64), Json::Num(v as f64)]))
            .collect(),
    )
}

/// Emits the fields [`parse_common_fields`] reads, canonically: `algo`
/// for the classic algorithms and `solver` for the solver-contract
/// additions (`exact`, `portfolio`) — the two keys are aliases on the
/// read side; colony knobs only for ACO/portfolio, `deadline_ms` only
/// when set.
fn encode_common_fields(
    algo: &AlgoSpec,
    nd_width: f64,
    deadline: Option<Duration>,
    obj: &mut BTreeMap<String, Json>,
) {
    // The wire names match AlgoSpec::parse; Coffman–Graham's width bound
    // is not a wire parameter, so any CoffmanGraham spec encodes as "cg".
    match algo {
        AlgoSpec::Exact | AlgoSpec::Portfolio(_) => {
            obj.insert("solver".into(), Json::Str(algo.canonical_name()));
        }
        AlgoSpec::CoffmanGraham(_) => {
            obj.insert("algo".into(), Json::Str("cg".into()));
        }
        other => {
            obj.insert("algo".into(), Json::Str(other.canonical_name()));
        }
    }
    if let AlgoSpec::Aco(p) | AlgoSpec::Portfolio(p) = algo {
        obj.insert("seed".into(), Json::Num(p.seed as f64));
        obj.insert("ants".into(), Json::Num(p.n_ants as f64));
        obj.insert("tours".into(), Json::Num(p.n_tours as f64));
    }
    obj.insert("nd_width".into(), Json::Num(nd_width));
    if let Some(d) = deadline {
        obj.insert("deadline_ms".into(), Json::Num(d.as_millis() as f64));
    }
}

/// Decodes one request line (v1 or v2) together with its [`Envelope`].
/// Errors carry the envelope too, so the reply can echo `v`/`id`.
///
/// # Examples
///
/// ```
/// use antlayer_service::protocol::{parse_request_envelope, ErrorKind, Request};
///
/// let (req, env) =
///     parse_request_envelope(r#"{"v":2,"op":"layout","id":9,"body":{"nodes":2}}"#).unwrap();
/// assert!(matches!(req, Request::Layout(_)));
/// assert_eq!(env.version, 2);
///
/// // v2 requires an explicit op; v1 defaults a missing one to `layout`.
/// let (err, _) = parse_request_envelope(r#"{"v":2,"body":{"nodes":2}}"#).unwrap_err();
/// assert_eq!(err.kind, ErrorKind::MissingOp);
/// let (_, env) = parse_request_envelope(r#"{"nodes":2}"#).unwrap();
/// assert!(env.lenient_op);
/// ```
pub fn parse_request_envelope(line: &str) -> Result<(Request, Envelope), (WireError, Envelope)> {
    let v = parse(line).map_err(|e| {
        (
            WireError::new(ErrorKind::BadJson, format!("bad JSON: {e}")),
            Envelope::v1(),
        )
    })?;
    let (env, op, body) = match v.get("v") {
        None => {
            let lenient = v.get("op").is_none();
            let op = v.get("op").and_then(Json::as_str).unwrap_or("layout");
            let env = Envelope {
                version: 1,
                id: None,
                lenient_op: lenient,
                // v1 has no trace-context field; tracing is v2-only.
                trace: false,
            };
            (env, op, &v)
        }
        Some(version) => {
            // Echo the id even on version errors, so a v2 client can
            // correlate the rejection; only numbers and strings qualify.
            let id = v
                .get("id")
                .filter(|j| matches!(j, Json::Num(_) | Json::Str(_)))
                .cloned();
            let mut env = Envelope::v2(id);
            env.trace = v.get("trace") == Some(&Json::Bool(true));
            if version.as_u64() != Some(2) {
                return Err((
                    WireError::new(
                        ErrorKind::BadVersion,
                        format!(
                            "unsupported protocol version {} (this server speaks v2 \
                             and unversioned v1)",
                            version.encode()
                        ),
                    ),
                    env,
                ));
            }
            if let Some(id) = v.get("id") {
                if !matches!(id, Json::Num(_) | Json::Str(_)) {
                    return Err((
                        WireError::new(
                            ErrorKind::InvalidRequest,
                            "invalid request: 'id' must be a number or string",
                        ),
                        env,
                    ));
                }
            }
            let Some(op) = v.get("op").and_then(Json::as_str) else {
                return Err((
                    WireError::new(
                        ErrorKind::MissingOp,
                        "missing op: v2 requests must name an op",
                    ),
                    env,
                ));
            };
            let body = match v.get("body") {
                None => &EMPTY_BODY,
                Some(b @ Json::Obj(_)) => b,
                Some(_) => {
                    return Err((
                        WireError::new(
                            ErrorKind::InvalidRequest,
                            "invalid request: 'body' must be an object",
                        ),
                        env,
                    ))
                }
            };
            (env, op, body)
        }
    };
    let request = match op {
        "ping" => Request::Ping,
        "stats" => Request::Stats,
        "debug" => Request::Debug,
        "layout" => Request::Layout(Box::new(parse_layout(body).map_err(|e| (e, env.clone()))?)),
        "layout_delta" => Request::LayoutDelta(Box::new(
            parse_layout_delta(body).map_err(|e| (e, env.clone()))?,
        )),
        "cache_put" => Request::CachePut(Box::new(
            CacheEntry::from_json(body).map_err(|e| (e, env.clone()))?,
        )),
        "cache_pull" => {
            let (cursor, limit) = parse_cache_pull(body).map_err(|e| (e, env.clone()))?;
            Request::CachePull { cursor, limit }
        }
        "shard_join" => Request::ShardJoin {
            addr: parse_shard_addr(body, "shard_join").map_err(|e| (e, env.clone()))?,
        },
        "shard_drain" => Request::ShardDrain {
            addr: parse_shard_addr(body, "shard_drain").map_err(|e| (e, env.clone()))?,
        },
        "session_open" => {
            Request::SessionOpen(Box::new(parse_layout(body).map_err(|e| (e, env.clone()))?))
        }
        "session_delta" => Request::SessionDelta {
            delta: parse_session_delta(body).map_err(|e| (e, env.clone()))?,
        },
        "session_close" => Request::SessionClose,
        other => {
            return Err((
                WireError::new(ErrorKind::UnknownOp, format!("unknown op '{other}'")),
                env,
            ))
        }
    };
    Ok((request, env))
}

/// The empty v2 body used when `"body"` is absent (ping/stats need none).
static EMPTY_BODY: Json = Json::Obj(BTreeMap::new());

/// Decodes one request line, discarding the envelope; kept for callers
/// that only dispatch (the router) and for v1-era tests.
///
/// # Examples
///
/// ```
/// use antlayer_service::protocol::{parse_request, Request};
///
/// let line = r#"{"op":"layout","nodes":3,"edges":[[0,1],[1,2]]}"#;
/// let Request::Layout(req) = parse_request(line).unwrap() else {
///     panic!("expected a layout request");
/// };
/// assert_eq!(req.graph.node_count(), 3);
/// assert!(parse_request(r#"{"op":"warp"}"#).is_err());
/// ```
pub fn parse_request(line: &str) -> Result<Request, String> {
    parse_request_envelope(line)
        .map(|(r, _)| r)
        .map_err(|(e, _)| e.message)
}

fn parse_layout(v: &Json) -> Result<LayoutRequest, WireError> {
    let invalid = |m: String| WireError::new(ErrorKind::InvalidRequest, m);
    let nodes = v
        .get("nodes")
        .and_then(Json::as_u64)
        .ok_or_else(|| invalid("layout: missing 'nodes'".into()))? as usize;
    if nodes > 1_000_000 {
        return Err(invalid(format!("layout: {nodes} nodes exceeds the 1M cap")));
    }
    let edges = parse_edge_pairs(v, "edges")?.unwrap_or_default();
    for &(u, w) in &edges {
        if u as usize >= nodes || w as usize >= nodes {
            return Err(WireError::new(
                ErrorKind::InvalidGraph,
                format!("invalid graph: edge ({u},{w}) out of range for {nodes} nodes"),
            ));
        }
    }
    // Self-loops and duplicate edges surface as the same structured
    // `invalid graph` kind a bad `layout_delta` gets from the scheduler.
    let graph = DiGraph::from_edges(nodes, &edges)
        .map_err(|e| WireError::new(ErrorKind::InvalidGraph, format!("invalid graph: {e}")))?;
    let (algo, nd_width, deadline) = parse_common_fields(v, "layout")?;
    Ok(LayoutRequest {
        graph,
        algo,
        nd_width,
        deadline,
    })
}

/// A delta is an *edit*; a diff rewriting a large fraction of a graph
/// should be sent as a full layout (or re-open the session). The cap
/// also bounds the work one request can buy on the connection thread,
/// where delta application runs before admission control can shed it.
const MAX_DELTA_EDITS: usize = 100_000;

fn parse_layout_delta(v: &Json) -> Result<DeltaRequest, WireError> {
    let invalid = |m: &str| WireError::new(ErrorKind::InvalidRequest, m.to_string());
    let base = v
        .get("base")
        .and_then(Json::as_str)
        .ok_or_else(|| invalid("layout_delta: missing 'base' digest"))?;
    let base = Digest::from_hex(base)
        .ok_or_else(|| invalid("layout_delta: 'base' must be a 32-hex-digit request digest"))?;
    let added = parse_edge_pairs(v, "add")?.unwrap_or_default();
    let removed = parse_edge_pairs(v, "remove")?.unwrap_or_default();
    let delta = GraphDelta::new(added, removed);
    if delta.is_empty() {
        return Err(invalid(
            "layout_delta: empty delta (nothing to add or remove)",
        ));
    }
    if delta.len() > MAX_DELTA_EDITS {
        return Err(WireError::new(
            ErrorKind::InvalidRequest,
            format!(
                "layout_delta: {} edits exceeds the {MAX_DELTA_EDITS} cap; send a full layout",
                delta.len()
            ),
        ));
    }
    // Endpoint bounds are checked against the base graph when the delta
    // is applied; the scheduler owns that graph.
    let (algo, nd_width, deadline) = parse_common_fields(v, "layout_delta")?;
    Ok(DeltaRequest {
        base,
        delta,
        algo,
        nd_width,
        deadline,
    })
}

/// Parses a `session_delta` body: just the edit's `add`/`remove` edge
/// lists — no `base` digest (the session tracks its own graph) and no
/// algo knobs (the session keeps the ones it opened with). The same
/// non-empty rule and [`MAX_DELTA_EDITS`] cap as `layout_delta` apply.
fn parse_session_delta(v: &Json) -> Result<GraphDelta, WireError> {
    let invalid = |m: &str| WireError::new(ErrorKind::InvalidRequest, m.to_string());
    let added = parse_edge_pairs(v, "add")?.unwrap_or_default();
    let removed = parse_edge_pairs(v, "remove")?.unwrap_or_default();
    let delta = GraphDelta::new(added, removed);
    if delta.is_empty() {
        return Err(invalid(
            "session_delta: empty delta (nothing to add or remove)",
        ));
    }
    if delta.len() > MAX_DELTA_EDITS {
        return Err(WireError::new(
            ErrorKind::InvalidRequest,
            format!(
                "session_delta: {} edits exceeds the {MAX_DELTA_EDITS} cap; re-open the session",
                delta.len()
            ),
        ));
    }
    Ok(delta)
}

/// Parses the `addr` member of a `shard_join`/`shard_drain` body.
fn parse_shard_addr(v: &Json, op: &str) -> Result<String, WireError> {
    v.get("addr")
        .and_then(Json::as_str)
        .filter(|a| !a.is_empty())
        .map(String::from)
        .ok_or_else(|| {
            WireError::new(
                ErrorKind::InvalidRequest,
                format!("{op}: missing 'addr' (the shard's host:port)"),
            )
        })
}

/// Parses a `cache_pull` body: an optional resume `cursor` digest plus
/// a bounded page `limit`.
fn parse_cache_pull(v: &Json) -> Result<(Option<Digest>, u64), WireError> {
    let invalid = |m: String| WireError::new(ErrorKind::InvalidRequest, m);
    let cursor = match v.get("cursor") {
        None => None,
        Some(j) => Some(j.as_str().and_then(Digest::from_hex).ok_or_else(|| {
            invalid("cache_pull: 'cursor' must be a 32-hex-digit digest".into())
        })?),
    };
    // The cap bounds one page's response size the way MAX_DELTA_EDITS
    // bounds one delta's work: a transfer never buys unbounded encoding
    // on the connection thread.
    const MAX_PULL_LIMIT: u64 = 1_024;
    let limit = match v.get("limit") {
        None => 64,
        Some(j) => j
            .as_u64()
            .filter(|&n| (1..=MAX_PULL_LIMIT).contains(&n))
            .ok_or_else(|| {
                invalid(format!(
                    "cache_pull: 'limit' must be an integer in 1..={MAX_PULL_LIMIT}"
                ))
            })?,
    };
    Ok((cursor, limit))
}

/// Parses a `[[u,v],...]` member; `Ok(None)` when the key is absent.
fn parse_edge_pairs(v: &Json, key: &str) -> Result<Option<Vec<(u32, u32)>>, WireError> {
    let invalid = |m: String| WireError::new(ErrorKind::InvalidRequest, m);
    let member = match v.get(key) {
        None => return Ok(None),
        Some(Json::Arr(pairs)) => pairs,
        Some(_) => return Err(invalid(format!("'{key}' must be an array"))),
    };
    let mut edges = Vec::with_capacity(member.len());
    for pair in member {
        match pair {
            Json::Arr(uv) if uv.len() == 2 => {
                let endpoint = |j: &Json| {
                    j.as_u64().ok_or_else(|| {
                        invalid("edge endpoint must be a non-negative integer".into())
                    })
                };
                let u = endpoint(&uv[0])?;
                let w = endpoint(&uv[1])?;
                if u > u32::MAX as u64 || w > u32::MAX as u64 {
                    return Err(invalid(format!(
                        "edge ({u},{w}) endpoint exceeds the id range"
                    )));
                }
                edges.push((u as u32, w as u32));
            }
            _ => return Err(invalid(format!("'{key}' must be [[u,v],...]"))),
        }
    }
    Ok(Some(edges))
}

/// Parses the fields `layout` and `layout_delta` share: the solver
/// selection (with wire-level work caps), `nd_width`, and
/// `deadline_ms`. `op` prefixes error messages so they name the request
/// that failed.
///
/// The solver is selected by `algo` or its alias `solver` (either key
/// accepts any registered name; giving both with different values is
/// invalid), or by the shorthand `"portfolio": true`. Absent all three,
/// the default is `aco`.
fn parse_common_fields(v: &Json, op: &str) -> Result<(AlgoSpec, f64, Option<Duration>), WireError> {
    let invalid = |m: String| WireError::new(ErrorKind::InvalidRequest, m);
    let seed = v.get("seed").and_then(Json::as_u64).unwrap_or(1);
    let algo_key = match v.get("algo") {
        None => None,
        Some(j) => Some(
            j.as_str()
                .ok_or_else(|| invalid(format!("{op}: 'algo' must be a string")))?,
        ),
    };
    let solver_key = match v.get("solver") {
        None => None,
        Some(j) => Some(
            j.as_str()
                .ok_or_else(|| invalid(format!("{op}: 'solver' must be a string")))?,
        ),
    };
    let named = match (solver_key, algo_key) {
        (Some(s), Some(a)) if s != a => {
            return Err(invalid(format!(
                "{op}: 'solver' ({s}) and 'algo' ({a}) disagree"
            )))
        }
        (Some(s), _) => Some(s),
        (None, a) => a,
    };
    let portfolio_flag = match v.get("portfolio") {
        None => None,
        Some(Json::Bool(b)) => Some(*b),
        Some(_) => return Err(invalid(format!("{op}: 'portfolio' must be a boolean"))),
    };
    let algo_name = match (portfolio_flag, named) {
        (Some(true), Some(name)) if name != "portfolio" => {
            return Err(invalid(format!(
                "{op}: 'portfolio': true contradicts solver '{name}'"
            )))
        }
        (Some(true), _) => "portfolio",
        (Some(false), Some("portfolio")) => {
            return Err(invalid(format!(
                "{op}: 'portfolio': false contradicts solver 'portfolio'"
            )))
        }
        (_, name) => name.unwrap_or("aco"),
    };
    let mut algo = AlgoSpec::parse(algo_name, seed).map_err(invalid)?;
    if let AlgoSpec::Aco(params) | AlgoSpec::Portfolio(params) = &mut algo {
        // Wire-level work caps: admission control counts jobs, not work,
        // so a single request must not be able to occupy a worker for an
        // unbounded time (the paper's production colony is 10 x 10).
        const MAX_ANTS: u64 = 1_024;
        const MAX_TOURS: u64 = 10_000;
        if let Some(ants) = v.get("ants").and_then(Json::as_u64) {
            if ants > MAX_ANTS {
                return Err(invalid(format!(
                    "{op}: {ants} ants exceeds the {MAX_ANTS} cap"
                )));
            }
            params.n_ants = ants as usize;
        }
        if let Some(tours) = v.get("tours").and_then(Json::as_u64) {
            if tours > MAX_TOURS {
                return Err(invalid(format!(
                    "{op}: {tours} tours exceeds the {MAX_TOURS} cap"
                )));
            }
            params.n_tours = tours as usize;
        }
    }
    let nd_width = match v.get("nd_width") {
        None => 1.0,
        Some(n) => n
            .as_num()
            .ok_or_else(|| invalid(format!("{op}: 'nd_width' must be a number")))?,
    };
    let deadline = v
        .get("deadline_ms")
        .map(|d| {
            d.as_u64().map(Duration::from_millis).ok_or_else(|| {
                invalid(format!(
                    "{op}: 'deadline_ms' must be a non-negative integer"
                ))
            })
        })
        .transpose()?;
    Ok((algo, nd_width, deadline))
}

/// The client-side view of a successful layout response — every field a
/// server puts on the wire, decoded. The serializer and parser live
/// together here so encode → parse is the identity (property-tested).
#[derive(Clone, Debug, PartialEq)]
pub struct LayoutReply {
    /// 32-hex-digit canonical digest (the cache key / next delta base).
    pub digest: String,
    /// How the response was produced (`hit`, `computed`, `warm`,
    /// `coalesced`).
    pub source: String,
    /// Number of layers.
    pub height: u64,
    /// Widest layer including dummies (width-model units).
    pub width: f64,
    /// Dummy-vertex count.
    pub dummies: u64,
    /// Edges reversed to break input cycles.
    pub reversed_edges: u64,
    /// Whether a deadline truncated the search.
    pub stopped_early: bool,
    /// Whether the colony was warm-started from a cached base.
    pub seeded: bool,
    /// Whether the result is certified optimal for the paper's cost
    /// `H + W` (the exact search completed for this graph).
    pub certified: bool,
    /// The winning portfolio member's solver name; absent for
    /// single-solver requests.
    pub winner: Option<String>,
    /// Per-member race stats, in run order; empty for single-solver
    /// requests.
    pub members: Vec<MemberStats>,
    /// Wall time of the computation in microseconds.
    pub compute_micros: u64,
    /// Bottom-up layers, each a list of node ids.
    pub layers: Vec<Vec<u32>>,
}

impl LayoutReply {
    /// The response body as a JSON object (without envelope members).
    pub fn to_json(&self) -> Json {
        let mut obj = BTreeMap::new();
        obj.insert("ok".into(), Json::Bool(true));
        obj.insert("digest".into(), Json::Str(self.digest.clone()));
        obj.insert("source".into(), Json::Str(self.source.clone()));
        obj.insert("height".into(), Json::Num(self.height as f64));
        obj.insert("width".into(), Json::Num(self.width));
        obj.insert("dummies".into(), Json::Num(self.dummies as f64));
        obj.insert(
            "reversed_edges".into(),
            Json::Num(self.reversed_edges as f64),
        );
        obj.insert("stopped_early".into(), Json::Bool(self.stopped_early));
        obj.insert("seeded".into(), Json::Bool(self.seeded));
        obj.insert("certified".into(), Json::Bool(self.certified));
        if let Some(winner) = &self.winner {
            obj.insert("winner".into(), Json::Str(winner.clone()));
        }
        if !self.members.is_empty() {
            let members = self
                .members
                .iter()
                .map(|m| {
                    let mut o = BTreeMap::new();
                    o.insert("solver".into(), Json::Str(m.solver.clone()));
                    o.insert("cost".into(), Json::Num(m.cost));
                    o.insert("micros".into(), Json::Num(m.micros as f64));
                    o.insert("stopped_early".into(), Json::Bool(m.stopped_early));
                    o.insert("certified".into(), Json::Bool(m.certified));
                    Json::Obj(o)
                })
                .collect();
            obj.insert("members".into(), Json::Arr(members));
        }
        obj.insert(
            "compute_micros".into(),
            Json::Num(self.compute_micros as f64),
        );
        let layers = self
            .layers
            .iter()
            .map(|layer| Json::Arr(layer.iter().map(|&v| Json::Num(v as f64)).collect()))
            .collect();
        obj.insert("layers".into(), Json::Arr(layers));
        Json::Obj(obj)
    }

    /// Decodes a layout response object.
    pub fn from_json(v: &Json) -> Result<LayoutReply, String> {
        let str_field = |k: &str| {
            v.get(k)
                .and_then(Json::as_str)
                .map(String::from)
                .ok_or_else(|| format!("layout reply: missing string '{k}'"))
        };
        let u64_field = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("layout reply: missing integer '{k}'"))
        };
        let bool_field = |k: &str| match v.get(k) {
            Some(Json::Bool(b)) => Ok(*b),
            _ => Err(format!("layout reply: missing boolean '{k}'")),
        };
        let layers = match v.get("layers") {
            Some(Json::Arr(layers)) => layers
                .iter()
                .map(|layer| match layer {
                    Json::Arr(ids) => ids
                        .iter()
                        .map(|id| {
                            id.as_u64()
                                .filter(|&n| n <= u32::MAX as u64)
                                .map(|n| n as u32)
                                .ok_or_else(|| "layout reply: bad node id".to_string())
                        })
                        .collect::<Result<Vec<u32>, String>>(),
                    _ => Err("layout reply: each layer must be an array".into()),
                })
                .collect::<Result<Vec<Vec<u32>>, String>>()?,
            _ => return Err("layout reply: missing 'layers'".into()),
        };
        let members = match v.get("members") {
            None => Vec::new(),
            Some(Json::Arr(members)) => members
                .iter()
                .map(|m| {
                    let solver = m
                        .get("solver")
                        .and_then(Json::as_str)
                        .ok_or("layout reply: member missing string 'solver'")?;
                    let cost = m
                        .get("cost")
                        .and_then(Json::as_num)
                        .ok_or("layout reply: member missing number 'cost'")?;
                    let micros = m
                        .get("micros")
                        .and_then(Json::as_u64)
                        .ok_or("layout reply: member missing integer 'micros'")?;
                    let flag = |k: &str| match m.get(k) {
                        Some(Json::Bool(b)) => Ok(*b),
                        _ => Err(format!("layout reply: member missing boolean '{k}'")),
                    };
                    Ok(MemberStats {
                        solver: solver.to_string(),
                        cost,
                        micros,
                        stopped_early: flag("stopped_early")?,
                        certified: flag("certified")?,
                    })
                })
                .collect::<Result<Vec<MemberStats>, String>>()?,
            Some(_) => return Err("layout reply: 'members' must be an array".into()),
        };
        Ok(LayoutReply {
            digest: str_field("digest")?,
            source: str_field("source")?,
            height: u64_field("height")?,
            width: v
                .get("width")
                .and_then(Json::as_num)
                .ok_or("layout reply: missing number 'width'")?,
            dummies: u64_field("dummies")?,
            reversed_edges: u64_field("reversed_edges")?,
            stopped_early: bool_field("stopped_early")?,
            seeded: bool_field("seeded")?,
            // Absent on pre-portfolio servers: default to uncertified.
            certified: matches!(v.get("certified"), Some(Json::Bool(true))),
            winner: v.get("winner").and_then(Json::as_str).map(String::from),
            members,
            compute_micros: u64_field("compute_micros")?,
            layers,
        })
    }
}

/// Builds the wire view of a server-side [`LayoutResponse`].
pub fn layout_reply_of(response: &LayoutResponse) -> LayoutReply {
    let result = &response.result;
    LayoutReply {
        digest: result.digest.to_string(),
        source: response.source.name().to_string(),
        height: result.metrics.height as u64,
        width: result.metrics.width,
        dummies: result.metrics.dummy_count,
        reversed_edges: result.reversed_edges as u64,
        stopped_early: result.stopped_early,
        seeded: result.seeded,
        certified: result.certified,
        winner: result.race.as_ref().map(|r| r.winner.clone()),
        members: result
            .race
            .as_ref()
            .map(|r| r.members.clone())
            .unwrap_or_default(),
        compute_micros: result.compute_micros,
        layers: result
            .layering
            .layers()
            .into_iter()
            .map(|layer| layer.into_iter().map(|v| v.index() as u32).collect())
            .collect(),
    }
}

/// A portable cached layout: everything a process needs to reconstruct
/// a [`LayoutResult`] it never computed. One codec, two carriers: the
/// `cache_put` wire op (the router's replication write-through and
/// read-repair) and the segment-log records of [`crate::persist`] — so
/// the persistence property tests exercise the wire body too.
///
/// The entry stores the *inputs* of the derived fields (graph edges,
/// bottom-up layer lists, `nd_width`) rather than the metrics
/// themselves: the receiver re-derives orientation and metrics with the
/// same code that produced them, so a restored entry is
/// indistinguishable from the entry an organic compute would have
/// cached — including `approx_bytes`, which keeps the byte budget
/// honest across restore paths.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheEntry {
    /// The canonical request digest the entry is cached under. Trusted
    /// as given: on the wire the sender is the fleet's own router; in a
    /// segment log the record is checksummed.
    pub digest: Digest,
    /// Node count of the request graph.
    pub nodes: u64,
    /// Edges of the request graph (as sent, before orientation).
    pub edges: Vec<(u32, u32)>,
    /// Bottom-up layers of the cached layering, each a list of node ids
    /// — the same shape a [`LayoutReply`] carries.
    pub layers: Vec<Vec<u32>>,
    /// The request's node/dummy width ratio, needed to re-derive the
    /// width metrics.
    pub nd_width: f64,
    /// Edges reversed to break input cycles.
    pub reversed_edges: u64,
    /// Whether the colony was warm-started from a cached base.
    pub seeded: bool,
    /// Whether the result is certified optimal.
    pub certified: bool,
    /// Wall time of the original computation in microseconds.
    pub compute_micros: u64,
}

impl CacheEntry {
    /// Captures a computed result as a portable entry.
    pub fn of_result(result: &LayoutResult) -> CacheEntry {
        CacheEntry {
            digest: result.digest,
            nodes: result.graph.node_count() as u64,
            edges: result
                .graph
                .edges()
                .map(|(u, v)| (u.index() as u32, v.index() as u32))
                .collect(),
            layers: result
                .layering
                .layers()
                .into_iter()
                .map(|layer| layer.into_iter().map(|v| v.index() as u32).collect())
                .collect(),
            nd_width: result.nd_width,
            reversed_edges: result.reversed_edges as u64,
            seeded: result.seeded,
            certified: result.certified,
            compute_micros: result.compute_micros,
        }
    }

    /// The entry as a JSON object — the `cache_put` op body and the
    /// segment-log record payload.
    pub fn to_json(&self) -> Json {
        let mut obj = BTreeMap::new();
        obj.insert("digest".into(), Json::Str(self.digest.to_string()));
        obj.insert("nodes".into(), Json::Num(self.nodes as f64));
        obj.insert("edges".into(), edge_u32_pairs_json(&self.edges));
        obj.insert(
            "layers".into(),
            Json::Arr(
                self.layers
                    .iter()
                    .map(|layer| Json::Arr(layer.iter().map(|&v| Json::Num(v as f64)).collect()))
                    .collect(),
            ),
        );
        obj.insert("nd_width".into(), Json::Num(self.nd_width));
        obj.insert(
            "reversed_edges".into(),
            Json::Num(self.reversed_edges as f64),
        );
        obj.insert("seeded".into(), Json::Bool(self.seeded));
        obj.insert("certified".into(), Json::Bool(self.certified));
        obj.insert(
            "compute_micros".into(),
            Json::Num(self.compute_micros as f64),
        );
        Json::Obj(obj)
    }

    /// Decodes and validates an entry object (the inverse of
    /// [`to_json`](Self::to_json)). Shares the `layout` op's caps: the
    /// graph shape is fully validated here so a malformed entry is
    /// rejected before it can poison a cache or a replay.
    pub fn from_json(v: &Json) -> Result<CacheEntry, WireError> {
        let invalid = |m: String| WireError::new(ErrorKind::InvalidRequest, m);
        let digest = v
            .get("digest")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid("cache_put: missing 'digest'".into()))?;
        let digest = Digest::from_hex(digest)
            .ok_or_else(|| invalid("cache_put: 'digest' must be 32 hex digits".into()))?;
        let nodes = v
            .get("nodes")
            .and_then(Json::as_u64)
            .ok_or_else(|| invalid("cache_put: missing 'nodes'".into()))?;
        if nodes > 1_000_000 {
            return Err(invalid(format!(
                "cache_put: {nodes} nodes exceeds the 1M cap"
            )));
        }
        let edges = parse_edge_pairs(v, "edges")?.unwrap_or_default();
        for &(u, w) in &edges {
            if u as u64 >= nodes || w as u64 >= nodes {
                return Err(WireError::new(
                    ErrorKind::InvalidGraph,
                    format!("invalid graph: edge ({u},{w}) out of range for {nodes} nodes"),
                ));
            }
        }
        let layers = match v.get("layers") {
            Some(Json::Arr(layers)) => layers
                .iter()
                .map(|layer| match layer {
                    Json::Arr(ids) => ids
                        .iter()
                        .map(|id| {
                            id.as_u64()
                                .filter(|&n| n < nodes)
                                .map(|n| n as u32)
                                .ok_or_else(|| invalid("cache_put: bad layer node id".into()))
                        })
                        .collect::<Result<Vec<u32>, WireError>>(),
                    _ => Err(invalid("cache_put: each layer must be an array".into())),
                })
                .collect::<Result<Vec<Vec<u32>>, WireError>>()?,
            _ => return Err(invalid("cache_put: missing 'layers'".into())),
        };
        let nd_width = match v.get("nd_width") {
            None => 1.0,
            Some(n) => n
                .as_num()
                .filter(|w| w.is_finite() && *w >= 0.0)
                .ok_or_else(|| {
                    invalid("cache_put: 'nd_width' must be a finite non-negative number".into())
                })?,
        };
        let opt_u64 = |k: &str| match v.get(k) {
            None => Ok(0),
            Some(n) => n
                .as_u64()
                .ok_or_else(|| invalid(format!("cache_put: '{k}' must be a non-negative integer"))),
        };
        let flag = |k: &str| match v.get(k) {
            None => Ok(false),
            Some(Json::Bool(b)) => Ok(*b),
            Some(_) => Err(invalid(format!("cache_put: '{k}' must be a boolean"))),
        };
        Ok(CacheEntry {
            digest,
            nodes,
            edges,
            layers,
            nd_width,
            reversed_edges: opt_u64("reversed_edges")?,
            seeded: flag("seeded")?,
            certified: flag("certified")?,
            compute_micros: opt_u64("compute_micros")?,
        })
    }
}

/// One page of a shard's cache answering a `cache_pull`: entries in
/// ascending digest order, a resume cursor, and a `done` flag. The
/// puller re-sends with `cursor = next` until `done` — entries
/// installed concurrently behind the cursor are the *sender's* news,
/// not the page's; live resharding closes that window with a final
/// sweep after the topology flips.
#[derive(Clone, Debug, PartialEq)]
pub struct CachePage {
    /// Entries with digests strictly above the request cursor, ascending.
    pub entries: Vec<CacheEntry>,
    /// The highest digest in `entries` — the next request's `cursor`.
    /// Absent when the page is empty.
    pub next: Option<Digest>,
    /// `true` when no cached digest lies above `next`.
    pub done: bool,
}

impl CachePage {
    /// The response body as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut obj = BTreeMap::new();
        obj.insert("ok".into(), Json::Bool(true));
        obj.insert("op".into(), Json::Str("cache_pull".into()));
        obj.insert(
            "entries".into(),
            Json::Arr(self.entries.iter().map(CacheEntry::to_json).collect()),
        );
        if let Some(next) = self.next {
            obj.insert("next".into(), Json::Str(next.to_string()));
        }
        obj.insert("done".into(), Json::Bool(self.done));
        Json::Obj(obj)
    }

    /// Decodes a cache-pull response object.
    pub fn from_json(v: &Json) -> Result<CachePage, String> {
        let entries = match v.get("entries") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|e| CacheEntry::from_json(e).map_err(|err| err.message))
                .collect::<Result<Vec<CacheEntry>, String>>()?,
            _ => return Err("cache_pull reply: missing 'entries'".into()),
        };
        let next = match v.get("next") {
            None => None,
            Some(j) => Some(
                j.as_str()
                    .and_then(Digest::from_hex)
                    .ok_or("cache_pull reply: 'next' must be a 32-hex-digit digest")?,
            ),
        };
        let done = match v.get("done") {
            Some(Json::Bool(b)) => *b,
            _ => return Err("cache_pull reply: missing boolean 'done'".into()),
        };
        Ok(CachePage {
            entries,
            next,
            done,
        })
    }
}

/// One member of a [`TopologyReply`]: a ring slot's address and
/// lifecycle state (`joining`, `live`, `draining`, or `removed`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopologyShard {
    /// The shard's `host:port`.
    pub addr: String,
    /// The slot's lifecycle state name.
    pub state: String,
}

/// The router's answer to a `shard_join`/`shard_drain`: the topology
/// epoch after the change, every ring slot with its state, and how many
/// cached entries the transfer moved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopologyReply {
    /// Monotonic topology epoch; bumps on every membership/state change.
    pub epoch: u64,
    /// Cached entries streamed to their new owners by this change.
    pub moved: u64,
    /// Every ring slot (including `removed` tombstones), in slot order.
    pub shards: Vec<TopologyShard>,
}

impl TopologyReply {
    /// The response body as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut obj = BTreeMap::new();
        obj.insert("ok".into(), Json::Bool(true));
        obj.insert("op".into(), Json::Str("topology".into()));
        obj.insert("epoch".into(), Json::Num(self.epoch as f64));
        obj.insert("moved".into(), Json::Num(self.moved as f64));
        obj.insert(
            "shards".into(),
            Json::Arr(
                self.shards
                    .iter()
                    .map(|s| {
                        let mut o = BTreeMap::new();
                        o.insert("addr".into(), Json::Str(s.addr.clone()));
                        o.insert("state".into(), Json::Str(s.state.clone()));
                        Json::Obj(o)
                    })
                    .collect(),
            ),
        );
        Json::Obj(obj)
    }

    /// Decodes a topology response object.
    pub fn from_json(v: &Json) -> Result<TopologyReply, String> {
        let epoch = v
            .get("epoch")
            .and_then(Json::as_u64)
            .ok_or("topology reply: missing integer 'epoch'")?;
        let moved = v
            .get("moved")
            .and_then(Json::as_u64)
            .ok_or("topology reply: missing integer 'moved'")?;
        let shards = match v.get("shards") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|s| {
                    let addr = s
                        .get("addr")
                        .and_then(Json::as_str)
                        .ok_or("topology reply: shard missing string 'addr'")?;
                    let state = s
                        .get("state")
                        .and_then(Json::as_str)
                        .ok_or("topology reply: shard missing string 'state'")?;
                    Ok(TopologyShard {
                        addr: addr.to_string(),
                        state: state.to_string(),
                    })
                })
                .collect::<Result<Vec<TopologyShard>, String>>()?,
            _ => return Err("topology reply: missing 'shards'".into()),
        };
        Ok(TopologyReply {
            epoch,
            moved,
            shards,
        })
    }
}

/// One pushed `session_update` frame: the incremental half of the live
/// session protocol. Instead of re-sending the whole layer list the
/// frame carries `height` (the new layer count) plus only the layers
/// whose membership changed, each tagged with its bottom-up index — a
/// client truncates/extends its cached layers to `height` and
/// overwrites the changed indices. `version` is the session's
/// monotonically increasing push counter (the base layout is version
/// 0); a gap or repeat means the stream lost or duplicated an update.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionUpdate {
    /// Strictly increasing per-session frame number (base = 0).
    pub version: u64,
    /// Canonical digest of the session's *current* graph — usable as a
    /// `layout_delta` base after the session ends.
    pub digest: String,
    /// How the re-layout was produced (`warm`, `computed`, …).
    pub source: String,
    /// Total layer count after the edit.
    pub height: u64,
    /// The changed layers: `(bottom-up index, node ids)` pairs. Layers
    /// not listed are unchanged from the previous version (below
    /// `height`) or removed (at or above it).
    pub changed: Vec<(u32, Vec<u32>)>,
    /// How many additional deltas were folded into this one re-solve
    /// because they arrived while it was in flight (0 = none).
    pub coalesced: u64,
    /// Whether this push came from a periodic cold refresh that beat
    /// the warm chain's optimum.
    pub refreshed: bool,
    /// Wall time of the re-layout in microseconds.
    pub compute_micros: u64,
}

impl SessionUpdate {
    /// The push-frame body as a JSON object (without envelope members).
    pub fn to_json(&self) -> Json {
        let mut obj = BTreeMap::new();
        obj.insert("ok".into(), Json::Bool(true));
        obj.insert("op".into(), Json::Str("session_update".into()));
        obj.insert("version".into(), Json::Num(self.version as f64));
        obj.insert("digest".into(), Json::Str(self.digest.clone()));
        obj.insert("source".into(), Json::Str(self.source.clone()));
        obj.insert("height".into(), Json::Num(self.height as f64));
        obj.insert(
            "changed".into(),
            Json::Arr(
                self.changed
                    .iter()
                    .map(|(idx, ids)| {
                        Json::Arr(vec![
                            Json::Num(*idx as f64),
                            Json::Arr(ids.iter().map(|&v| Json::Num(v as f64)).collect()),
                        ])
                    })
                    .collect(),
            ),
        );
        obj.insert("coalesced".into(), Json::Num(self.coalesced as f64));
        obj.insert("refreshed".into(), Json::Bool(self.refreshed));
        obj.insert(
            "compute_micros".into(),
            Json::Num(self.compute_micros as f64),
        );
        Json::Obj(obj)
    }

    /// Decodes a pushed `session_update` frame body.
    pub fn from_json(v: &Json) -> Result<SessionUpdate, String> {
        let u64_field = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("session update: missing integer '{k}'"))
        };
        let str_field = |k: &str| {
            v.get(k)
                .and_then(Json::as_str)
                .map(String::from)
                .ok_or_else(|| format!("session update: missing string '{k}'"))
        };
        let changed = match v.get("changed") {
            Some(Json::Arr(pairs)) => pairs
                .iter()
                .map(|pair| {
                    let Json::Arr(iv) = pair else {
                        return Err("session update: each changed entry must be an array".into());
                    };
                    let idx = iv
                        .first()
                        .and_then(Json::as_u64)
                        .filter(|&n| n <= u32::MAX as u64)
                        .ok_or("session update: bad changed-layer index")?
                        as u32;
                    let ids = match iv.get(1) {
                        Some(Json::Arr(ids)) => ids
                            .iter()
                            .map(|id| {
                                id.as_u64()
                                    .filter(|&n| n <= u32::MAX as u64)
                                    .map(|n| n as u32)
                                    .ok_or_else(|| "session update: bad node id".to_string())
                            })
                            .collect::<Result<Vec<u32>, String>>()?,
                        _ => return Err("session update: changed entry missing id list".into()),
                    };
                    Ok((idx, ids))
                })
                .collect::<Result<Vec<(u32, Vec<u32>)>, String>>()?,
            _ => return Err("session update: missing 'changed'".into()),
        };
        Ok(SessionUpdate {
            version: u64_field("version")?,
            digest: str_field("digest")?,
            source: str_field("source")?,
            height: u64_field("height")?,
            changed,
            coalesced: u64_field("coalesced")?,
            refreshed: matches!(v.get("refreshed"), Some(Json::Bool(true))),
            compute_micros: u64_field("compute_micros")?,
        })
    }
}

/// A decoded server response — the other half of the typed codec.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A successful layout (full or delta).
    Layout(Box<LayoutReply>),
    /// Counters: every non-envelope member of a stats reply, verbatim
    /// (routers add per-shard arrays; they round-trip untouched).
    Stats(BTreeMap<String, Json>),
    /// A ping answer; `router` is set when a router answered locally.
    Pong {
        /// `true` when the responder is a router front.
        router: bool,
    },
    /// The slow-request log: every non-envelope member of a debug
    /// reply, verbatim (`slow_requests` plus whatever the responder
    /// adds), mirroring [`Response::Stats`].
    Debug(BTreeMap<String, Json>),
    /// Acknowledgement of a `cache_put`: `stored` is `false` when the
    /// receiver already held the entry (idempotent re-put).
    CachePutAck {
        /// Whether the entry was newly installed.
        stored: bool,
    },
    /// One page of a shard's cache answering a `cache_pull`. Boxed like
    /// `Layout`: each entry carries a whole graph.
    CachePage(Box<CachePage>),
    /// The router's topology summary answering `shard_join`/`shard_drain`.
    Topology(Box<TopologyReply>),
    /// A session's base layout answering `session_open`: the full
    /// layout reply stamped with the session's starting version (0 on a
    /// fresh open). Boxed like `Layout`.
    SessionOpened {
        /// The session's starting push version.
        version: u64,
        /// The base layout every later push frame diffs against.
        reply: Box<LayoutReply>,
    },
    /// One pushed incremental re-layout frame. Unlike every other
    /// variant this is *unsolicited*: the live listener writes it when
    /// a `session_delta` solve lands, correlated by the envelope `id`.
    SessionUpdate(Box<SessionUpdate>),
    /// Acknowledgement of a `session_close`, echoing the last version
    /// the session pushed.
    SessionClosed {
        /// The session's final push version.
        version: u64,
    },
    /// An error reply.
    Error(WireError),
}

impl Response {
    /// The response body as a JSON object (without envelope members —
    /// no `v`, `id`, or `kind`; [`encode`](Self::encode) adds those).
    pub fn to_json(&self) -> Json {
        match self {
            Response::Layout(reply) => reply.to_json(),
            Response::Stats(counters) => {
                let mut obj = counters.clone();
                obj.insert("ok".into(), Json::Bool(true));
                obj.insert("op".into(), Json::Str("stats".into()));
                Json::Obj(obj)
            }
            Response::Pong { router } => {
                let mut obj = BTreeMap::new();
                obj.insert("ok".into(), Json::Bool(true));
                obj.insert("op".into(), Json::Str("ping".into()));
                if *router {
                    obj.insert("router".into(), Json::Bool(true));
                }
                Json::Obj(obj)
            }
            Response::Debug(members) => {
                let mut obj = members.clone();
                obj.insert("ok".into(), Json::Bool(true));
                obj.insert("op".into(), Json::Str("debug".into()));
                Json::Obj(obj)
            }
            Response::CachePutAck { stored } => {
                let mut obj = BTreeMap::new();
                obj.insert("ok".into(), Json::Bool(true));
                obj.insert("op".into(), Json::Str("cache_put".into()));
                obj.insert("stored".into(), Json::Bool(*stored));
                Json::Obj(obj)
            }
            Response::CachePage(page) => page.to_json(),
            Response::Topology(topo) => topo.to_json(),
            Response::SessionOpened { version, reply } => {
                // The base layout's full reply, re-tagged as a session
                // open so clients route it to the session machinery.
                let Json::Obj(mut obj) = reply.to_json() else {
                    unreachable!("to_json returns an object");
                };
                obj.insert("op".into(), Json::Str("session_open".into()));
                obj.insert("version".into(), Json::Num(*version as f64));
                Json::Obj(obj)
            }
            Response::SessionUpdate(update) => update.to_json(),
            Response::SessionClosed { version } => {
                let mut obj = BTreeMap::new();
                obj.insert("ok".into(), Json::Bool(true));
                obj.insert("op".into(), Json::Str("session_close".into()));
                obj.insert("version".into(), Json::Num(*version as f64));
                Json::Obj(obj)
            }
            Response::Error(e) => {
                let mut obj = BTreeMap::new();
                obj.insert("ok".into(), Json::Bool(false));
                obj.insert("error".into(), Json::Str(e.message.clone()));
                Json::Obj(obj)
            }
        }
    }

    /// Encodes one response line, sealing the request's [`Envelope`]
    /// onto it: a v1 request gets the exact historic v1 wire bytes; a v2
    /// request additionally gets `"v":2`, its echoed `"id"`, and — for
    /// errors — the structured `"kind"`.
    pub fn encode(&self, env: &Envelope) -> String {
        self.encode_with_trace(env, None)
    }

    /// Like [`encode`](Self::encode), additionally splicing a `"trace"`
    /// member (the responder's phase breakdown) into the body — the
    /// reply half of the envelope's `trace` flag. `None` encodes
    /// exactly as [`encode`](Self::encode) does.
    pub fn encode_with_trace(&self, env: &Envelope, trace: Option<Json>) -> String {
        let Json::Obj(mut obj) = self.to_json() else {
            unreachable!("to_json returns an object");
        };
        if let Some(trace) = trace {
            obj.insert("trace".into(), trace);
        }
        if env.version == 2 {
            obj.insert("v".into(), Json::Num(2.0));
            if let Some(id) = &env.id {
                obj.insert("id".into(), id.clone());
            }
            if let Response::Error(e) = self {
                obj.insert("kind".into(), Json::Str(e.kind.wire_name().into()));
            }
        }
        Json::Obj(obj).encode()
    }
}

/// Decodes one response line (v1 or v2) together with its [`Envelope`].
///
/// # Examples
///
/// ```
/// use antlayer_service::protocol::{parse_response, ErrorKind, Response};
///
/// let (resp, env) = parse_response(r#"{"ok":true,"op":"ping"}"#).unwrap();
/// assert_eq!(resp, Response::Pong { router: false });
/// assert_eq!(env.version, 1);
///
/// let (resp, _) = parse_response(r#"{"error":"overloaded: 9 jobs","ok":false}"#).unwrap();
/// let Response::Error(e) = resp else { panic!() };
/// assert_eq!(e.kind, ErrorKind::Overloaded); // classified by prefix
/// ```
pub fn parse_response(line: &str) -> Result<(Response, Envelope), String> {
    let v = parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let env = match v.get("v") {
        None => Envelope::v1(),
        Some(version) if version.as_u64() == Some(2) => Envelope::v2(v.get("id").cloned()),
        Some(version) => return Err(format!("unsupported response version {}", version.encode())),
    };
    let response = match v.get("ok") {
        Some(Json::Bool(false)) => {
            let message = v
                .get("error")
                .and_then(Json::as_str)
                .ok_or("error reply: missing 'error'")?
                .to_string();
            let kind = v
                .get("kind")
                .and_then(Json::as_str)
                .and_then(ErrorKind::from_wire_name)
                .unwrap_or_else(|| ErrorKind::classify(&message));
            Response::Error(WireError { kind, message })
        }
        Some(Json::Bool(true)) => match v.get("op").and_then(Json::as_str) {
            Some("ping") => Response::Pong {
                router: v.get("router") == Some(&Json::Bool(true)),
            },
            Some(op @ ("stats" | "debug")) => {
                let Json::Obj(members) = &v else {
                    unreachable!("get succeeded on a non-object");
                };
                let body = members
                    .iter()
                    .filter(|(k, _)| !matches!(k.as_str(), "ok" | "op" | "v" | "id"))
                    .map(|(k, val)| (k.clone(), val.clone()))
                    .collect();
                if op == "stats" {
                    Response::Stats(body)
                } else {
                    Response::Debug(body)
                }
            }
            Some("cache_put") => Response::CachePutAck {
                stored: v.get("stored") == Some(&Json::Bool(true)),
            },
            Some("cache_pull") => Response::CachePage(Box::new(CachePage::from_json(&v)?)),
            Some("topology") => Response::Topology(Box::new(TopologyReply::from_json(&v)?)),
            Some("session_open") => Response::SessionOpened {
                version: v
                    .get("version")
                    .and_then(Json::as_u64)
                    .ok_or("session open reply: missing integer 'version'")?,
                reply: Box::new(LayoutReply::from_json(&v)?),
            },
            Some("session_update") => {
                Response::SessionUpdate(Box::new(SessionUpdate::from_json(&v)?))
            }
            Some("session_close") => Response::SessionClosed {
                version: v
                    .get("version")
                    .and_then(Json::as_u64)
                    .ok_or("session close reply: missing integer 'version'")?,
            },
            Some(other) => return Err(format!("unknown response op '{other}'")),
            None => Response::Layout(Box::new(LayoutReply::from_json(&v)?)),
        },
        _ => return Err("reply has no boolean 'ok'".into()),
    };
    Ok((response, env))
}

/// Encodes a layout response line in the v1 wire form.
pub fn encode_layout_response(response: &LayoutResponse) -> String {
    Response::Layout(Box::new(layout_reply_of(response))).encode(&Envelope::v1())
}

/// Encodes an error response line in the v1 wire form. The kind is
/// recovered from the message prefix; callers that know the kind (and
/// the request envelope) should build a [`Response::Error`] directly.
pub fn encode_error(message: &str) -> String {
    Response::Error(WireError::new(ErrorKind::classify(message), message)).encode(&Envelope::v1())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
        assert_eq!(
            parse("[1, [2], {}]").unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Arr(vec![Json::Num(2.0)]),
                Json::Obj(BTreeMap::new())
            ])
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"x", "tru", "1 2", "{\"a\":}", "nan"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn encode_parse_roundtrip() {
        let line = r#"{"a":[1,2.5,"x\"y"],"b":{"c":null,"d":false}}"#;
        let v = parse(line).unwrap();
        assert_eq!(parse(&v.encode()).unwrap(), v);
        assert_eq!(v.encode(), line);
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let v = Json::Str("héllo ⊕ wörld".into());
        assert_eq!(parse(&v.encode()).unwrap(), v);
        assert_eq!(parse(r#""é""#).unwrap(), Json::Str("é".into()));
    }

    #[test]
    fn layout_request_decoding() {
        let line = r#"{"op":"layout","algo":"aco","nodes":4,"edges":[[0,1],[1,2],[2,3]],
                       "seed":9,"ants":3,"tours":2,"deadline_ms":100,"nd_width":0.5}"#;
        let Request::Layout(req) = parse_request(line).unwrap() else {
            panic!("expected layout");
        };
        assert_eq!(req.graph.node_count(), 4);
        assert_eq!(req.graph.edge_count(), 3);
        assert_eq!(req.nd_width, 0.5);
        assert_eq!(req.deadline, Some(Duration::from_millis(100)));
        let AlgoSpec::Aco(p) = req.algo else {
            panic!("expected aco");
        };
        assert_eq!((p.n_ants, p.n_tours, p.seed), (3, 2, 9));
    }

    #[test]
    fn layout_request_validation_errors() {
        for (line, needle) in [
            (r#"{"op":"layout"}"#, "missing 'nodes'"),
            (
                r#"{"op":"layout","nodes":2,"edges":[[0,5]]}"#,
                "out of range",
            ),
            (r#"{"op":"layout","nodes":2,"edges":[3]}"#, "[[u,v],...]"),
            (r#"{"op":"warp"}"#, "unknown op"),
            (r#"not json"#, "bad JSON"),
            // Work caps: a single request must not buy unbounded compute.
            (
                r#"{"op":"layout","nodes":2,"ants":1000000000}"#,
                "ants exceeds",
            ),
            (
                r#"{"op":"layout","nodes":2,"tours":1000000000}"#,
                "tours exceeds",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn solver_selection_aliases_and_portfolio_shorthand() {
        // `solver` is an alias for `algo` and accepts the new names.
        let line = r#"{"op":"layout","solver":"exact","nodes":3,"edges":[[0,1],[1,2]]}"#;
        let Request::Layout(req) = parse_request(line).unwrap() else {
            panic!("expected layout");
        };
        assert_eq!(req.algo, AlgoSpec::Exact);

        // `"portfolio": true` selects the portfolio, colony knobs apply.
        let line = r#"{"op":"layout","portfolio":true,"nodes":3,"seed":4,"ants":2,"tours":3}"#;
        let Request::Layout(req) = parse_request(line).unwrap() else {
            panic!("expected layout");
        };
        let AlgoSpec::Portfolio(p) = req.algo else {
            panic!("expected portfolio");
        };
        assert_eq!((p.n_ants, p.n_tours, p.seed), (2, 3, 4));

        // Agreeing keys are fine; `"portfolio": false` is a no-op.
        let line = r#"{"op":"layout","algo":"lpl","solver":"lpl","portfolio":false,"nodes":2}"#;
        let Request::Layout(req) = parse_request(line).unwrap() else {
            panic!("expected layout");
        };
        assert_eq!(req.algo, AlgoSpec::LongestPath);
    }

    #[test]
    fn contradictory_solver_selections_are_invalid() {
        for (line, needle) in [
            (
                r#"{"op":"layout","algo":"aco","solver":"exact","nodes":2}"#,
                "disagree",
            ),
            (
                r#"{"op":"layout","portfolio":true,"algo":"aco","nodes":2}"#,
                "contradicts",
            ),
            (
                r#"{"op":"layout","portfolio":false,"solver":"portfolio","nodes":2}"#,
                "contradicts",
            ),
            (
                r#"{"op":"layout","portfolio":"yes","nodes":2}"#,
                "'portfolio' must be a boolean",
            ),
            (
                r#"{"op":"layout","solver":7,"nodes":2}"#,
                "'solver' must be a string",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn layout_delta_request_decoding() {
        let digest = "0123456789abcdef0123456789abcdef";
        let line = format!(
            r#"{{"op":"layout_delta","base":"{digest}","add":[[0,3]],"remove":[[0,1],[1,2]],"seed":5,"deadline_ms":40}}"#
        );
        let Request::LayoutDelta(req) = parse_request(&line).unwrap() else {
            panic!("expected layout_delta");
        };
        assert_eq!(req.base.to_string(), digest);
        assert_eq!(req.delta.added, vec![(0, 3)]);
        assert_eq!(req.delta.removed, vec![(0, 1), (1, 2)]);
        assert_eq!(req.deadline, Some(Duration::from_millis(40)));
        let AlgoSpec::Aco(p) = req.algo else {
            panic!("expected aco");
        };
        assert_eq!(p.seed, 5);
    }

    #[test]
    fn layout_delta_validation_errors() {
        for (line, needle) in [
            (r#"{"op":"layout_delta","add":[[0,1]]}"#, "missing 'base'"),
            (
                r#"{"op":"layout_delta","base":"zz","add":[[0,1]]}"#,
                "32-hex-digit",
            ),
            (
                r#"{"op":"layout_delta","base":"0123456789abcdef0123456789abcdef"}"#,
                "empty delta",
            ),
            (
                r#"{"op":"layout_delta","base":"0123456789abcdef0123456789abcdef","add":[7]}"#,
                "[[u,v],...]",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn layout_delta_edit_cap_is_enforced() {
        // 100_001 removals: one request must not buy unbounded delta
        // application work on the connection thread.
        let pairs: Vec<String> = (0..100_001).map(|i| format!("[{i},{}]", i + 1)).collect();
        let line = format!(
            r#"{{"op":"layout_delta","base":"0123456789abcdef0123456789abcdef","remove":[{}]}}"#,
            pairs.join(",")
        );
        let err = parse_request(&line).unwrap_err();
        assert!(err.contains("exceeds the 100000"), "{err}");
    }

    #[test]
    fn cache_put_request_and_ack_roundtrip() {
        let entry = CacheEntry {
            digest: Digest { hi: 1, lo: 2 },
            nodes: 4,
            edges: vec![(0, 1), (1, 2), (2, 3)],
            layers: vec![vec![3], vec![2], vec![1], vec![0]],
            nd_width: 0.5,
            reversed_edges: 1,
            seeded: true,
            certified: false,
            compute_micros: 77,
        };
        let line = Request::CachePut(Box::new(entry.clone())).encode_v1();
        let Request::CachePut(parsed) = parse_request(&line).unwrap() else {
            panic!("expected cache_put");
        };
        assert_eq!(*parsed, entry);

        let ack = Response::CachePutAck { stored: true }.encode(&Envelope::v1());
        let (resp, _) = parse_response(&ack).unwrap();
        assert_eq!(resp, Response::CachePutAck { stored: true });
    }

    #[test]
    fn cache_put_validation_errors() {
        let hex = "0123456789abcdef0123456789abcdef";
        for (line, needle) in [
            (r#"{"op":"cache_put","nodes":2,"layers":[[0]]}"#.to_string(), "missing 'digest'"),
            (
                format!(r#"{{"op":"cache_put","digest":"{hex}","nodes":2,"layers":[[5]]}}"#),
                "bad layer node id",
            ),
            (
                format!(r#"{{"op":"cache_put","digest":"{hex}","nodes":2,"edges":[[0,9]],"layers":[[0],[1]]}}"#),
                "out of range",
            ),
            (
                format!(r#"{{"op":"cache_put","digest":"{hex}","nodes":2}}"#),
                "missing 'layers'",
            ),
        ] {
            let err = parse_request(&line).unwrap_err();
            assert!(err.contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn cache_pull_request_and_page_roundtrip() {
        // Request: cursor + limit survive both wire forms.
        let req = Request::CachePull {
            cursor: Some(Digest { hi: 3, lo: 9 }),
            limit: 32,
        };
        let line = req.encode_v2(None);
        let Request::CachePull { cursor, limit } = parse_request(&line).unwrap() else {
            panic!("expected cache_pull");
        };
        assert_eq!(cursor, Some(Digest { hi: 3, lo: 9 }));
        assert_eq!(limit, 32);
        // Absent cursor/limit take the documented defaults.
        let Request::CachePull { cursor, limit } =
            parse_request(r#"{"op":"cache_pull"}"#).unwrap()
        else {
            panic!("expected cache_pull");
        };
        assert_eq!(cursor, None);
        assert_eq!(limit, 64);

        // Response: a page with one entry round-trips.
        let page = CachePage {
            entries: vec![CacheEntry {
                digest: Digest { hi: 1, lo: 2 },
                nodes: 2,
                edges: vec![(0, 1)],
                layers: vec![vec![1], vec![0]],
                nd_width: 1.0,
                reversed_edges: 0,
                seeded: false,
                certified: false,
                compute_micros: 5,
            }],
            next: Some(Digest { hi: 1, lo: 2 }),
            done: false,
        };
        let line = Response::CachePage(Box::new(page.clone())).encode(&Envelope::v1());
        let (resp, _) = parse_response(&line).unwrap();
        assert_eq!(resp, Response::CachePage(Box::new(page)));
    }

    #[test]
    fn cache_pull_validation_errors() {
        for (line, needle) in [
            (r#"{"op":"cache_pull","cursor":"zz"}"#, "32-hex-digit"),
            (r#"{"op":"cache_pull","limit":0}"#, "1..=1024"),
            (r#"{"op":"cache_pull","limit":9999}"#, "1..=1024"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn shard_admin_requests_and_topology_roundtrip() {
        for (line, want_join) in [
            (r#"{"op":"shard_join","addr":"127.0.0.1:4801"}"#, true),
            (r#"{"op":"shard_drain","addr":"127.0.0.1:4801"}"#, false),
        ] {
            let req = parse_request(line).unwrap();
            match (&req, want_join) {
                (Request::ShardJoin { addr }, true) | (Request::ShardDrain { addr }, false) => {
                    assert_eq!(addr, "127.0.0.1:4801");
                }
                _ => panic!("{line} parsed to the wrong variant"),
            }
            // encode → parse → encode identity on the v2 form.
            let v2 = req.encode_v2(Some(&Json::Num(4.0)));
            let (back, env) = parse_request_envelope(&v2).unwrap();
            assert_eq!(back.encode_v2(env.id.as_ref()), v2);
        }
        assert!(parse_request(r#"{"op":"shard_join"}"#)
            .unwrap_err()
            .contains("missing 'addr'"));
        assert!(parse_request(r#"{"op":"shard_drain","addr":""}"#)
            .unwrap_err()
            .contains("missing 'addr'"));

        let topo = TopologyReply {
            epoch: 3,
            moved: 17,
            shards: vec![
                TopologyShard {
                    addr: "a:1".into(),
                    state: "live".into(),
                },
                TopologyShard {
                    addr: "b:2".into(),
                    state: "removed".into(),
                },
            ],
        };
        let line = Response::Topology(Box::new(topo.clone())).encode(&Envelope::v2(None));
        let (resp, env) = parse_response(&line).unwrap();
        assert_eq!(env.version, 2);
        assert_eq!(resp, Response::Topology(Box::new(topo)));
    }

    #[test]
    fn session_requests_roundtrip() {
        // session_open carries a full layout body.
        let line = r#"{"v":2,"op":"session_open","id":7,"body":{"nodes":3,"edges":[[0,1],[1,2]],"algo":"lpl"}}"#;
        let (req, env) = parse_request_envelope(line).unwrap();
        let Request::SessionOpen(open) = &req else {
            panic!("expected session_open");
        };
        assert_eq!(open.graph.node_count(), 3);
        assert_eq!(env.id, Some(Json::Num(7.0)));
        let v2 = req.encode_v2(env.id.as_ref());
        let (back, env2) = parse_request_envelope(&v2).unwrap();
        assert_eq!(back.encode_v2(env2.id.as_ref()), v2);

        // session_delta carries just the edit.
        let req = Request::SessionDelta {
            delta: GraphDelta::new(vec![(0, 2)], vec![(1, 2)]),
        };
        let v2 = req.encode_v2(Some(&Json::Num(7.0)));
        let (back, env) = parse_request_envelope(&v2).unwrap();
        let Request::SessionDelta { delta } = &back else {
            panic!("expected session_delta");
        };
        assert_eq!(delta.added, vec![(0, 2)]);
        assert_eq!(delta.removed, vec![(1, 2)]);
        assert_eq!(back.encode_v2(env.id.as_ref()), v2);

        // session_close has an empty body.
        let v2 = Request::SessionClose.encode_v2(Some(&Json::Num(7.0)));
        let (back, env) = parse_request_envelope(&v2).unwrap();
        assert!(matches!(back, Request::SessionClose));
        assert_eq!(back.encode_v2(env.id.as_ref()), v2);
    }

    #[test]
    fn session_delta_validation_errors() {
        let err = parse_request(r#"{"v":2,"op":"session_delta","body":{}}"#).unwrap_err();
        assert!(err.contains("empty delta"), "{err}");
        let pairs: Vec<String> = (0..100_001).map(|i| format!("[{i},{}]", i + 1)).collect();
        let line = format!(
            r#"{{"v":2,"op":"session_delta","body":{{"add":[{}]}}}}"#,
            pairs.join(",")
        );
        let err = parse_request(&line).unwrap_err();
        assert!(err.contains("exceeds the 100000"), "{err}");
    }

    #[test]
    fn session_responses_roundtrip() {
        let env = Envelope::v2(Some(Json::Num(7.0)));
        let reply = LayoutReply {
            digest: "000102030405060708090a0b0c0d0e0f".into(),
            source: "computed".into(),
            height: 2,
            width: 1.5,
            dummies: 0,
            reversed_edges: 0,
            stopped_early: false,
            seeded: false,
            certified: false,
            winner: None,
            members: Vec::new(),
            compute_micros: 42,
            layers: vec![vec![1, 2], vec![0]],
        };
        let opened = Response::SessionOpened {
            version: 0,
            reply: Box::new(reply),
        };
        let line = opened.encode(&env);
        let (resp, back_env) = parse_response(&line).unwrap();
        assert_eq!(resp, opened);
        assert_eq!(back_env.id, Some(Json::Num(7.0)));

        let update = Response::SessionUpdate(Box::new(SessionUpdate {
            version: 3,
            digest: "000102030405060708090a0b0c0d0e0f".into(),
            source: "warm".into(),
            height: 3,
            changed: vec![(0, vec![2, 3]), (2, vec![0])],
            coalesced: 1,
            refreshed: true,
            compute_micros: 17,
        }));
        let line = update.encode(&env);
        let (resp, _) = parse_response(&line).unwrap();
        assert_eq!(resp, update);

        let closed = Response::SessionClosed { version: 3 };
        let line = closed.encode(&env);
        let (resp, _) = parse_response(&line).unwrap();
        assert_eq!(resp, closed);
    }

    #[test]
    fn error_encoding_is_parseable() {
        let line = encode_error("overloaded: 9 jobs");
        let v = parse(&line).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            v.get("error").and_then(Json::as_str),
            Some("overloaded: 9 jobs")
        );
    }
}
