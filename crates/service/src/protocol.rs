//! The wire protocol: line-delimited JSON over TCP.
//!
//! Each request is one JSON object on one line; each response is one
//! JSON object on one line. The serializer and parser are hand-rolled in
//! the house style of the DOT/GML writers — the protocol needs exactly
//! the JSON subset implemented here (objects, arrays, strings, finite
//! numbers, booleans, null) and no external dependency.
//!
//! ## Requests
//!
//! ```json
//! {"op":"layout","algo":"aco","nodes":6,"edges":[[0,1],[0,2],[1,3]],
//!  "nd_width":1.0,"seed":7,"ants":10,"tours":10,"deadline_ms":50}
//! {"op":"layout_delta","base":"…32 hex…","add":[[0,3]],"remove":[[0,1]],
//!  "algo":"aco","seed":7}
//! {"op":"stats"}
//! {"op":"ping"}
//! ```
//!
//! `algo` is one of `lpl`, `lpl-pl`, `minwidth`, `minwidth-pl`, `cg`,
//! `ns`, `aco` (default `aco`); `seed`, `ants`, `tours` tune the colony
//! and default to the library defaults; `deadline_ms` bounds the search
//! (anytime ACO); `nd_width` defaults to 1.
//!
//! `layout_delta` is the incremental re-layout request: `base` is the
//! `digest` of a previously served response, `add`/`remove` are edge
//! diffs against that request's graph, and the remaining fields describe
//! the edited request exactly like `layout` (callers normally repeat the
//! base request's values). The server warm-starts the colony from the
//! cached base layering; if the base has been evicted the response is an
//! error containing `base not found` and the client falls back to a full
//! `layout`.
//!
//! ## Responses
//!
//! ```json
//! {"ok":true,"digest":"…32 hex…","source":"hit","height":3,"width":2.0,
//!  "dummies":1,"reversed_edges":0,"stopped_early":false,"seeded":false,
//!  "compute_micros":1234,"layers":[[0,2],[1],[3]]}
//! {"ok":false,"error":"overloaded: …"}
//! ```

use crate::digest::Digest;
use crate::scheduler::{AlgoSpec, DeltaRequest, LayoutRequest, LayoutResponse};
use antlayer_graph::{DiGraph, GraphDelta};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// A parsed JSON value. Object keys are sorted (`BTreeMap`) so encoded
/// output is canonical.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as a finite f64, if it is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_num()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Serializes to a single line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => encode_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_str(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with byte position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses one JSON value; trailing whitespace is allowed, trailing
/// garbage is an error.
///
/// # Examples
///
/// ```
/// use antlayer_service::protocol::{parse, Json};
///
/// let v = parse(r#"{"ok":true,"height":4}"#).unwrap();
/// assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
/// assert_eq!(v.get("height").and_then(Json::as_u64), Some(4));
/// assert_eq!(v.encode(), r#"{"height":4,"ok":true}"#); // canonical: keys sorted
/// assert!(parse("{truncated").is_err());
/// ```
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // protocol; reject instead of mis-decoding.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }
}

/// A decoded client request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Compute (or fetch) a layout. Boxed: a layout request carries a
    /// whole graph, the other variants nothing.
    Layout(Box<LayoutRequest>),
    /// Incremental re-layout: an edge diff against a cached base layout.
    LayoutDelta(Box<DeltaRequest>),
    /// Report server counters.
    Stats,
    /// Liveness check.
    Ping,
}

/// Decodes one request line.
///
/// # Examples
///
/// ```
/// use antlayer_service::protocol::{parse_request, Request};
///
/// let line = r#"{"op":"layout","nodes":3,"edges":[[0,1],[1,2]]}"#;
/// let Request::Layout(req) = parse_request(line).unwrap() else {
///     panic!("expected a layout request");
/// };
/// assert_eq!(req.graph.node_count(), 3);
/// assert!(parse_request(r#"{"op":"warp"}"#).is_err());
/// ```
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let op = v.get("op").and_then(Json::as_str).unwrap_or("layout");
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "layout" => Ok(Request::Layout(Box::new(parse_layout(&v)?))),
        "layout_delta" => Ok(Request::LayoutDelta(Box::new(parse_layout_delta(&v)?))),
        other => Err(format!("unknown op '{other}'")),
    }
}

fn parse_layout(v: &Json) -> Result<LayoutRequest, String> {
    let nodes = v
        .get("nodes")
        .and_then(Json::as_u64)
        .ok_or("layout: missing 'nodes'")? as usize;
    if nodes > 1_000_000 {
        return Err(format!("layout: {nodes} nodes exceeds the 1M cap"));
    }
    let edges = parse_edge_pairs(v, "edges")?.unwrap_or_default();
    for &(u, w) in &edges {
        if u as usize >= nodes || w as usize >= nodes {
            return Err(format!(
                "layout: edge ({u},{w}) out of range for {nodes} nodes"
            ));
        }
    }
    let graph = DiGraph::from_edges(nodes, &edges).map_err(|e| format!("layout: {e:?}"))?;
    let (algo, nd_width, deadline) = parse_common_fields(v, "layout")?;
    Ok(LayoutRequest {
        graph,
        algo,
        nd_width,
        deadline,
    })
}

fn parse_layout_delta(v: &Json) -> Result<DeltaRequest, String> {
    let base = v
        .get("base")
        .and_then(Json::as_str)
        .ok_or("layout_delta: missing 'base' digest")?;
    let base = Digest::from_hex(base)
        .ok_or("layout_delta: 'base' must be a 32-hex-digit request digest")?;
    let added = parse_edge_pairs(v, "add")?.unwrap_or_default();
    let removed = parse_edge_pairs(v, "remove")?.unwrap_or_default();
    let delta = GraphDelta::new(added, removed);
    if delta.is_empty() {
        return Err("layout_delta: empty delta (nothing to add or remove)".into());
    }
    // A delta is an *edit*; a diff rewriting a large fraction of a graph
    // should be sent as a full layout. The cap also bounds the work one
    // request can buy on the connection thread, where delta application
    // runs before admission control can shed it.
    const MAX_DELTA_EDITS: usize = 100_000;
    if delta.len() > MAX_DELTA_EDITS {
        return Err(format!(
            "layout_delta: {} edits exceeds the {MAX_DELTA_EDITS} cap; send a full layout",
            delta.len()
        ));
    }
    // Endpoint bounds are checked against the base graph when the delta
    // is applied; the scheduler owns that graph.
    let (algo, nd_width, deadline) = parse_common_fields(v, "layout_delta")?;
    Ok(DeltaRequest {
        base,
        delta,
        algo,
        nd_width,
        deadline,
    })
}

/// Parses a `[[u,v],...]` member; `Ok(None)` when the key is absent.
fn parse_edge_pairs(v: &Json, key: &str) -> Result<Option<Vec<(u32, u32)>>, String> {
    let member = match v.get(key) {
        None => return Ok(None),
        Some(Json::Arr(pairs)) => pairs,
        Some(_) => return Err(format!("'{key}' must be an array")),
    };
    let mut edges = Vec::with_capacity(member.len());
    for pair in member {
        match pair {
            Json::Arr(uv) if uv.len() == 2 => {
                let u = uv[0]
                    .as_u64()
                    .ok_or("edge endpoint must be a non-negative integer")?;
                let w = uv[1]
                    .as_u64()
                    .ok_or("edge endpoint must be a non-negative integer")?;
                if u > u32::MAX as u64 || w > u32::MAX as u64 {
                    return Err(format!("edge ({u},{w}) endpoint exceeds the id range"));
                }
                edges.push((u as u32, w as u32));
            }
            _ => return Err(format!("'{key}' must be [[u,v],...]")),
        }
    }
    Ok(Some(edges))
}

/// Parses the fields `layout` and `layout_delta` share: the algorithm
/// (with wire-level work caps), `nd_width`, and `deadline_ms`. `op`
/// prefixes error messages so they name the request that failed.
fn parse_common_fields(v: &Json, op: &str) -> Result<(AlgoSpec, f64, Option<Duration>), String> {
    let seed = v.get("seed").and_then(Json::as_u64).unwrap_or(1);
    let algo_name = v.get("algo").and_then(Json::as_str).unwrap_or("aco");
    let mut algo = AlgoSpec::parse(algo_name, seed)?;
    if let AlgoSpec::Aco(params) = &mut algo {
        // Wire-level work caps: admission control counts jobs, not work,
        // so a single request must not be able to occupy a worker for an
        // unbounded time (the paper's production colony is 10 x 10).
        const MAX_ANTS: u64 = 1_024;
        const MAX_TOURS: u64 = 10_000;
        if let Some(ants) = v.get("ants").and_then(Json::as_u64) {
            if ants > MAX_ANTS {
                return Err(format!("{op}: {ants} ants exceeds the {MAX_ANTS} cap"));
            }
            params.n_ants = ants as usize;
        }
        if let Some(tours) = v.get("tours").and_then(Json::as_u64) {
            if tours > MAX_TOURS {
                return Err(format!("{op}: {tours} tours exceeds the {MAX_TOURS} cap"));
            }
            params.n_tours = tours as usize;
        }
    }
    let nd_width = match v.get("nd_width") {
        None => 1.0,
        Some(n) => n
            .as_num()
            .ok_or_else(|| format!("{op}: 'nd_width' must be a number"))?,
    };
    let deadline = v
        .get("deadline_ms")
        .map(|d| {
            d.as_u64()
                .map(Duration::from_millis)
                .ok_or_else(|| format!("{op}: 'deadline_ms' must be a non-negative integer"))
        })
        .transpose()?;
    Ok((algo, nd_width, deadline))
}

/// Encodes a layout response line.
pub fn encode_layout_response(response: &LayoutResponse) -> String {
    let result = &response.result;
    let mut obj = BTreeMap::new();
    obj.insert("ok".into(), Json::Bool(true));
    obj.insert("digest".into(), Json::Str(result.digest.to_string()));
    obj.insert("source".into(), Json::Str(response.source.name().into()));
    obj.insert("height".into(), Json::Num(result.metrics.height as f64));
    obj.insert("width".into(), Json::Num(result.metrics.width));
    obj.insert(
        "dummies".into(),
        Json::Num(result.metrics.dummy_count as f64),
    );
    obj.insert(
        "reversed_edges".into(),
        Json::Num(result.reversed_edges as f64),
    );
    obj.insert("stopped_early".into(), Json::Bool(result.stopped_early));
    obj.insert("seeded".into(), Json::Bool(result.seeded));
    obj.insert(
        "compute_micros".into(),
        Json::Num(result.compute_micros as f64),
    );
    let layers = result
        .layering
        .layers()
        .into_iter()
        .map(|layer| {
            Json::Arr(
                layer
                    .into_iter()
                    .map(|v| Json::Num(v.index() as f64))
                    .collect(),
            )
        })
        .collect();
    obj.insert("layers".into(), Json::Arr(layers));
    Json::Obj(obj).encode()
}

/// Encodes an error response line.
pub fn encode_error(message: &str) -> String {
    let mut obj = BTreeMap::new();
    obj.insert("ok".into(), Json::Bool(false));
    obj.insert("error".into(), Json::Str(message.into()));
    Json::Obj(obj).encode()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
        assert_eq!(
            parse("[1, [2], {}]").unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Arr(vec![Json::Num(2.0)]),
                Json::Obj(BTreeMap::new())
            ])
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"x", "tru", "1 2", "{\"a\":}", "nan"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn encode_parse_roundtrip() {
        let line = r#"{"a":[1,2.5,"x\"y"],"b":{"c":null,"d":false}}"#;
        let v = parse(line).unwrap();
        assert_eq!(parse(&v.encode()).unwrap(), v);
        assert_eq!(v.encode(), line);
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let v = Json::Str("héllo ⊕ wörld".into());
        assert_eq!(parse(&v.encode()).unwrap(), v);
        assert_eq!(parse(r#""é""#).unwrap(), Json::Str("é".into()));
    }

    #[test]
    fn layout_request_decoding() {
        let line = r#"{"op":"layout","algo":"aco","nodes":4,"edges":[[0,1],[1,2],[2,3]],
                       "seed":9,"ants":3,"tours":2,"deadline_ms":100,"nd_width":0.5}"#;
        let Request::Layout(req) = parse_request(line).unwrap() else {
            panic!("expected layout");
        };
        assert_eq!(req.graph.node_count(), 4);
        assert_eq!(req.graph.edge_count(), 3);
        assert_eq!(req.nd_width, 0.5);
        assert_eq!(req.deadline, Some(Duration::from_millis(100)));
        let AlgoSpec::Aco(p) = req.algo else {
            panic!("expected aco");
        };
        assert_eq!((p.n_ants, p.n_tours, p.seed), (3, 2, 9));
    }

    #[test]
    fn layout_request_validation_errors() {
        for (line, needle) in [
            (r#"{"op":"layout"}"#, "missing 'nodes'"),
            (
                r#"{"op":"layout","nodes":2,"edges":[[0,5]]}"#,
                "out of range",
            ),
            (r#"{"op":"layout","nodes":2,"edges":[3]}"#, "[[u,v],...]"),
            (r#"{"op":"warp"}"#, "unknown op"),
            (r#"not json"#, "bad JSON"),
            // Work caps: a single request must not buy unbounded compute.
            (
                r#"{"op":"layout","nodes":2,"ants":1000000000}"#,
                "ants exceeds",
            ),
            (
                r#"{"op":"layout","nodes":2,"tours":1000000000}"#,
                "tours exceeds",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn layout_delta_request_decoding() {
        let digest = "0123456789abcdef0123456789abcdef";
        let line = format!(
            r#"{{"op":"layout_delta","base":"{digest}","add":[[0,3]],"remove":[[0,1],[1,2]],"seed":5,"deadline_ms":40}}"#
        );
        let Request::LayoutDelta(req) = parse_request(&line).unwrap() else {
            panic!("expected layout_delta");
        };
        assert_eq!(req.base.to_string(), digest);
        assert_eq!(req.delta.added, vec![(0, 3)]);
        assert_eq!(req.delta.removed, vec![(0, 1), (1, 2)]);
        assert_eq!(req.deadline, Some(Duration::from_millis(40)));
        let AlgoSpec::Aco(p) = req.algo else {
            panic!("expected aco");
        };
        assert_eq!(p.seed, 5);
    }

    #[test]
    fn layout_delta_validation_errors() {
        for (line, needle) in [
            (r#"{"op":"layout_delta","add":[[0,1]]}"#, "missing 'base'"),
            (
                r#"{"op":"layout_delta","base":"zz","add":[[0,1]]}"#,
                "32-hex-digit",
            ),
            (
                r#"{"op":"layout_delta","base":"0123456789abcdef0123456789abcdef"}"#,
                "empty delta",
            ),
            (
                r#"{"op":"layout_delta","base":"0123456789abcdef0123456789abcdef","add":[7]}"#,
                "[[u,v],...]",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn layout_delta_edit_cap_is_enforced() {
        // 100_001 removals: one request must not buy unbounded delta
        // application work on the connection thread.
        let pairs: Vec<String> = (0..100_001).map(|i| format!("[{i},{}]", i + 1)).collect();
        let line = format!(
            r#"{{"op":"layout_delta","base":"0123456789abcdef0123456789abcdef","remove":[{}]}}"#,
            pairs.join(",")
        );
        let err = parse_request(&line).unwrap_err();
        assert!(err.contains("exceeds the 100000"), "{err}");
    }

    #[test]
    fn error_encoding_is_parseable() {
        let line = encode_error("overloaded: 9 jobs");
        let v = parse(&line).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            v.get("error").and_then(Json::as_str),
            Some("overloaded: 9 jobs")
        );
    }
}
