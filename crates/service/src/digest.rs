//! Canonical request digests — the cache key of the serving layer.
//!
//! A layout result is identified by everything that determines its bits:
//! the digraph (dense node ids + exact edge list), the algorithm and its
//! parameters, and the width model. [`CanonicalHasher`] consumes a
//! canonical byte/word encoding of those and produces a 128-bit
//! [`Digest`]; two requests collide only if their canonical encodings
//! collide, so equal digests mean "the server may reuse the stored
//! result".
//!
//! Two deliberate non-goals:
//!
//! * **No graph canonization.** Isomorphic graphs with different node
//!   numberings hash differently. Diagram front ends re-send the same
//!   node numbering for the same document, which is the reuse pattern
//!   the cache targets; graph-isomorphism-strength keys would cost more
//!   than a cache miss.
//! * **No deadline.** The request deadline is quality-of-service, not
//!   identity (see `AcoParams::time_budget`); digests of a request with
//!   and without a deadline are equal, and the scheduler refuses to cache
//!   deadline-truncated runs instead.

use antlayer_aco::{AcoParams, DepositStrategy, SelectionRule, StretchStrategy, VisitOrder};
use antlayer_graph::DiGraph;
use antlayer_layering::WidthModel;
use std::fmt;

/// A 128-bit content digest, printable as 32 hex digits.
///
/// # Examples
///
/// ```
/// use antlayer_service::Digest;
///
/// let d = Digest { hi: 0x0123, lo: 0xabcd };
/// let hex = d.to_string();
/// assert_eq!(hex.len(), 32);
/// assert_eq!(Digest::from_hex(&hex), Some(d)); // the wire round-trip
/// assert_eq!(Digest::from_hex("not hex"), None);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Digest {
    /// High 64 bits.
    pub hi: u64,
    /// Low 64 bits.
    pub lo: u64,
}

impl Digest {
    /// The digest as one `u128`.
    pub fn as_u128(self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }

    /// Parses the 32-hex-digit form produced by [`Display`](fmt::Display);
    /// the wire format of `layout_delta`'s base reference.
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        Some(Digest {
            hi: u64::from_str_radix(&s[..16], 16).ok()?,
            lo: u64::from_str_radix(&s[16..], 16).ok()?,
        })
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Incremental 128-bit hasher over a canonical word stream.
///
/// Two independent 64-bit lanes absorb every word with different odd
/// multipliers and a xor-shift avalanche (the SplitMix64 finalizer), so
/// the lanes never agree by construction; the house style favours this
/// dependency-free scheme over pulling in a hashing crate.
///
/// # Examples
///
/// ```
/// use antlayer_service::CanonicalHasher;
///
/// let digest_of = |text: &str| {
///     let mut h = CanonicalHasher::new("example-v1");
///     h.write_str(text);
///     h.finish()
/// };
/// assert_eq!(digest_of("same input"), digest_of("same input"));
/// assert_ne!(digest_of("same input"), digest_of("other input"));
/// ```
pub struct CanonicalHasher {
    a: u64,
    b: u64,
    words: u64,
}

const LANE_A_SEED: u64 = 0x243F_6A88_85A3_08D3; // pi
const LANE_B_SEED: u64 = 0xB7E1_5162_8AED_2A6A; // e
const LANE_A_MULT: u64 = 0x9E37_79B9_7F4A_7C15;
const LANE_B_MULT: u64 = 0xC2B2_AE3D_27D4_EB4F;

fn avalanche(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl CanonicalHasher {
    /// A hasher domain-separated by `tag` (protocol/version string).
    pub fn new(tag: &str) -> Self {
        let mut h = CanonicalHasher {
            a: LANE_A_SEED,
            b: LANE_B_SEED,
            words: 0,
        };
        h.write_str(tag);
        h
    }

    /// Absorbs one 64-bit word.
    pub fn write_u64(&mut self, w: u64) {
        self.a = avalanche(self.a ^ w).wrapping_mul(LANE_A_MULT);
        self.b = avalanche(self.b.rotate_left(29) ^ w).wrapping_mul(LANE_B_MULT);
        self.words += 1;
    }

    /// Absorbs a float by its bit pattern (`-0.0` and `0.0` thus differ;
    /// canonical encoders should not emit negative zero).
    pub fn write_f64(&mut self, f: f64) {
        self.write_u64(f.to_bits());
    }

    /// Absorbs a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        for chunk in s.as_bytes().chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(w));
        }
    }

    /// Absorbs an optional word with presence disambiguation.
    pub fn write_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.write_u64(0),
            Some(w) => {
                self.write_u64(1);
                self.write_u64(w);
            }
        }
    }

    /// Finalizes into a digest; includes the absorbed word count so
    /// prefix-related streams differ.
    pub fn finish(mut self) -> Digest {
        let words = self.words;
        self.write_u64(words);
        Digest {
            hi: avalanche(self.a ^ self.b.rotate_left(17)),
            lo: avalanche(self.b ^ self.a.rotate_left(43)),
        }
    }
}

/// Version tag of the canonical encoding; bump when the encoding changes
/// so stale caches cannot alias new requests.
pub const DIGEST_TAG: &str = "antlayer-digest-v1";

/// Digest of a full layout request: graph + algorithm + width model.
///
/// # Examples
///
/// ```
/// use antlayer_graph::DiGraph;
/// use antlayer_layering::WidthModel;
/// use antlayer_service::request_digest;
///
/// let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// let wm = WidthModel::unit();
/// // Edge insertion order is canonicalized away…
/// let reordered = DiGraph::from_edges(3, &[(1, 2), (0, 1)]).unwrap();
/// assert_eq!(
///     request_digest(&g, "lpl", None, &wm),
///     request_digest(&reordered, "lpl", None, &wm)
/// );
/// // …but the algorithm is part of the identity.
/// assert_ne!(
///     request_digest(&g, "lpl", None, &wm),
///     request_digest(&g, "ns", None, &wm)
/// );
/// ```
pub fn request_digest(
    graph: &DiGraph,
    algo_canonical: &str,
    params: Option<&AcoParams>,
    wm: &WidthModel,
) -> Digest {
    let mut h = CanonicalHasher::new(DIGEST_TAG);
    write_graph(&mut h, graph);
    h.write_str(algo_canonical);
    match params {
        None => h.write_u64(0),
        Some(p) => {
            h.write_u64(1);
            write_aco_params(&mut h, p);
        }
    }
    write_width_model(&mut h, wm, graph);
    h.finish()
}

fn write_graph(h: &mut CanonicalHasher, graph: &DiGraph) {
    h.write_u64(graph.node_count() as u64);
    h.write_u64(graph.edge_count() as u64);
    // Node ids are dense indices, so the sorted edge list is canonical for
    // a given numbering regardless of insertion order.
    let mut edges: Vec<(u32, u32)> = graph
        .edges()
        .map(|(u, v)| (u.index() as u32, v.index() as u32))
        .collect();
    edges.sort_unstable();
    for (u, v) in edges {
        h.write_u64(((u as u64) << 32) | v as u64);
    }
}

fn write_width_model(h: &mut CanonicalHasher, wm: &WidthModel, graph: &DiGraph) {
    h.write_f64(wm.dummy_width);
    if wm.is_uniform() {
        h.write_u64(0);
    } else {
        h.write_u64(1);
        for v in graph.nodes() {
            h.write_f64(wm.node_width(v));
        }
    }
}

fn write_aco_params(h: &mut CanonicalHasher, p: &AcoParams) {
    h.write_u64(p.n_ants as u64);
    h.write_u64(p.n_tours as u64);
    h.write_f64(p.alpha);
    h.write_f64(p.beta);
    h.write_f64(p.rho);
    h.write_f64(p.tau0);
    h.write_f64(p.deposit_q);
    h.write_u64(p.seed);
    h.write_str(match p.stretch {
        StretchStrategy::Between => "between",
        StretchStrategy::Above => "above",
        StretchStrategy::Below => "below",
        StretchStrategy::Split => "split",
    });
    h.write_str(match p.selection {
        SelectionRule::ArgMax => "argmax",
        SelectionRule::Roulette => "roulette",
    });
    h.write_str(match p.visit_order {
        VisitOrder::Random => "random",
        VisitOrder::Bfs => "bfs",
        VisitOrder::Topological => "topo",
    });
    match p.deposit {
        DepositStrategy::TourBest => h.write_u64(0),
        DepositStrategy::RankBased(k) => {
            h.write_u64(1);
            h.write_u64(k as u64);
        }
    }
    match p.tau_bounds {
        None => h.write_u64(0),
        Some((lo, hi)) => {
            h.write_u64(1);
            h.write_f64(lo);
            h.write_f64(hi);
        }
    }
    h.write_opt_u64(p.target_layers.map(|t| t as u64));
    h.write_opt_u64(p.eta_floor.map(f64::to_bits));
    // time_budget intentionally omitted: QoS, not identity. threads
    // likewise — the colony is deterministic under any thread count.
    // trajectory_cap likewise: convergence telemetry never changes
    // which layering a run returns.
}

#[cfg(test)]
mod tests {
    use super::*;
    use antlayer_graph::DiGraph;
    use std::collections::HashSet;

    fn g(n: usize, edges: &[(u32, u32)]) -> DiGraph {
        DiGraph::from_edges(n, edges).unwrap()
    }

    #[test]
    fn digest_is_deterministic() {
        let a = request_digest(&g(3, &[(0, 1), (1, 2)]), "aco", None, &WidthModel::unit());
        let b = request_digest(&g(3, &[(0, 1), (1, 2)]), "aco", None, &WidthModel::unit());
        assert_eq!(a, b);
        assert_eq!(a.to_string().len(), 32);
    }

    #[test]
    fn edge_insertion_order_is_canonicalized() {
        let a = request_digest(&g(3, &[(0, 1), (1, 2)]), "lpl", None, &WidthModel::unit());
        let b = request_digest(&g(3, &[(1, 2), (0, 1)]), "lpl", None, &WidthModel::unit());
        assert_eq!(a, b);
    }

    #[test]
    fn all_small_graphs_get_distinct_digests() {
        // Every labelled digraph on 3 nodes (9 possible directed edges
        // minus self-loops = 6 arcs, 2^6 graphs) must hash distinctly.
        let arcs = [(0, 1), (0, 2), (1, 0), (1, 2), (2, 0), (2, 1)];
        let mut seen = HashSet::new();
        for mask in 0u32..64 {
            let edges: Vec<(u32, u32)> = arcs
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &e)| e)
                .collect();
            let d = request_digest(&g(3, &edges), "lpl", None, &WidthModel::unit());
            assert!(seen.insert(d.as_u128()), "collision at mask {mask}");
        }
    }

    #[test]
    fn algo_params_and_widths_separate_digests() {
        let graph = g(4, &[(0, 1), (1, 2), (2, 3)]);
        let wm = WidthModel::unit();
        let base = request_digest(&graph, "aco", Some(&AcoParams::default()), &wm);
        let other_algo = request_digest(&graph, "lpl", None, &wm);
        assert_ne!(base, other_algo);
        let seeded = AcoParams::default().with_seed(99);
        assert_ne!(base, request_digest(&graph, "aco", Some(&seeded), &wm));
        let wide = WidthModel::with_dummy_width(0.5);
        assert_ne!(
            base,
            request_digest(&graph, "aco", Some(&AcoParams::default()), &wide)
        );
    }

    #[test]
    fn deadline_and_threads_do_not_change_identity() {
        let graph = g(4, &[(0, 1), (1, 2), (2, 3)]);
        let wm = WidthModel::unit();
        let p1 = AcoParams::default().with_threads(1);
        let p2 = AcoParams::default()
            .with_threads(8)
            .with_time_budget(Some(std::time::Duration::from_millis(5)));
        assert_eq!(
            request_digest(&graph, "aco", Some(&p1), &wm),
            request_digest(&graph, "aco", Some(&p2), &wm)
        );
    }

    #[test]
    fn trajectory_cap_does_not_change_identity() {
        // Convergence telemetry is QoS, not identity: caching must treat
        // instrumented and uninstrumented runs as the same request.
        let graph = g(4, &[(0, 1), (1, 2), (2, 3)]);
        let wm = WidthModel::unit();
        let p1 = AcoParams::default().with_trajectory_cap(0);
        let p2 = AcoParams::default().with_trajectory_cap(1024);
        assert_eq!(
            request_digest(&graph, "aco", Some(&p1), &wm),
            request_digest(&graph, "aco", Some(&p2), &wm)
        );
    }

    #[test]
    fn node_count_disambiguates_isolated_tails() {
        // Same edges, different node counts (trailing isolated vertices).
        let wm = WidthModel::unit();
        let a = request_digest(&g(3, &[(0, 1)]), "lpl", None, &wm);
        let b = request_digest(&g(4, &[(0, 1)]), "lpl", None, &wm);
        assert_ne!(a, b);
    }

    #[test]
    fn from_hex_round_trips_display() {
        let d = request_digest(&g(3, &[(0, 1)]), "aco", None, &WidthModel::unit());
        assert_eq!(Digest::from_hex(&d.to_string()), Some(d));
        assert_eq!(Digest::from_hex("short"), None);
        assert_eq!(Digest::from_hex(&"x".repeat(32)), None);
        // Mixed case is accepted (hex digits only).
        let upper = d.to_string().to_uppercase();
        assert_eq!(Digest::from_hex(&upper), Some(d));
    }

    #[test]
    fn hasher_separates_string_boundaries() {
        let mut h1 = CanonicalHasher::new("t");
        h1.write_str("ab");
        h1.write_str("c");
        let mut h2 = CanonicalHasher::new("t");
        h2.write_str("a");
        h2.write_str("bc");
        assert_ne!(h1.finish(), h2.finish());
    }
}
