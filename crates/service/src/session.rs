//! Live-session bookkeeping for the reactor listener: who is
//! subscribed, what version they have seen, what edits are waiting, and
//! how much output they have not drained yet.
//!
//! The reactor loop in [`crate::live`] owns one [`SessionTable`] and one
//! [`OutboundQueue`] per connection. Everything here is plain
//! single-threaded state — the reactor thread is the only writer — so
//! the structures carry no locks. The interesting invariants:
//!
//! * **Versions are per-session and strictly monotonic.** The base
//!   layout is version 0; every pushed `session_update` increments by
//!   exactly one. A client that sees a gap knows the stream is broken.
//! * **Edits coalesce while a solve is in flight.** A burst of
//!   `session_delta`s during one re-solve folds into a single composed
//!   [`GraphDelta`] (net effect, order-preserving — see
//!   `GraphDelta::compose`) and costs one re-solve, not N.
//! * **Epochs guard stale completions.** Re-opening or closing a
//!   session bumps its epoch; a solve completion carrying an old epoch
//!   is dropped instead of corrupting the successor session.
//! * **Slow consumers are evicted, not buffered forever.** Each
//!   session may have at most [`OutboundQueue::session_cap`] frames
//!   queued; pushing past the cap signals eviction and the session's
//!   queued frames are dropped (minus any partially-written front
//!   frame, which must finish or the stream desyncs).

use crate::digest::Digest;
use crate::protocol::Json;
use crate::scheduler::AlgoSpec;
use antlayer_graph::GraphDelta;
use antlayer_obs::{Counter, Histogram, Registry};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A session is addressed by (connection token, encoded envelope `id`):
/// ids are scoped to their connection, so two clients may both use
/// `"id":1` without colliding.
pub type SessionKey = (u64, String);

/// Edits that arrived while a solve was in flight, folded into one
/// net-effect delta.
#[derive(Debug)]
pub struct PendingDeltas {
    /// The composed edit (`d1 ∘ d2 ∘ …` — net effect of all of them).
    pub delta: GraphDelta,
    /// How many `session_delta` requests were folded in.
    pub count: u64,
    /// Arrival time of the *earliest* folded delta: push latency is
    /// measured from the moment the client asked, not from when the
    /// server got around to solving.
    pub since: Instant,
}

/// One open streaming session.
#[derive(Debug)]
pub struct Session {
    /// The envelope `id` the client opened with, echoed verbatim on
    /// every frame pushed for this session.
    pub id: Json,
    /// Stale-completion guard: bumped on every open/replace; a solve
    /// completion whose epoch mismatches is dropped.
    pub epoch: u64,
    /// Algorithm of the open request; every delta re-solve repeats it.
    pub algo: AlgoSpec,
    /// Width model of the open request.
    pub nd_width: f64,
    /// Per-solve deadline of the open request.
    pub deadline: Option<Duration>,
    /// Canonical digest of the session's *current* graph — the base the
    /// next delta solve warm-starts from. `None` until the base layout
    /// lands.
    pub digest: Option<Digest>,
    /// Last version pushed (base layout = 0).
    pub version: u64,
    /// Whether a solve for this session is currently running.
    pub in_flight: bool,
    /// Edits waiting for the in-flight solve to finish.
    pub pending: Option<PendingDeltas>,
    /// The layer lists of the last pushed layout, kept so the next push
    /// can carry only the layers that changed.
    pub layers: Vec<Vec<u32>>,
    /// Last time the client did anything (open/delta) — idle-session
    /// accounting.
    pub last_activity: Instant,
}

impl Session {
    /// Folds one more edit into the pending set (the in-flight case).
    /// Returns the number of edits now pending.
    pub fn queue_delta(&mut self, delta: GraphDelta, now: Instant) -> u64 {
        self.last_activity = now;
        let pending = match self.pending.take() {
            None => PendingDeltas {
                delta,
                count: 1,
                since: now,
            },
            Some(p) => PendingDeltas {
                delta: p.delta.compose(&delta),
                count: p.count + 1,
                since: p.since,
            },
        };
        let count = pending.count;
        self.pending = Some(pending);
        count
    }
}

/// Every open session, keyed by (connection token, envelope id).
pub struct SessionTable {
    sessions: HashMap<SessionKey, Session>,
    /// Global epoch counter; never reused, so a completion from a
    /// session's previous life can never match its successor.
    next_epoch: u64,
    metrics: Arc<SessionMetrics>,
}

impl SessionTable {
    /// An empty table reporting into `metrics`.
    pub fn new(metrics: Arc<SessionMetrics>) -> SessionTable {
        SessionTable {
            sessions: HashMap::new(),
            next_epoch: 0,
            metrics,
        }
    }

    /// Opens (or re-opens, bumping the epoch) the session under `key`.
    /// Returns the new epoch.
    pub fn open(
        &mut self,
        key: SessionKey,
        id: Json,
        algo: AlgoSpec,
        nd_width: f64,
        deadline: Option<Duration>,
        now: Instant,
    ) -> u64 {
        self.next_epoch += 1;
        let epoch = self.next_epoch;
        let fresh = self
            .sessions
            .insert(
                key,
                Session {
                    id,
                    epoch,
                    algo,
                    nd_width,
                    deadline,
                    digest: None,
                    version: 0,
                    in_flight: true,
                    pending: None,
                    layers: Vec::new(),
                    last_activity: now,
                },
            )
            .is_none();
        if fresh {
            self.metrics.open.fetch_add(1, Ordering::Relaxed);
        }
        epoch
    }

    /// The session under `key`, if open.
    pub fn get_mut(&mut self, key: &SessionKey) -> Option<&mut Session> {
        self.sessions.get_mut(key)
    }

    /// Removes the session under `key`, returning it.
    pub fn remove(&mut self, key: &SessionKey) -> Option<Session> {
        let removed = self.sessions.remove(key);
        if removed.is_some() {
            self.metrics.open.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    /// Drops every session belonging to connection `conn` (the client
    /// hung up). Returns how many were dropped.
    pub fn remove_conn(&mut self, conn: u64) -> usize {
        let before = self.sessions.len();
        self.sessions.retain(|(c, _), _| *c != conn);
        let dropped = before - self.sessions.len();
        self.metrics.open.fetch_sub(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Number of open sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no session is open.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// How many open sessions have been idle (no open/delta) for at
    /// least `for_at_least`, as of `now`.
    pub fn idle_count(&self, now: Instant, for_at_least: Duration) -> usize {
        self.sessions
            .values()
            .filter(|s| now.duration_since(s.last_activity) >= for_at_least)
            .count()
    }
}

/// The session tier's observability handles, registered on the
/// process-wide [`Registry`] so `GET /metrics` and the `stats` op see
/// them alongside the scheduler's.
pub struct SessionMetrics {
    /// Currently open sessions (rendered by a `gauge_fn` reading this).
    open: Arc<AtomicU64>,
    /// Of those, how many have been idle past the reactor's threshold —
    /// refreshed lazily by the reactor loop (an `idle_count` scan is
    /// O(sessions), too dear to run per event).
    idle: Arc<AtomicU64>,
    /// Push frames enqueued (`session_update`s).
    pub pushes: Arc<Counter>,
    /// Deltas folded into an already-pending re-solve instead of
    /// costing their own.
    pub coalesced: Arc<Counter>,
    /// Sessions evicted for not draining their outbound queue.
    pub evicted: Arc<Counter>,
    /// Microseconds from a delta's arrival (the earliest of a coalesced
    /// burst) to its `session_update` frame entering the outbound queue.
    pub push_us: Arc<Histogram>,
}

impl SessionMetrics {
    /// Registers the session metrics on `registry`.
    pub fn new(registry: &Registry) -> Arc<SessionMetrics> {
        let open = Arc::new(AtomicU64::new(0));
        let open_reader = open.clone();
        registry.gauge_fn("sessions_open", "currently open live edit sessions", move || {
            open_reader.load(Ordering::Relaxed)
        });
        let idle = Arc::new(AtomicU64::new(0));
        let idle_reader = idle.clone();
        registry.gauge_fn(
            "sessions_idle",
            "open sessions with no client activity past the idle threshold",
            move || idle_reader.load(Ordering::Relaxed),
        );
        Arc::new(SessionMetrics {
            open,
            idle,
            pushes: registry.counter(
                "session_pushes_total",
                "session_update frames pushed to live subscribers",
            ),
            coalesced: registry.counter(
                "session_coalesced_total",
                "session deltas folded into an in-flight re-solve",
            ),
            evicted: registry.counter(
                "session_evicted_total",
                "sessions evicted for not draining their outbound queue",
            ),
            push_us: registry.histogram(
                "session_push_us",
                "microseconds from delta arrival to the update frame entering the outbound queue",
            ),
        })
    }

    /// Currently open sessions.
    pub fn open_count(&self) -> u64 {
        self.open.load(Ordering::Relaxed)
    }

    /// Publishes the latest idle-session scan.
    pub fn set_idle(&self, n: u64) {
        self.idle.store(n, Ordering::Relaxed);
    }

    /// The last published idle-session count.
    pub fn idle_value(&self) -> u64 {
        self.idle.load(Ordering::Relaxed)
    }
}

/// One queued outbound frame: its owning session (for the per-session
/// cap and targeted drops) and its encoded bytes, newline included.
struct Frame {
    session: Option<String>,
    bytes: Vec<u8>,
}

/// A connection's outbound byte queue with per-session bounds.
///
/// Frames are written in FIFO order; a frame may be written across
/// several readiness events, so the queue tracks a byte offset into the
/// front frame. Control frames (replies to `ping`, errors without a
/// session, …) are never dropped; session frames count against
/// [`session_cap`](Self::session_cap) and pushing past it reports a
/// slow consumer instead of buffering without bound.
pub struct OutboundQueue {
    frames: VecDeque<Frame>,
    /// Bytes of the front frame already written to the socket.
    front_offset: usize,
    per_session: HashMap<String, usize>,
    session_cap: usize,
}

impl OutboundQueue {
    /// An empty queue allowing at most `session_cap` queued frames per
    /// session.
    pub fn new(session_cap: usize) -> OutboundQueue {
        OutboundQueue {
            frames: VecDeque::new(),
            front_offset: 0,
            per_session: HashMap::new(),
            session_cap,
        }
    }

    /// The per-session queued-frame bound.
    pub fn session_cap(&self) -> usize {
        self.session_cap
    }

    /// Queues a frame that belongs to no session (always accepted).
    pub fn push_control(&mut self, bytes: Vec<u8>) {
        self.frames.push_back(Frame {
            session: None,
            bytes,
        });
    }

    /// Queues a frame for session `key`. Returns `false` — without
    /// queueing — when the session already has `session_cap` frames
    /// waiting: the consumer is not draining and should be evicted.
    pub fn push_session(&mut self, key: &str, bytes: Vec<u8>) -> bool {
        let count = self.per_session.entry(key.to_string()).or_insert(0);
        if *count >= self.session_cap {
            return false;
        }
        *count += 1;
        self.frames.push_back(Frame {
            session: Some(key.to_string()),
            bytes,
        });
        true
    }

    /// Drops every queued frame of session `key`, except a front frame
    /// that is already partially on the wire (truncating it would
    /// desync the stream; it finishes, then the drop holds). Returns
    /// the number of frames removed.
    pub fn drop_session(&mut self, key: &str) -> usize {
        let keep_front = self.front_offset > 0;
        let mut removed = 0;
        let mut idx = 0;
        self.frames.retain(|f| {
            let is_first = idx == 0;
            idx += 1;
            if f.session.as_deref() == Some(key) && !(is_first && keep_front) {
                removed += 1;
                false
            } else {
                true
            }
        });
        match self.per_session.get_mut(key) {
            Some(count) => {
                *count -= removed.min(*count);
                if *count == 0 {
                    self.per_session.remove(key);
                }
            }
            None => {}
        }
        removed
    }

    /// The unwritten bytes of the front frame, if any.
    pub fn front(&self) -> Option<&[u8]> {
        self.frames.front().map(|f| &f.bytes[self.front_offset..])
    }

    /// Consumes `n` bytes of the front frame (they reached the socket).
    /// A fully-written frame is popped and its session count released.
    pub fn advance(&mut self, n: usize) {
        let Some(front) = self.frames.front() else {
            return;
        };
        self.front_offset += n;
        if self.front_offset < front.bytes.len() {
            return;
        }
        let done = self.frames.pop_front().expect("front exists");
        self.front_offset = 0;
        if let Some(key) = done.session {
            if let Some(count) = self.per_session.get_mut(&key) {
                *count -= 1;
                if *count == 0 {
                    self.per_session.remove(&key);
                }
            }
        }
    }

    /// Whether nothing is waiting to be written.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Queued frames (for tests and debugging).
    pub fn len(&self) -> usize {
        self.frames.len()
    }
}

/// The changed-layer diff between two bottom-up layer lists: every
/// index of `new` whose membership differs from `old` (including
/// indices past `old`'s end). Layers `old` had above `new`'s height are
/// implied removed by the frame's `height` member and not listed.
pub fn diff_layers(old: &[Vec<u32>], new: &[Vec<u32>]) -> Vec<(u32, Vec<u32>)> {
    new.iter()
        .enumerate()
        .filter(|(i, layer)| old.get(*i) != Some(layer))
        .map(|(i, layer)| (i as u32, layer.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> Arc<SessionMetrics> {
        SessionMetrics::new(&Registry::default())
    }

    fn spec() -> AlgoSpec {
        AlgoSpec::parse("lpl", 0).unwrap()
    }

    #[test]
    fn open_replace_close_tracks_the_gauge_and_epochs() {
        let m = metrics();
        let mut table = SessionTable::new(m.clone());
        let now = Instant::now();
        let key: SessionKey = (3, "1".into());
        let first = table.open(key.clone(), Json::Num(1.0), spec(), 1.0, None, now);
        assert_eq!(m.open_count(), 1);
        // Re-opening the same key replaces the session and bumps the
        // epoch, but the gauge still counts one session.
        let second = table.open(key.clone(), Json::Num(1.0), spec(), 1.0, None, now);
        assert!(second > first);
        assert_eq!(m.open_count(), 1);
        assert!(table.remove(&key).is_some());
        assert_eq!(m.open_count(), 0);
        assert!(table.remove(&key).is_none());
        assert_eq!(m.open_count(), 0);
    }

    #[test]
    fn remove_conn_drops_only_that_connections_sessions() {
        let m = metrics();
        let mut table = SessionTable::new(m.clone());
        let now = Instant::now();
        table.open((1, "a".into()), Json::Str("a".into()), spec(), 1.0, None, now);
        table.open((1, "b".into()), Json::Str("b".into()), spec(), 1.0, None, now);
        table.open((2, "a".into()), Json::Str("a".into()), spec(), 1.0, None, now);
        assert_eq!(table.remove_conn(1), 2);
        assert_eq!(table.len(), 1);
        assert_eq!(m.open_count(), 1);
        assert!(table.get_mut(&(2, "a".into())).is_some());
    }

    #[test]
    fn queued_deltas_compose_and_keep_the_earliest_arrival() {
        let m = metrics();
        let mut table = SessionTable::new(m);
        let t0 = Instant::now();
        let key: SessionKey = (1, "s".into());
        table.open(key.clone(), Json::Str("s".into()), spec(), 1.0, None, t0);
        let s = table.get_mut(&key).unwrap();
        let d1 = GraphDelta::new(vec![(0, 1)], vec![]);
        let d2 = GraphDelta::new(vec![(1, 2)], vec![(0, 1)]);
        assert_eq!(s.queue_delta(d1, t0), 1);
        let t1 = t0 + Duration::from_millis(5);
        assert_eq!(s.queue_delta(d2, t1), 2);
        let pending = s.pending.take().unwrap();
        assert_eq!(pending.count, 2);
        assert_eq!(pending.since, t0);
        // add (0,1) then remove (0,1) cancels; add (1,2) survives.
        assert_eq!(pending.delta.added, vec![(1, 2)]);
        assert!(pending.delta.removed.is_empty());
    }

    #[test]
    fn idle_count_splits_hot_from_idle() {
        let m = metrics();
        let mut table = SessionTable::new(m);
        let t0 = Instant::now();
        table.open((1, "idle".into()), Json::Str("idle".into()), spec(), 1.0, None, t0);
        let t1 = t0 + Duration::from_secs(10);
        table.open((1, "hot".into()), Json::Str("hot".into()), spec(), 1.0, None, t1);
        assert_eq!(table.idle_count(t1, Duration::from_secs(5)), 1);
        assert_eq!(table.idle_count(t1, Duration::ZERO), 2);
    }

    #[test]
    fn queue_caps_per_session_and_signals_eviction() {
        let mut q = OutboundQueue::new(2);
        assert!(q.push_session("s", b"1\n".to_vec()));
        assert!(q.push_session("s", b"2\n".to_vec()));
        // Third frame for the same session: over the cap, not queued.
        assert!(!q.push_session("s", b"3\n".to_vec()));
        assert_eq!(q.len(), 2);
        // A different session and control frames are unaffected.
        assert!(q.push_session("t", b"t\n".to_vec()));
        q.push_control(b"c\n".to_vec());
        assert_eq!(q.len(), 4);
        // Draining releases the cap.
        q.advance(2);
        assert!(q.push_session("s", b"4\n".to_vec()));
    }

    #[test]
    fn drop_session_keeps_a_partially_written_front_frame() {
        let mut q = OutboundQueue::new(8);
        q.push_session("s", b"first\n".to_vec());
        q.push_session("s", b"second\n".to_vec());
        q.push_control(b"ctl\n".to_vec());
        q.push_session("s", b"third\n".to_vec());
        // Two bytes of "first\n" are on the wire: dropping the session
        // must keep the rest of that frame or the stream desyncs.
        q.advance(2);
        assert_eq!(q.drop_session("s"), 2);
        assert_eq!(q.front(), Some(&b"rst\n"[..]));
        q.advance(4);
        assert_eq!(q.front(), Some(&b"ctl\n"[..]));
        q.advance(4);
        assert!(q.is_empty());
        // The cap bookkeeping survived the partial drop.
        assert!(q.push_session("s", b"again\n".to_vec()));
    }

    #[test]
    fn drop_session_with_clean_front_removes_everything() {
        let mut q = OutboundQueue::new(8);
        q.push_session("s", b"a\n".to_vec());
        q.push_control(b"c\n".to_vec());
        q.push_session("s", b"b\n".to_vec());
        assert_eq!(q.drop_session("s"), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.front(), Some(&b"c\n"[..]));
    }

    #[test]
    fn advance_across_frame_boundaries_releases_session_slots() {
        let mut q = OutboundQueue::new(1);
        assert!(q.push_session("s", b"abc\n".to_vec()));
        assert!(!q.push_session("s", b"over\n".to_vec()));
        // Written in three chunks.
        q.advance(1);
        q.advance(2);
        assert!(!q.is_empty());
        q.advance(1);
        assert!(q.is_empty());
        assert!(q.push_session("s", b"next\n".to_vec()));
    }

    #[test]
    fn diff_layers_reports_changed_and_new_indices_only() {
        let old = vec![vec![0, 1], vec![2], vec![3]];
        let new = vec![vec![0, 1], vec![2, 4], vec![3], vec![5]];
        assert_eq!(
            diff_layers(&old, &new),
            vec![(1, vec![2, 4]), (3, vec![5])]
        );
        // Pure truncation: nothing changed below the new height; the
        // frame's `height` member carries the removal.
        assert_eq!(diff_layers(&new, &new[..2]), vec![]);
        assert_eq!(diff_layers(&[], &old), vec![
            (0, vec![0, 1]),
            (1, vec![2]),
            (2, vec![3]),
        ]);
    }
}
