//! Property tests of the typed protocol codec: encode → parse → encode
//! is the identity for every [`Request`] and [`Response`] variant, on
//! both the v1 (flat) and v2 (enveloped) wire forms. The encoders are
//! canonical (sorted keys, one number spelling), so string equality is
//! the right notion of identity.

use antlayer_graph::{DiGraph, GraphDelta};
use antlayer_service::digest::Digest;
use antlayer_service::protocol::{
    self, CacheEntry, CachePage, Envelope, ErrorKind, Json, LayoutReply, MemberStats, Request,
    Response, TopologyReply, TopologyShard, WireError,
};
use antlayer_service::scheduler::{AlgoSpec, DeltaRequest, LayoutRequest};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

const ALGOS: [&str; 9] = [
    "lpl",
    "lpl-pl",
    "minwidth",
    "minwidth-pl",
    "cg",
    "ns",
    "aco",
    "exact",
    "portfolio",
];
const SOURCES: [&str; 4] = ["hit", "computed", "warm", "coalesced"];
const KINDS: [ErrorKind; 11] = [
    ErrorKind::BadJson,
    ErrorKind::BadVersion,
    ErrorKind::MissingOp,
    ErrorKind::UnknownOp,
    ErrorKind::InvalidRequest,
    ErrorKind::InvalidGraph,
    ErrorKind::Overloaded,
    ErrorKind::BaseNotFound,
    ErrorKind::Internal,
    ErrorKind::TooLarge,
    ErrorKind::Unroutable,
];

/// A small simple digraph from raw pairs: self-loops and duplicates
/// dropped, endpoints wrapped into range.
fn graph_of(nodes: usize, raw_edges: &[(u32, u32)]) -> DiGraph {
    let mut seen = std::collections::HashSet::new();
    let edges: Vec<(u32, u32)> = raw_edges
        .iter()
        .map(|&(u, v)| (u % nodes as u32, v % nodes as u32))
        .filter(|&(u, v)| u != v && seen.insert((u, v)))
        .collect();
    DiGraph::from_edges(nodes, &edges).expect("filtered edges are valid")
}

#[allow(clippy::too_many_arguments)] // mirrors the proptest parameter list
fn request_of(
    op: usize,
    nodes: usize,
    raw_edges: &[(u32, u32)],
    algo: usize,
    seed: u64,
    ants: usize,
    tours: usize,
    ndw: u32,
    deadline_ms: u64,
    base: (u64, u64),
) -> Request {
    let mut spec = AlgoSpec::parse(ALGOS[algo % ALGOS.len()], seed).expect("known algo");
    if let AlgoSpec::Aco(p) | AlgoSpec::Portfolio(p) = &mut spec {
        p.n_ants = ants;
        p.n_tours = tours;
    }
    let nd_width = ndw as f64 / 4.0;
    let deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));
    match op % 10 {
        0 => Request::Ping,
        1 => Request::Stats,
        7 => Request::SessionOpen(Box::new(LayoutRequest {
            graph: graph_of(nodes, raw_edges),
            algo: spec.clone(),
            nd_width,
            deadline,
        })),
        8 => {
            let mut add: Vec<(u32, u32)> = raw_edges.to_vec();
            if add.is_empty() {
                add.push((0, 1));
            }
            Request::SessionDelta {
                delta: GraphDelta::new(add, vec![(seed as u32 % 7, seed as u32 % 11 + 1)]),
            }
        }
        9 => Request::SessionClose,
        4 => Request::CachePull {
            cursor: (seed % 2 == 0).then_some(Digest {
                hi: base.0,
                lo: base.1,
            }),
            limit: 1 + ants as u64 % 1024,
        },
        5 => Request::ShardJoin {
            addr: format!("10.0.0.{}:{}", seed % 250, 4000 + tours),
        },
        6 => Request::ShardDrain {
            addr: format!("10.0.0.{}:{}", seed % 250, 4000 + tours),
        },
        2 => Request::Layout(Box::new(LayoutRequest {
            graph: graph_of(nodes, raw_edges),
            algo: spec,
            nd_width,
            deadline,
        })),
        _ => {
            // The delta body is wire data, not a validated graph edit:
            // any pair list round-trips (the non-empty rule is enforced
            // at parse time, so keep at least one add).
            let mut add: Vec<(u32, u32)> = raw_edges.to_vec();
            if add.is_empty() {
                add.push((0, 1));
            }
            let remove = vec![(seed as u32 % 7, seed as u32 % 11 + 1)];
            Request::LayoutDelta(Box::new(DeltaRequest {
                base: Digest {
                    hi: base.0,
                    lo: base.1,
                },
                delta: GraphDelta::new(add, remove),
                algo: {
                    let mut spec =
                        AlgoSpec::parse(ALGOS[algo % ALGOS.len()], seed).expect("known algo");
                    if let AlgoSpec::Aco(p) | AlgoSpec::Portfolio(p) = &mut spec {
                        p.n_ants = ants;
                        p.n_tours = tours;
                    }
                    spec
                },
                nd_width,
                deadline,
            }))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn request_encode_parse_encode_is_identity(
        op in 0usize..10,
        nodes in 1usize..16,
        raw_edges in proptest::collection::vec((0u32..16, 0u32..16), 0..24),
        algo in 0usize..9,
        seed in 0u64..10_000,
        ants in 1usize..64,
        tours in 1usize..64,
        ndw in 0u32..40,
        deadline_ms in 0u64..5_000,
        base_hi in 0u64..u64::MAX,
        base_lo in 0u64..u64::MAX,
        id in 0u64..1_000_000,
    ) {
        let request = request_of(op, nodes, &raw_edges, algo, seed, ants, tours, ndw, deadline_ms, (base_hi, base_lo));

        // v1: flat form.
        let v1 = request.encode_v1();
        let reparsed = protocol::parse_request(&v1).expect("own encoding parses");
        prop_assert_eq!(&reparsed.encode_v1(), &v1, "v1 round trip");

        // v2: enveloped form, id echoed through the parse.
        let id_json = Json::Num(id as f64);
        let v2 = request.encode_v2(Some(&id_json));
        let (reparsed2, env) = protocol::parse_request_envelope(&v2).expect("v2 parses");
        prop_assert_eq!(env.version, 2);
        prop_assert_eq!(env.id.as_ref(), Some(&id_json));
        prop_assert!(!env.lenient_op, "v2 ops are always explicit");
        prop_assert_eq!(&reparsed2.encode_v2(env.id.as_ref()), &v2, "v2 round trip");

        // The envelope is framing, not identity: both forms decode to
        // the same cache digest for layout requests.
        if let (Request::Layout(a), Request::Layout(b)) = (&reparsed, &reparsed2) {
            prop_assert_eq!(a.digest(), b.digest());
        }
    }

    #[test]
    fn response_encode_parse_encode_is_identity(
        variant in 0usize..9,
        digest_hi in 0u64..u64::MAX,
        digest_lo in 0u64..u64::MAX,
        source in 0usize..4,
        height in 1u64..400,
        widthq in 1u32..400,
        dummies in 0u64..1_000,
        reversed in 0u64..40,
        flags in 0u32..8,
        micros in 0u64..10_000_000,
        layers in proptest::collection::vec(proptest::collection::vec(0u32..500, 0..6), 0..8),
        members in proptest::collection::vec((0usize..9, 1u32..400, 0u64..100_000, 0u32..4), 0..5),
        counters in proptest::collection::vec((0usize..8, 0u64..100_000), 0..8),
        kind in 0usize..11,
        suffix in 0u64..1_000,
        router in 0u32..2,
        v2_id in 0u64..1_000_000,
    ) {
        let response = match variant {
            0 => Response::Pong { router: router == 1 },
            1 => {
                const KEYS: [&str; 8] = [
                    "served", "computed", "coalesced", "rejected", "inflight",
                    "lenient_requests", "cache_hits", "cache_misses",
                ];
                let map: BTreeMap<String, Json> = counters
                    .iter()
                    .map(|&(k, v)| (KEYS[k].to_string(), Json::Num(v as f64)))
                    .collect();
                Response::Stats(map)
            }
            2 => {
                let kind = KINDS[kind % KINDS.len()];
                // A message carrying the kind's own wire prefix, so the
                // v1 prefix classification reproduces the kind exactly
                // and both wire forms round-trip losslessly.
                let prefix = match kind {
                    ErrorKind::BadJson => "bad JSON",
                    ErrorKind::BadVersion => "unsupported protocol version",
                    ErrorKind::MissingOp => "missing op",
                    ErrorKind::UnknownOp => "unknown op",
                    ErrorKind::InvalidRequest => "invalid request",
                    ErrorKind::InvalidGraph => "invalid graph",
                    ErrorKind::Overloaded => "overloaded",
                    ErrorKind::BaseNotFound => "base not found",
                    ErrorKind::Internal => "internal error",
                    ErrorKind::TooLarge => "request line exceeds",
                    ErrorKind::Unroutable => "no shards available",
                };
                Response::Error(WireError::new(kind, format!("{prefix}: detail {suffix}")))
            }
            4 => {
                // A transfer page: each entry is a small valid graph +
                // layering (from_json re-validates both on the way back).
                let entries: Vec<CacheEntry> = (0..counters.len().min(3) as u64)
                    .map(|i| CacheEntry {
                        digest: Digest { hi: digest_hi, lo: digest_lo.wrapping_add(i) },
                        nodes: 500,
                        edges: vec![(0, 1), (1, 2)],
                        layers: layers.clone(),
                        nd_width: widthq as f64 / 4.0,
                        reversed_edges: reversed,
                        seeded: flags & 1 != 0,
                        certified: flags & 2 != 0,
                        compute_micros: micros,
                    })
                    .collect();
                let next = entries.last().map(|e| e.digest);
                Response::CachePage(Box::new(CachePage {
                    entries,
                    next,
                    done: flags & 4 != 0,
                }))
            }
            5 => {
                const STATES: [&str; 4] = ["joining", "live", "draining", "removed"];
                let shards = counters
                    .iter()
                    .enumerate()
                    .map(|(i, &(s, _))| TopologyShard {
                        addr: format!("10.0.0.{i}:4800"),
                        state: STATES[s % STATES.len()].to_string(),
                    })
                    .collect();
                Response::Topology(Box::new(TopologyReply {
                    epoch: height,
                    moved: dummies,
                    shards,
                }))
            }
            6 => Response::SessionOpened {
                version: dummies,
                reply: Box::new(LayoutReply {
                    digest: format!("{:016x}{:016x}", digest_hi, digest_lo),
                    source: SOURCES[source % SOURCES.len()].to_string(),
                    height,
                    width: widthq as f64 / 4.0,
                    dummies,
                    reversed_edges: reversed,
                    stopped_early: flags & 1 != 0,
                    seeded: flags & 2 != 0,
                    certified: flags & 4 != 0,
                    winner: None,
                    members: Vec::new(),
                    compute_micros: micros,
                    layers: layers.clone(),
                }),
            },
            7 => Response::SessionUpdate(Box::new(protocol::SessionUpdate {
                version: height,
                digest: format!("{:016x}{:016x}", digest_hi, digest_lo),
                source: SOURCES[source % SOURCES.len()].to_string(),
                height,
                changed: layers
                    .iter()
                    .enumerate()
                    .map(|(i, ids)| (i as u32, ids.clone()))
                    .collect(),
                coalesced: dummies,
                refreshed: flags & 1 != 0,
                compute_micros: micros,
            })),
            8 => Response::SessionClosed { version: height },
            _ => {
                let members: Vec<MemberStats> = members
                    .iter()
                    .map(|&(solver, costq, micros, mflags)| MemberStats {
                        solver: ALGOS[solver % ALGOS.len()].to_string(),
                        cost: costq as f64 / 4.0,
                        micros,
                        stopped_early: mflags & 1 != 0,
                        certified: mflags & 2 != 0,
                    })
                    .collect();
                let winner = members.first().map(|m| m.solver.clone());
                Response::Layout(Box::new(LayoutReply {
                    digest: format!("{:016x}{:016x}", digest_hi, digest_lo),
                    source: SOURCES[source % SOURCES.len()].to_string(),
                    height,
                    width: widthq as f64 / 4.0,
                    dummies,
                    reversed_edges: reversed,
                    stopped_early: flags & 1 != 0,
                    seeded: flags & 2 != 0,
                    certified: flags & 4 != 0,
                    winner,
                    members,
                    compute_micros: micros,
                    layers,
                }))
            }
        };

        // v1 framing.
        let v1 = response.encode(&Envelope::v1());
        let (reparsed, env) = protocol::parse_response(&v1).expect("own encoding parses");
        prop_assert_eq!(env.version, 1);
        prop_assert_eq!(&reparsed.encode(&Envelope::v1()), &v1, "v1 round trip");

        // v2 framing with an echoed id (errors additionally carry the
        // structured kind, which must survive the round trip).
        let env2 = Envelope::v2(Some(Json::Num(v2_id as f64)));
        let v2 = response.encode(&env2);
        let (reparsed2, parsed_env) = protocol::parse_response(&v2).expect("v2 parses");
        prop_assert_eq!(parsed_env.version, 2);
        prop_assert_eq!(parsed_env.id.as_ref(), env2.id.as_ref());
        prop_assert_eq!(&reparsed2.encode(&env2), &v2, "v2 round trip");
        if let (Response::Error(a), Response::Error(b)) = (&response, &reparsed2) {
            prop_assert_eq!(a.kind, b.kind, "v2 carries the kind explicitly");
        }
    }
}
