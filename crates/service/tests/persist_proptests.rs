//! Property tests of the segment-log record codec: encode → append →
//! replay is the identity (modulo last-write-wins dedup) over arbitrary
//! valid entries, and damage — a torn tail or a flipped bit — never
//! panics and never costs a record written before the damage point.

use antlayer_service::digest::Digest;
use antlayer_service::persist::{decode_segment, encode_record, SegmentLog};
use antlayer_service::protocol::CacheEntry;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh per-case scratch directory (proptest runs many cases per
/// process; the OS temp dir is shared across processes).
fn scratch() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "antlayer-persist-prop-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Entries that pass `CacheEntry::from_json` validation (digest hex,
/// in-range edge endpoints and layer members, finite non-negative
/// `nd_width`) without needing to be semantically restorable — the
/// record codec is what is under test here, not the layering rules.
fn arb_entry() -> impl Strategy<Value = CacheEntry> {
    (1u64..50).prop_flat_map(|nodes| {
        let n = nodes as u32;
        (
            (0u64..u64::MAX, 0u64..u64::MAX),
            proptest::collection::vec((0..n, 0..n), 0..40),
            proptest::collection::vec(proptest::collection::vec(0..n, 0..8), 0..6),
            0.0f64..4.0,
            0u64..100,
            (0u8..2, 0u8..2),
            0u64..1_000_000,
        )
            .prop_map(
                move |(
                    (hi, lo),
                    edges,
                    layers,
                    nd_width,
                    reversed_edges,
                    (seeded, certified),
                    compute_micros,
                )| CacheEntry {
                    digest: Digest { hi, lo },
                    nodes,
                    edges,
                    layers,
                    nd_width,
                    reversed_edges,
                    seeded: seeded == 1,
                    certified: certified == 1,
                    compute_micros,
                },
            )
    })
}

/// What replay must return for a record sequence: one entry per digest
/// (the last written), in last-write order.
fn last_write_wins(entries: &[CacheEntry]) -> Vec<CacheEntry> {
    let last: std::collections::HashMap<u128, usize> = entries
        .iter()
        .enumerate()
        .map(|(i, e)| (e.digest.as_u128(), i))
        .collect();
    entries
        .iter()
        .enumerate()
        .filter(|(i, e)| last[&e.digest.as_u128()] == *i)
        .map(|(_, e)| e.clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // encode → append → replay returns exactly the appended entries,
    // deduplicated last-write-wins by digest.
    #[test]
    fn append_then_replay_is_the_identity(entries in proptest::collection::vec(arb_entry(), 1..16)) {
        let dir = scratch();
        let log = SegmentLog::open(&dir).expect("open");
        for e in &entries {
            log.append(e).expect("append");
        }
        let (replayed, report) = log.replay().expect("replay");
        prop_assert!(!report.damaged, "a clean log reports no damage");
        prop_assert_eq!(report.records, entries.len());
        prop_assert_eq!(replayed, last_write_wins(&entries));
        std::fs::remove_dir_all(&dir).ok();
    }

    // A segment cut at an arbitrary byte offset (a torn tail — the
    // crash-mid-append case) still yields every record that was fully
    // written before the cut, flags the damage, and never panics.
    #[test]
    fn torn_tail_recovers_every_complete_record(
        entries in proptest::collection::vec(arb_entry(), 1..8),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for e in &entries {
            bytes.extend_from_slice(&encode_record(e));
            boundaries.push(bytes.len());
        }
        let cut = (bytes.len() as f64 * cut_fraction) as usize;
        let complete = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
        let (decoded, clean) = decode_segment(&bytes[..cut]);
        prop_assert_eq!(decoded.len(), complete, "every record before the cut survives");
        for (d, e) in decoded.iter().zip(&entries) {
            prop_assert_eq!(d, e);
        }
        // A cut exactly on a record boundary is indistinguishable from a
        // clean close; anywhere else must be flagged.
        if cut != bytes.len() && !boundaries.contains(&cut) {
            prop_assert!(!clean, "a mid-record cut is reported as damage");
        }
    }

    // One flipped bit anywhere in the segment never panics the decoder
    // and never costs a record that ends before the damaged byte: the
    // checksum (which covers the length prefix too) stops replay at the
    // corrupt record instead of letting it poison the cache.
    #[test]
    fn bit_flip_never_panics_and_keeps_records_before_the_damage(
        entries in proptest::collection::vec(arb_entry(), 1..8),
        flip_fraction in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for e in &entries {
            bytes.extend_from_slice(&encode_record(e));
            boundaries.push(bytes.len());
        }
        let flip_at = ((bytes.len() - 1) as f64 * flip_fraction) as usize;
        bytes[flip_at] ^= 1 << bit;
        let before_damage = boundaries.iter().filter(|&&b| b > 0 && b <= flip_at).count();
        let (decoded, _) = decode_segment(&bytes);
        prop_assert!(
            decoded.len() >= before_damage,
            "all {before_damage} records ending before byte {flip_at} survive (got {})",
            decoded.len()
        );
        for (d, e) in decoded.iter().take(before_damage).zip(&entries) {
            prop_assert_eq!(d, e, "surviving records are bit-exact");
        }
    }
}
