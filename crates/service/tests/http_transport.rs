//! Edge-case tests of the hand-rolled HTTP/1.1 transport, driven with a
//! raw socket so the framing itself is what is under test: partial
//! reads, oversized `Content-Length`, pipelined keep-alive requests,
//! and malformed request lines.

use antlayer_service::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn spawn_http_server() -> (antlayer_service::ServerHandle, std::net::SocketAddr) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        http_addr: Some("127.0.0.1:0".into()),
        ..Default::default()
    })
    .unwrap();
    let handle = server.spawn().unwrap();
    let http = handle.http_addr().expect("http listener");
    (handle, http)
}

/// Reads one HTTP response off the stream; returns (status line, body).
fn read_response(reader: &mut BufReader<TcpStream>) -> (String, String) {
    let mut status = String::new();
    reader.read_line(&mut status).unwrap();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (
        status.trim_end().to_string(),
        String::from_utf8(body).unwrap().trim_end().to_string(),
    )
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

#[test]
fn post_v2_round_trip_and_healthz() {
    let (handle, http) = spawn_http_server();
    let (mut stream, mut reader) = connect(http);
    let body =
        r#"{"v":2,"op":"layout","id":1,"body":{"nodes":3,"edges":[[0,1],[1,2]],"algo":"lpl"}}"#;
    write!(
        stream,
        "POST /v2 HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let (status, reply) = read_response(&mut reader);
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert!(reply.contains("\"ok\":true"), "{reply}");
    assert!(reply.contains("\"v\":2"), "{reply}");
    assert!(reply.contains("\"id\":1"), "{reply}");

    // Keep-alive: the same connection serves a health probe next.
    write!(stream, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let (status, reply) = read_response(&mut reader);
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert!(reply.contains("\"op\":\"ping\""), "{reply}");
    handle.shutdown();
}

#[test]
fn partial_reads_assemble_one_request() {
    // The head and body arrive in five separate TCP segments; the
    // server must assemble them into one request.
    let (handle, http) = spawn_http_server();
    let (mut stream, mut reader) = connect(http);
    let body = r#"{"op":"ping"}"#;
    let message = format!(
        "POST /v2 HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let bytes = message.as_bytes();
    for chunk in bytes.chunks(bytes.len() / 5 + 1) {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }
    let (status, reply) = read_response(&mut reader);
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert!(reply.contains("\"op\":\"ping\""), "{reply}");
    handle.shutdown();
}

#[test]
fn pipelined_keepalive_requests_answer_in_order() {
    let (handle, http) = spawn_http_server();
    let (mut stream, mut reader) = connect(http);
    let ping = r#"{"op":"ping"}"#;
    let stats = r#"{"op":"stats"}"#;
    // Both requests written back to back before any reply is read.
    let mut pipelined = String::new();
    for body in [ping, stats] {
        pipelined.push_str(&format!(
            "POST /v2 HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ));
    }
    stream.write_all(pipelined.as_bytes()).unwrap();
    let (status1, reply1) = read_response(&mut reader);
    let (status2, reply2) = read_response(&mut reader);
    assert!(status1.starts_with("HTTP/1.1 200"), "{status1}");
    assert!(reply1.contains("\"op\":\"ping\""), "{reply1}");
    assert!(status2.starts_with("HTTP/1.1 200"), "{status2}");
    assert!(reply2.contains("\"op\":\"stats\""), "{reply2}");
    handle.shutdown();
}

#[test]
fn oversized_content_length_is_rejected_and_closes() {
    let (handle, http) = spawn_http_server();
    let (mut stream, mut reader) = connect(http);
    write!(
        stream,
        "POST /v2 HTTP/1.1\r\nHost: x\r\nContent-Length: 99999999999\r\n\r\n"
    )
    .unwrap();
    let (status, reply) = read_response(&mut reader);
    assert!(status.starts_with("HTTP/1.1 413"), "{status}");
    assert!(reply.contains("request body exceeds"), "{reply}");
    // The connection closes after a framing rejection.
    let mut rest = String::new();
    assert_eq!(reader.read_to_string(&mut rest).unwrap(), 0);
    handle.shutdown();
}

#[test]
fn missing_content_length_is_411() {
    let (handle, http) = spawn_http_server();
    let (mut stream, mut reader) = connect(http);
    write!(stream, "POST /v2 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let (status, _) = read_response(&mut reader);
    assert!(status.starts_with("HTTP/1.1 411"), "{status}");
    handle.shutdown();
}

#[test]
fn malformed_request_line_is_400() {
    let (handle, http) = spawn_http_server();
    let (mut stream, mut reader) = connect(http);
    write!(stream, "COMPLETE NONSENSE\r\n\r\n").unwrap();
    let (status, reply) = read_response(&mut reader);
    assert!(status.starts_with("HTTP/1.1 400"), "{status}");
    assert!(reply.contains("malformed"), "{reply}");
    handle.shutdown();
}

#[test]
fn unknown_route_is_404_known_route_wrong_method_is_405() {
    let (handle, http) = spawn_http_server();
    // An unrouted POST may carry a body the server never reads; the
    // connection must close after the 4xx (as PROTOCOL.md promises) so
    // the unread body cannot desync a keep-alive stream.
    let (mut stream, mut reader) = connect(http);
    let body = r#"{"op":"ping"}"#;
    write!(
        stream,
        "POST /nope HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let (status, _) = read_response(&mut reader);
    assert!(status.starts_with("HTTP/1.1 404"), "{status}");
    let mut rest = String::new();
    assert_eq!(
        reader.read_to_string(&mut rest).unwrap(),
        0,
        "routing errors close the connection"
    );

    let (mut stream, mut reader) = connect(http);
    write!(stream, "GET /v2 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let (status, _) = read_response(&mut reader);
    assert!(status.starts_with("HTTP/1.1 405"), "{status}");
    handle.shutdown();
}

#[test]
fn bad_json_body_is_200_with_protocol_error() {
    // Matching the TCP framing: a malformed payload is an application
    // error, the connection stays usable.
    let (handle, http) = spawn_http_server();
    let (mut stream, mut reader) = connect(http);
    let body = "this is not json";
    write!(
        stream,
        "POST /v2 HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let (status, reply) = read_response(&mut reader);
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert!(reply.contains("bad JSON"), "{reply}");
    // Still serving.
    let body = r#"{"op":"ping"}"#;
    write!(
        stream,
        "POST /v2 HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let (status, reply) = read_response(&mut reader);
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert!(reply.contains("\"ok\":true"), "{reply}");
    handle.shutdown();
}

#[test]
fn http_10_defaults_to_close() {
    let (handle, http) = spawn_http_server();
    let (mut stream, mut reader) = connect(http);
    let body = r#"{"op":"ping"}"#;
    write!(
        stream,
        "POST /v2 HTTP/1.0\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let (status, _) = read_response(&mut reader);
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    let mut rest = String::new();
    assert_eq!(
        reader.read_to_string(&mut rest).unwrap(),
        0,
        "HTTP/1.0 without keep-alive closes after the response"
    );
    handle.shutdown();
}
