//! Wire back-compat regression: every request/response example line in
//! `docs/PROTOCOL.md` parses — and keeps parsing to the same decoded
//! meaning — forever. Each case embeds the doc's literal text and
//! asserts it still appears in the doc, so neither the parser nor the
//! reference can drift without this test going red.

use antlayer_service::protocol::{
    self, parse, parse_request, parse_response, ErrorKind, Json, Request, Response,
};
use std::time::Duration;

const DOC: &str = include_str!("../../../docs/PROTOCOL.md");

/// Asserts the fragment is literally in the doc (so the embedded copies
/// below cannot silently diverge from the reference).
fn in_doc(fragment: &str) {
    assert!(
        DOC.contains(fragment),
        "docs/PROTOCOL.md no longer contains the tested example:\n{fragment}"
    );
}

/// Parse → encode → parse is value-identity for a doc line (doc lines
/// are hand-wrapped, so string identity is up to whitespace — the
/// canonical re-encoding must be stable instead).
fn json_round_trips(line: &str) {
    let v = parse(line).expect("doc example parses");
    let re = parse(&v.encode()).expect("canonical encoding parses");
    assert_eq!(re, v, "round trip changed the value of: {line}");
}

#[test]
fn v1_layout_request_examples_parse_unchanged() {
    let full = "{\"op\":\"layout\",\"algo\":\"aco\",\"nodes\":6,\"edges\":[[0,1],[0,2],[1,3],[2,3],[3,4],[3,5]],\n \"nd_width\":1.0,\"seed\":7,\"ants\":10,\"tours\":10,\"deadline_ms\":50}";
    for fragment in full.split('\n') {
        in_doc(fragment.trim_end());
    }
    json_round_trips(full);
    let Request::Layout(req) = parse_request(full).unwrap() else {
        panic!("expected layout");
    };
    assert_eq!(req.graph.node_count(), 6);
    assert_eq!(req.graph.edge_count(), 6);
    assert_eq!(req.nd_width, 1.0);
    assert_eq!(req.deadline, Some(Duration::from_millis(50)));

    // The netcat worked example (no optional fields).
    let bare =
        r#"{"op":"layout","algo":"aco","nodes":6,"edges":[[0,1],[0,2],[1,3],[2,3],[3,4],[3,5]]}"#;
    in_doc(bare);
    json_round_trips(bare);
    let Request::Layout(req) = parse_request(bare).unwrap() else {
        panic!("expected layout");
    };
    // The typed encoder reproduces an equivalent request: same digest.
    let reparsed = parse_request(&Request::Layout(req.clone()).encode_v1()).unwrap();
    let Request::Layout(again) = reparsed else {
        panic!("expected layout");
    };
    assert_eq!(req.digest(), again.digest());
}

#[test]
fn v1_layout_delta_examples_parse_unchanged() {
    // The doc writes the base digest as a placeholder; the concrete
    // eviction-fallback example is fully literal.
    let evict = r#"{"op":"layout_delta","base":"ffffffffffffffffffffffffffffffff","add":[[0,5]]}"#;
    in_doc(evict);
    json_round_trips(evict);
    let Request::LayoutDelta(req) = parse_request(evict).unwrap() else {
        panic!("expected layout_delta");
    };
    assert_eq!(req.base.to_string(), "ffffffffffffffffffffffffffffffff");
    assert_eq!(req.delta.added, vec![(0, 5)]);
    assert!(req.delta.removed.is_empty());

    // The header example, with the placeholder digest made concrete.
    let digest = "93fd580123456789abcdef0123456789";
    let line = format!(
        "{{\"op\":\"layout_delta\",\"base\":\"{digest}\",\"add\":[[4,5]],\"remove\":[[3,5]],\n \"algo\":\"aco\",\"seed\":7,\"ants\":10,\"tours\":10,\"deadline_ms\":50}}"
    );
    json_round_trips(&line);
    let Request::LayoutDelta(req) = parse_request(&line).unwrap() else {
        panic!("expected layout_delta");
    };
    assert_eq!(req.base.to_string(), digest);
    assert_eq!(req.delta.added, vec![(4, 5)]);
    assert_eq!(req.delta.removed, vec![(3, 5)]);
}

#[test]
fn v1_ping_and_stats_examples_parse_unchanged() {
    for line in [r#"{"op":"ping"}"#, r#"{"op":"stats"}"#] {
        in_doc(line);
        json_round_trips(line);
        assert!(matches!(
            parse_request(line).unwrap(),
            Request::Ping | Request::Stats
        ));
    }
    in_doc(r#"{"ok":true,"op":"ping"}"#);
    let (resp, env) = parse_response(r#"{"ok":true,"op":"ping"}"#).unwrap();
    assert_eq!(resp, Response::Pong { router: false });
    assert_eq!(env.version, 1);
    // The encoder reproduces the doc's exact bytes.
    assert_eq!(
        resp.encode(&protocol::Envelope::v1()),
        r#"{"ok":true,"op":"ping"}"#
    );
}

#[test]
fn v1_stats_response_example_parses_unchanged() {
    let line = "{\"cache_evictions\":0,\"cache_hits\":1,\"cache_insertions\":1,\"cache_misses\":1,\n \"coalesced\":0,\"computed\":1,\"inflight\":0,\"lenient_requests\":0,\"ok\":true,\n \"op\":\"stats\",\"rejected\":0,\"served\":2}";
    for fragment in line.split('\n') {
        in_doc(fragment.trim_end());
    }
    json_round_trips(line);
    let (resp, _) = parse_response(line).unwrap();
    let Response::Stats(counters) = resp else {
        panic!("expected stats");
    };
    assert_eq!(counters.get("served"), Some(&Json::Num(2.0)));
    assert_eq!(counters.get("lenient_requests"), Some(&Json::Num(0.0)));
}

#[test]
fn v1_error_response_example_parses_unchanged() {
    let line = r#"{"error":"base not found: ffffffffffffffffffffffffffffffff is not cached; resubmit a full layout","ok":false}"#;
    in_doc(line);
    json_round_trips(line);
    let (resp, env) = parse_response(line).unwrap();
    let Response::Error(e) = resp else {
        panic!("expected an error");
    };
    assert_eq!(e.kind, ErrorKind::BaseNotFound);
    // v1 errors re-encode byte-identically (no kind member leaks in).
    assert_eq!(Response::Error(e).encode(&env), line);
}

#[test]
fn v2_envelope_examples_parse_as_documented() {
    let layout = r#"{"v":2,"op":"layout","id":7,"body":{"nodes":3,"edges":[[0,1],[1,2]]}}"#;
    in_doc(layout);
    let (req, env) = protocol::parse_request_envelope(layout).unwrap();
    assert!(matches!(req, Request::Layout(_)));
    assert_eq!((env.version, env.id), (2, Some(Json::Num(7.0))));

    let ping = r#"{"v":2,"op":"ping","id":41}"#;
    in_doc(ping);
    let (req, env) = protocol::parse_request_envelope(ping).unwrap();
    assert!(matches!(req, Request::Ping));
    let pong = Response::Pong { router: false }.encode(&env);
    in_doc(&pong);
    assert_eq!(pong, r#"{"id":41,"ok":true,"op":"ping","v":2}"#);

    let missing = r#"{"v":2,"id":42,"body":{"nodes":2}}"#;
    in_doc(missing);
    let (err, env) = protocol::parse_request_envelope(missing).unwrap_err();
    assert_eq!(err.kind, ErrorKind::MissingOp);
    assert_eq!(env.id, Some(Json::Num(42.0)));
    let encoded = Response::Error(err).encode(&env);
    in_doc(&encoded);
}

#[test]
fn v2_session_examples_parse_as_documented() {
    // The three live-session request ops.
    let open = r#"{"v":2,"op":"session_open","id":7,"body":{"algo":"aco","seed":7,"nodes":6,"edges":[[0,1],[0,2],[1,3],[2,3],[3,4],[3,5]]}}"#;
    in_doc(open);
    json_round_trips(open);
    let (req, env) = protocol::parse_request_envelope(open).unwrap();
    let Request::SessionOpen(req) = req else {
        panic!("expected session_open");
    };
    assert_eq!(req.graph.node_count(), 6);
    assert_eq!((env.version, env.id), (2, Some(Json::Num(7.0))));

    let delta = r#"{"v":2,"op":"session_delta","id":7,"body":{"add":[[4,5]],"remove":[[3,5]]}}"#;
    in_doc(delta);
    json_round_trips(delta);
    let (req, _) = protocol::parse_request_envelope(delta).unwrap();
    let Request::SessionDelta { delta } = req else {
        panic!("expected session_delta");
    };
    assert_eq!(delta.added, vec![(4, 5)]);
    assert_eq!(delta.removed, vec![(3, 5)]);

    let close = r#"{"v":2,"op":"session_close","id":7,"body":{}}"#;
    in_doc(close);
    json_round_trips(close);
    let (req, _) = protocol::parse_request_envelope(close).unwrap();
    assert!(matches!(req, Request::SessionClose));

    // The version-0 open reply (a full layout re-tagged).
    let opened = r#"{"certified":false,"compute_micros":8423,"digest":"93fd580123456789abcdef0123456789","dummies":0,"height":4,"id":7,"layers":[[4,5],[3],[1,2],[0]],"ok":true,"op":"session_open","reversed_edges":0,"seeded":false,"source":"computed","stopped_early":false,"v":2,"version":0,"width":2}"#;
    in_doc(opened);
    json_round_trips(opened);
    let (resp, env) = parse_response(opened).unwrap();
    let Response::SessionOpened { version: 0, reply } = resp else {
        panic!("expected version-0 session_open reply");
    };
    assert_eq!(reply.height, 4);
    assert_eq!(env.id, Some(Json::Num(7.0)));

    // A pushed update frame: incremental layers, monotonic version.
    let update = r#"{"changed":[[0,[4]],[1,[3,5]]],"coalesced":0,"compute_micros":512,"digest":"41c07a0123456789abcdef0123456789","height":4,"id":7,"ok":true,"op":"session_update","refreshed":false,"source":"warm","v":2,"version":1}"#;
    in_doc(update);
    json_round_trips(update);
    let (resp, _) = parse_response(update).unwrap();
    let Response::SessionUpdate(update) = resp else {
        panic!("expected session_update");
    };
    assert_eq!(update.version, 1);
    assert_eq!(update.changed, vec![(0, vec![4]), (1, vec![3, 5])]);
    assert_eq!(update.source, "warm");

    // The close ack names the last pushed version.
    let ack = r#"{"id":7,"ok":true,"op":"session_close","v":2,"version":1}"#;
    in_doc(ack);
    json_round_trips(ack);
    let (resp, _) = parse_response(ack).unwrap();
    assert!(matches!(resp, Response::SessionClosed { version: 1 }));

    // The slow-consumer eviction frame keeps the structured kind.
    let evicted = r#"{"error":"session evicted: 32 frames queued and the connection is not draining; re-open to resume","id":7,"kind":"overloaded","ok":false,"v":2}"#;
    in_doc(evicted);
    json_round_trips(evicted);
    let (resp, env) = parse_response(evicted).unwrap();
    let Response::Error(e) = resp else {
        panic!("expected error frame");
    };
    assert_eq!(e.kind, ErrorKind::Overloaded);
    assert_eq!(env.id, Some(Json::Num(7.0)));
}
