//! End-to-end tests of the serving subsystem: cache determinism, digest
//! collision sanity, the TCP protocol round-trip, and deadline-bounded
//! (anytime) computation.

use antlayer_aco::AcoParams;
use antlayer_graph::{generate, DiGraph};
use antlayer_service::protocol::{parse, Json};
use antlayer_service::{
    AlgoSpec, LayoutRequest, Scheduler, SchedulerConfig, Server, ServerConfig, Source,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn graph(seed: u64, n: usize, m: usize) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    generate::random_dag_with_edges(n, m, &mut rng).into_graph()
}

fn quick_aco(seed: u64) -> AlgoSpec {
    AlgoSpec::Aco(AcoParams::default().with_colony(4, 4).with_seed(seed))
}

#[test]
fn cache_determinism_hit_is_bit_identical_and_skips_compute() {
    let scheduler = Scheduler::new(SchedulerConfig {
        threads: 2,
        ..Default::default()
    });
    let request = LayoutRequest::new(graph(1, 30, 45), quick_aco(1));
    let first = scheduler.submit(request.clone()).unwrap().wait().unwrap();
    assert_eq!(first.source, Source::Computed);

    for _ in 0..3 {
        let again = scheduler.submit(request.clone()).unwrap().wait().unwrap();
        assert_eq!(again.source, Source::CacheHit, "identical digest must hit");
        // Bit-identical: same Arc, same layering, same metrics.
        assert!(std::sync::Arc::ptr_eq(&first.result, &again.result));
        assert_eq!(first.result.layering, again.result.layering);
    }
    let counters = scheduler.counters();
    assert_eq!(counters.computed, 1, "hits must not recompute");
    assert_eq!(counters.cache.hits, 3);
}

#[test]
fn fresh_schedulers_compute_identical_bits_for_identical_requests() {
    // Determinism across processes (approximated by fresh schedulers):
    // the cache key identifies the result bits.
    let make = || {
        Scheduler::new(SchedulerConfig {
            threads: 3,
            ..Default::default()
        })
        .submit(LayoutRequest::new(graph(7, 25, 40), quick_aco(7)))
        .unwrap()
        .wait()
        .unwrap()
    };
    let (a, b) = (make(), make());
    assert_eq!(a.result.digest, b.result.digest);
    assert_eq!(a.result.layering, b.result.layering);
    assert_eq!(a.result.metrics.height, b.result.metrics.height);
}

#[test]
fn digest_collision_sanity_over_many_small_graphs() {
    // Distinct small graphs (and distinct params on one graph) must get
    // distinct digests.
    // The small generators do repeat graphs across seeds, so compare the
    // digest count against the count of distinct canonical inputs, not
    // the request count: they must match exactly (no collisions, no
    // spurious splits).
    let mut digests = HashSet::new();
    let mut canonical_inputs = HashSet::new();
    let mut record = |req: &LayoutRequest, aco_seed: u64| {
        let mut edges: Vec<(u32, u32)> = req
            .graph
            .edges()
            .map(|(u, v)| (u.index() as u32, v.index() as u32))
            .collect();
        edges.sort_unstable();
        canonical_inputs.insert((req.graph.node_count(), edges, aco_seed));
        digests.insert(req.digest().as_u128());
    };
    for seed in 0..60u64 {
        for (n, m) in [(4, 4), (6, 8), (9, 14)] {
            record(&LayoutRequest::new(graph(seed, n, m), quick_aco(1)), 1);
        }
    }
    for seed in 0..20u64 {
        record(&LayoutRequest::new(graph(1, 6, 8), quick_aco(seed)), seed);
    }
    assert_eq!(
        digests.len(),
        canonical_inputs.len(),
        "digest count must equal distinct canonical input count"
    );
    assert!(canonical_inputs.len() > 100, "fixture too degenerate");
}

#[test]
fn protocol_round_trip_over_loopback_socket() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        scheduler: SchedulerConfig {
            threads: 2,
            ..Default::default()
        },
        ..Default::default()
    })
    .unwrap();
    let handle = server.spawn().unwrap();

    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut send = |line: &str| -> Json {
        let mut s = stream.try_clone().unwrap();
        writeln!(s, "{line}").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        parse(reply.trim_end()).unwrap()
    };

    // Liveness.
    let pong = send(r#"{"op":"ping"}"#);
    assert_eq!(pong.get("ok"), Some(&Json::Bool(true)));

    // Layout, then the identical request again: second must be a cache
    // hit with identical layers (the end-to-end demo of the issue).
    let layout = r#"{"op":"layout","algo":"aco","nodes":6,"edges":[[0,1],[0,2],[1,3],[2,3],[3,4],[3,5]],"ants":4,"tours":4,"seed":1}"#;
    let first = send(layout);
    assert_eq!(first.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(first.get("source").and_then(Json::as_str), Some("computed"));
    assert!(first.get("height").and_then(Json::as_u64).unwrap() >= 4);
    let second = send(layout);
    assert_eq!(second.get("source").and_then(Json::as_str), Some("hit"));
    assert_eq!(first.get("layers"), second.get("layers"));
    assert_eq!(first.get("digest"), second.get("digest"));

    // The hit is visible in the server's stats counters.
    let stats = send(r#"{"op":"stats"}"#);
    assert_eq!(stats.get("cache_hits").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("computed").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("served").and_then(Json::as_u64), Some(2));

    // Malformed input gets a structured error, connection stays usable.
    let err = send("garbage");
    assert_eq!(err.get("ok"), Some(&Json::Bool(false)));
    let pong = send(r#"{"op":"ping"}"#);
    assert_eq!(pong.get("ok"), Some(&Json::Bool(true)));

    handle.shutdown();
}

#[test]
fn concurrent_clients_share_one_computation() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        scheduler: SchedulerConfig {
            threads: 2,
            ..Default::default()
        },
        ..Default::default()
    })
    .unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();

    let layout = r#"{"op":"layout","algo":"aco","nodes":20,"edges":[[0,1],[1,2],[2,3],[3,4],[4,5],[5,6],[6,7],[7,8],[8,9],[9,10],[10,11],[11,12],[12,13],[13,14],[14,15],[15,16],[16,17],[17,18],[18,19]],"ants":6,"tours":10,"seed":3}"#;
    let workers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut s = stream.try_clone().unwrap();
                writeln!(s, "{layout}").unwrap();
                let mut reply = String::new();
                reader.read_line(&mut reply).unwrap();
                parse(reply.trim_end()).unwrap()
            })
        })
        .collect();
    let replies: Vec<Json> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    for r in &replies {
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(r.get("layers"), replies[0].get("layers"));
    }

    // Exactly one computation happened; the rest were coalesced or hits.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut s = stream.try_clone().unwrap();
    writeln!(s, "{{\"op\":\"stats\"}}").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    let stats = parse(reply.trim_end()).unwrap();
    assert_eq!(stats.get("computed").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("served").and_then(Json::as_u64), Some(4));

    handle.shutdown();
}

#[test]
fn zero_deadline_layout_is_still_valid_and_uncached() {
    let scheduler = Scheduler::new(SchedulerConfig {
        threads: 1,
        ..Default::default()
    });
    let mut request = LayoutRequest::new(
        graph(11, 40, 60),
        AlgoSpec::Aco(AcoParams::default().with_seed(11)),
    );
    request.deadline = Some(Duration::ZERO);
    let response = scheduler.submit(request.clone()).unwrap().wait().unwrap();
    assert!(response.result.stopped_early);
    // A valid layering over the oriented DAG: every node is placed.
    let placed: usize = response.result.layering.layers().iter().map(Vec::len).sum();
    assert_eq!(placed, 40);
    assert!(response.result.metrics.height >= 1);

    // And over the wire the flag is visible too.
    let again = scheduler.submit(request).unwrap().wait().unwrap();
    assert_eq!(
        again.source,
        Source::Computed,
        "truncated results must not serve future requests from cache"
    );
}

#[test]
fn deadline_truncation_degrades_gracefully_not_catastrophically() {
    // A tiny (but nonzero) budget may complete 0..n_tours tours; whatever
    // happens, the result validates and reports its provenance honestly.
    let scheduler = Scheduler::new(SchedulerConfig {
        threads: 1,
        ..Default::default()
    });
    let mut request = LayoutRequest::new(
        graph(13, 60, 90),
        AlgoSpec::Aco(AcoParams::default().with_colony(10, 200).with_seed(13)),
    );
    request.deadline = Some(Duration::from_millis(30));
    let response = scheduler.submit(request).unwrap().wait().unwrap();
    let placed: usize = response.result.layering.layers().iter().map(Vec::len).sum();
    assert_eq!(placed, 60);
    // 200 tours of a 10-ant colony on n=60 takes far longer than 30 ms
    // in this environment, so the budget must have bitten.
    assert!(response.result.stopped_early);
    assert!(response.result.compute_micros < 5_000_000);
}

#[test]
fn delta_inverse_restores_the_canonical_digest() {
    // The edit protocol's identity invariant: applying a delta and then
    // its inverse restores not just the graph but its canonical digest,
    // so an undo in the editor lands back on the same cache entry.
    use antlayer_graph::GraphDelta;
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..25 {
        let g = {
            let n = rng.gen_range(5..40usize);
            let m = rng.gen_range(0..2 * n);
            let mut inner = StdRng::seed_from_u64(rng.gen_range(0..u64::MAX));
            generate::random_dag_with_edges(n, m, &mut inner).into_graph()
        };
        // Random applicable delta: remove up to 2 existing edges, add up
        // to 2 fresh pairs.
        let edges: Vec<(u32, u32)> = g
            .edges()
            .map(|(u, v)| (u.index() as u32, v.index() as u32))
            .collect();
        let mut removed = Vec::new();
        for _ in 0..rng.gen_range(0..=2usize).min(edges.len()) {
            let e = edges[rng.gen_range(0..edges.len())];
            if !removed.contains(&e) {
                removed.push(e);
            }
        }
        let mut added = Vec::new();
        for _ in 0..rng.gen_range(0..=2usize) {
            let u = rng.gen_range(0..g.node_count() as u32);
            let v = rng.gen_range(0..g.node_count() as u32);
            if u != v
                && !g.has_edge(u.into(), v.into())
                && !added.contains(&(u, v))
                && !removed.contains(&(u, v))
            {
                added.push((u, v));
            }
        }
        let delta = GraphDelta::new(added, removed);
        let request =
            |g: &antlayer_graph::DiGraph| LayoutRequest::new(g.clone(), quick_aco(1)).digest();
        let original = request(&g);
        let edited = delta.apply(&g).unwrap();
        let restored = delta.inverse().apply(&edited).unwrap();
        assert_eq!(request(&restored), original, "digest must round-trip");
        if !delta.is_empty() {
            assert_ne!(request(&edited), original, "edit must change identity");
        }
    }
}

#[test]
fn delta_chain_of_five_edits_never_caches_truncated_layerings() {
    // The interactive pattern: each edit is previewed under a hard
    // deadline (anytime, truncated) and then committed unbounded. The
    // previews must never leak into the cache — a commit right after a
    // preview of the same edit still computes (warm), and the final
    // full-layout lookup hits the committed, untruncated entry.
    use antlayer_graph::GraphDelta;
    let scheduler = Scheduler::new(SchedulerConfig {
        threads: 2,
        ..Default::default()
    });
    let mut g = graph(21, 40, 60);
    let base = scheduler
        .submit(LayoutRequest::new(g.clone(), quick_aco(21)))
        .unwrap()
        .wait()
        .unwrap();
    let mut digest = base.result.digest;
    for step in 0..5 {
        let (u, v) = g.edges().nth(step).unwrap();
        let delta = GraphDelta::new(vec![], vec![(u.index() as u32, v.index() as u32)]);

        // Preview: zero budget, truncated, served but never cached.
        let mut preview = antlayer_service::DeltaRequest::new(digest, delta.clone(), quick_aco(21));
        preview.deadline = Some(Duration::ZERO);
        let p = scheduler.submit_delta(preview).unwrap().wait().unwrap();
        assert!(p.result.stopped_early, "edit {step}: preview must truncate");
        let placed: usize = p.result.layering.layers().iter().map(Vec::len).sum();
        assert_eq!(placed, 40, "edit {step}: truncated preview still valid");

        // Commit: unbounded. If the preview had been cached this would
        // be a CacheHit serving a truncated result; it must compute.
        let commit = antlayer_service::DeltaRequest::new(digest, delta.clone(), quick_aco(21));
        let c = scheduler.submit_delta(commit).unwrap().wait().unwrap();
        assert_eq!(c.source, Source::Warm, "edit {step}: commit computes warm");
        assert!(!c.result.stopped_early, "edit {step}: commit is complete");
        assert!(c.result.seeded);

        g = delta.apply(&g).unwrap();
        digest = c.result.digest;
    }
    // The tip of the chain is cached, complete, and identical to a full
    // request for the final graph.
    let tip = scheduler
        .submit(LayoutRequest::new(g, quick_aco(21)))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(tip.source, Source::CacheHit);
    assert_eq!(tip.result.digest, digest);
    assert!(!tip.result.stopped_early);
}

#[test]
fn layout_delta_round_trips_over_loopback_socket() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        scheduler: SchedulerConfig {
            threads: 2,
            ..Default::default()
        },
        ..Default::default()
    })
    .unwrap();
    let handle = server.spawn().unwrap();

    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut send = |line: String| -> Json {
        let mut s = stream.try_clone().unwrap();
        writeln!(s, "{line}").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        parse(reply.trim_end()).unwrap()
    };

    let layout = r#"{"op":"layout","algo":"aco","nodes":6,"edges":[[0,1],[0,2],[1,3],[2,3],[3,4],[3,5]],"ants":4,"tours":4,"seed":1}"#;
    let first = send(layout.to_string());
    assert_eq!(first.get("ok"), Some(&Json::Bool(true)));
    let digest = first
        .get("digest")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();

    // Edit: drop (3,5), connect 4 -> 5 instead.
    let delta = format!(
        r#"{{"op":"layout_delta","base":"{digest}","add":[[4,5]],"remove":[[3,5]],"algo":"aco","ants":4,"tours":4,"seed":1}}"#
    );
    let warm = send(delta.clone());
    assert_eq!(warm.get("ok"), Some(&Json::Bool(true)), "{}", warm.encode());
    assert_eq!(warm.get("source").and_then(Json::as_str), Some("warm"));
    assert_eq!(warm.get("seeded"), Some(&Json::Bool(true)));
    assert_ne!(
        warm.get("digest").and_then(Json::as_str),
        Some(digest.as_str())
    );

    // The same edit again: now a plain cache hit under the new digest.
    let again = send(delta);
    assert_eq!(again.get("source").and_then(Json::as_str), Some("hit"));
    assert_eq!(again.get("layers"), warm.get("layers"));

    // An unknown base yields the structured fallback error.
    let missing = send(format!(
        r#"{{"op":"layout_delta","base":"{}","add":[[0,5]]}}"#,
        "f".repeat(32)
    ));
    assert_eq!(missing.get("ok"), Some(&Json::Bool(false)));
    assert!(missing
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("base not found"));

    handle.shutdown();
}
