//! End-to-end tests of the live session listener: frame assembly
//! across partial writes, slow-consumer eviction under a bounded
//! outbound queue, base-eviction error shape (the post-drain path),
//! and burst coalescing without version loss.
//!
//! These speak raw newline-delimited JSON over loopback sockets (the
//! service crate has no dependency on the typed client) and use the
//! protocol module's own encoders, so the bytes on the wire are exactly
//! what a conforming client would send.

use antlayer_graph::{DiGraph, GraphDelta};
use antlayer_service::protocol::{self, parse, ErrorKind, Json, Request, Response};
use antlayer_service::scheduler::LayoutRequest;
use antlayer_service::{AlgoSpec, LiveTuning, SchedulerConfig, Server, ServerConfig, ServerHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A path graph `0 → 1 → … → (len-1)` inside `nodes` total nodes; the
/// spare nodes above the chain are edit headroom.
fn chain(nodes: usize, len: usize) -> DiGraph {
    let edges: Vec<(u32, u32)> = (0..len as u32 - 1).map(|i| (i, i + 1)).collect();
    DiGraph::from_edges(nodes, &edges).expect("chain is a DAG")
}

fn lpl() -> AlgoSpec {
    AlgoSpec::parse("lpl", 1).expect("known algo")
}

fn open_line(id: u64, graph: DiGraph) -> String {
    Request::SessionOpen(Box::new(LayoutRequest {
        graph,
        algo: lpl(),
        nd_width: 1.0,
        deadline: None,
    }))
    .encode_v2(Some(&Json::Num(id as f64)))
}

fn delta_line(id: u64, add: &[(u32, u32)], remove: &[(u32, u32)]) -> String {
    Request::SessionDelta {
        delta: GraphDelta::new(add.to_vec(), remove.to_vec()),
    }
    .encode_v2(Some(&Json::Num(id as f64)))
}

fn close_line(id: u64) -> String {
    Request::SessionClose.encode_v2(Some(&Json::Num(id as f64)))
}

fn spawn(config: ServerConfig) -> ServerHandle {
    Server::bind(config).unwrap().spawn().unwrap()
}

fn live_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        live_addr: Some("127.0.0.1:0".into()),
        scheduler: SchedulerConfig {
            threads: 2,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Connects to the handle's live listener with a generous read
/// timeout, returning the write half and a buffered read half.
fn connect_live(handle: &ServerHandle) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(handle.live_addr().expect("live listener bound")).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn read_frame(reader: &mut BufReader<TcpStream>) -> Response {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(!line.is_empty(), "peer closed the connection");
    let (response, _env) = protocol::parse_response(line.trim_end()).expect("frame parses");
    response
}

#[test]
fn frames_assemble_across_split_writes_and_split_reads() {
    let handle = spawn(live_config());
    let (mut stream, mut reader) = connect_live(&handle);

    // The open request dribbles in 7-byte chunks: the reactor must
    // assemble a frame across many readiness events.
    let line = format!("{}\n", open_line(1, chain(8, 6)));
    for piece in line.as_bytes().chunks(7) {
        stream.write_all(piece).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    match read_frame(&mut reader) {
        Response::SessionOpened { version, reply } => {
            assert_eq!(version, 0);
            assert_eq!(reply.height, 6);
        }
        other => panic!("expected SessionOpened, got {}", other.encode(&protocol::Envelope::v1())),
    }

    // A delta one byte at a time — the worst-case partial frame.
    let line = format!("{}\n", delta_line(1, &[(5, 6)], &[]));
    for byte in line.as_bytes() {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        stream.flush().unwrap();
    }
    match read_frame(&mut reader) {
        Response::SessionUpdate(update) => {
            assert_eq!(update.version, 1);
            assert_eq!(update.height, 7, "chain grew by one layer");
        }
        other => panic!("expected SessionUpdate, got {}", other.encode(&protocol::Envelope::v1())),
    }

    // The opposite shape: two frames land in one write; both must be
    // handled, in order (the second edit waits out the first's solve as
    // a pending delta).
    let combined = format!(
        "{}\n{}\n",
        delta_line(1, &[(6, 7)], &[]),
        delta_line(1, &[(5, 7)], &[])
    );
    stream.write_all(combined.as_bytes()).unwrap();
    match read_frame(&mut reader) {
        Response::SessionUpdate(update) => assert_eq!(update.version, 2),
        other => panic!("expected SessionUpdate, got {}", other.encode(&protocol::Envelope::v1())),
    }
    match read_frame(&mut reader) {
        Response::SessionUpdate(update) => assert_eq!(update.version, 3),
        other => panic!("expected SessionUpdate, got {}", other.encode(&protocol::Envelope::v1())),
    }

    // Close acknowledges the last pushed version.
    writeln!(stream, "{}", close_line(1)).unwrap();
    match read_frame(&mut reader) {
        Response::SessionClosed { version } => assert_eq!(version, 3),
        other => panic!("expected SessionClosed, got {}", other.encode(&protocol::Envelope::v1())),
    }
}

#[test]
fn burst_deltas_coalesce_without_version_loss() {
    let handle = spawn(live_config());
    let (mut stream, mut reader) = connect_live(&handle);

    writeln!(stream, "{}", open_line(9, chain(16, 6))).unwrap();
    match read_frame(&mut reader) {
        Response::SessionOpened { version: 0, .. } => {}
        other => panic!("expected SessionOpened, got {}", other.encode(&protocol::Envelope::v1())),
    }

    // Six edits back to back, faster than the solves: some fold into
    // pending deltas. Whatever the folding, the pushes must account
    // for every edit exactly once and versions must be gapless.
    const EDITS: u64 = 6;
    for j in 0..EDITS as u32 {
        writeln!(stream, "{}", delta_line(9, &[(5, 6 + j)], &[])).unwrap();
    }
    let mut accounted = 0u64;
    let mut next_version = 1u64;
    while accounted < EDITS {
        match read_frame(&mut reader) {
            Response::SessionUpdate(update) => {
                assert_eq!(update.version, next_version, "versions must be gapless");
                next_version += 1;
                accounted += 1 + update.coalesced;
            }
            other => panic!("expected SessionUpdate, got {}", other.encode(&protocol::Envelope::v1())),
        }
    }
    assert_eq!(accounted, EDITS, "coalesced counts must sum to the edits");

    writeln!(stream, "{}", close_line(9)).unwrap();
    match read_frame(&mut reader) {
        Response::SessionClosed { version } => assert_eq!(version, next_version - 1),
        other => panic!("expected SessionClosed, got {}", other.encode(&protocol::Envelope::v1())),
    }
}

#[test]
fn slow_consumer_is_evicted_with_overloaded_frame() {
    // A tiny kernel send buffer plus a small queue cap make the
    // eviction reachable: without them loopback absorbs megabytes
    // before the first WouldBlock and the queue never fills.
    let handle = spawn(ServerConfig {
        live_tuning: LiveTuning {
            queue_cap: 4,
            send_buffer: Some(4096),
        },
        ..live_config()
    });
    let (mut stream, mut reader) = connect_live(&handle);

    // A long chain over nodes 500..2500, with spare nodes at both ends.
    // Each edit extends the chain at the head AND the tail, so every
    // node's layer index shifts whichever end the layering anchors to:
    // each push frame lists ~2000 changed layers (tens of KB). Bursts
    // coalesce while a re-solve is in flight, so the edit stream keeps
    // going until the pushed frames outrun the kernel's absorption and
    // the bounded queue reports the eviction.
    const HEAD: u32 = 500;
    const TAIL: u32 = 2500;
    let edges: Vec<(u32, u32)> = (HEAD..TAIL - 1).map(|i| (i, i + 1)).collect();
    let graph = DiGraph::from_edges(3000, &edges).unwrap();
    writeln!(stream, "{}", open_line(5, graph)).unwrap();
    match read_frame(&mut reader) {
        Response::SessionOpened { version: 0, .. } => {}
        other => panic!("expected SessionOpened, got {}", other.encode(&protocol::Envelope::v1())),
    }

    // Extend both ends once per tick and never read a push, until the
    // stats counter shows the server gave up on us.
    let mut evicted = 0;
    for j in 0..(HEAD - 1) {
        let add = [(HEAD - 1 - j, HEAD - j), (TAIL - 1 + j, TAIL + j)];
        writeln!(stream, "{}", delta_line(5, &add, &[])).unwrap();
        std::thread::sleep(Duration::from_millis(2));
        if j % 25 == 24 {
            evicted = admin_stat(&handle, "session_evicted");
            if evicted >= 1 {
                break;
            }
        }
    }
    // Any straggling pending solves can still trip the cap after the
    // edit loop; give them a moment before declaring failure.
    let deadline = Instant::now() + Duration::from_secs(10);
    while evicted < 1 {
        assert!(
            Instant::now() < deadline,
            "session_evicted never incremented (pushes={} coalesced={})",
            admin_stat(&handle, "session_pushes"),
            admin_stat(&handle, "session_coalesced"),
        );
        std::thread::sleep(Duration::from_millis(50));
        evicted = admin_stat(&handle, "session_evicted");
    }

    // …and as an overloaded control frame once the reader drains the
    // backlog (control frames are never dropped).
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        assert!(Instant::now() < deadline, "no overloaded frame arrived");
        match read_frame(&mut reader) {
            Response::Error(e) => {
                assert_eq!(e.kind, ErrorKind::Overloaded, "{}", e.message);
                assert!(e.message.contains("evicted"), "{}", e.message);
                break;
            }
            Response::SessionUpdate(_) => continue, // pre-eviction backlog
            other => panic!("expected update or eviction, got {}", other.encode(&protocol::Envelope::v1())),
        }
    }
}

#[test]
fn base_eviction_closes_session_and_reopen_resumes() {
    // A deliberately tiny layout cache: regular traffic evicts the
    // session's base entry, which is exactly the state a session lands
    // in after a shard drain moved its cache entry elsewhere.
    let handle = spawn(ServerConfig {
        scheduler: SchedulerConfig {
            threads: 2,
            cache_capacity: 2,
            cache_shards: 1,
            ..Default::default()
        },
        ..live_config()
    });
    let (mut stream, mut reader) = connect_live(&handle);

    writeln!(stream, "{}", open_line(3, chain(10, 6))).unwrap();
    match read_frame(&mut reader) {
        Response::SessionOpened { version: 0, .. } => {}
        other => panic!("expected SessionOpened, got {}", other.encode(&protocol::Envelope::v1())),
    }

    // Unrelated traffic on the regular listener pushes the session's
    // base out of the 2-entry cache.
    let admin = TcpStream::connect(handle.addr()).unwrap();
    admin
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut admin_reader = BufReader::new(admin.try_clone().unwrap());
    let mut admin = admin;
    for len in [20usize, 30, 40] {
        let line = Request::Layout(Box::new(LayoutRequest {
            graph: chain(len, len),
            algo: lpl(),
            nd_width: 1.0,
            deadline: None,
        }))
        .encode_v1();
        writeln!(admin, "{line}").unwrap();
        let mut reply = String::new();
        admin_reader.read_line(&mut reply).unwrap();
        let reply = parse(reply.trim_end()).unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{}", reply.encode());
    }

    // The next edit cannot find its base: the session closes with the
    // post-drain error shape.
    writeln!(stream, "{}", delta_line(3, &[(5, 6)], &[])).unwrap();
    match read_frame(&mut reader) {
        Response::Error(e) => {
            assert_eq!(e.kind, ErrorKind::BaseNotFound, "{}", e.message);
        }
        other => panic!("expected BaseNotFound, got {}", other.encode(&protocol::Envelope::v1())),
    }

    // Recovery is a plain re-open with the full edited graph on the
    // same connection and id — then edits flow again from version 0.
    let edited = DiGraph::from_edges(10, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]).unwrap();
    writeln!(stream, "{}", open_line(3, edited)).unwrap();
    match read_frame(&mut reader) {
        Response::SessionOpened { version, reply } => {
            assert_eq!(version, 0);
            assert_eq!(reply.height, 7);
        }
        other => panic!("expected SessionOpened, got {}", other.encode(&protocol::Envelope::v1())),
    }
    writeln!(stream, "{}", delta_line(3, &[(6, 7)], &[])).unwrap();
    match read_frame(&mut reader) {
        Response::SessionUpdate(update) => {
            assert_eq!(update.version, 1);
            assert_eq!(update.height, 8);
        }
        other => panic!("expected SessionUpdate, got {}", other.encode(&protocol::Envelope::v1())),
    }
}

/// Reads one flat counter from the regular listener's `stats` op.
fn admin_stat(handle: &ServerHandle, key: &str) -> u64 {
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    writeln!(stream, "{{\"op\":\"stats\"}}").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let stats = parse(line.trim_end()).unwrap();
    stats.get(key).and_then(Json::as_u64).unwrap_or(0)
}
