//! Property-based tests of the consistent-hash ring: the stability and
//! balance guarantees the sharded deployment is built on.

use antlayer_service::router::HashRing;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The consistent-hashing contract: removing one shard (expressed
    // the way the router expresses it — skipping it in candidate
    // order) moves only the keys that shard owned. Every other key
    // keeps its assignment.
    #[test]
    fn removal_moves_only_the_removed_shards_keys(
        shards in 2usize..9,
        vnodes in 1usize..129,
        removed_raw in 0usize..9,
        keys in proptest::collection::vec(0u64..u64::MAX, 64..65),
    ) {
        let ring = HashRing::new(shards, vnodes);
        let removed = removed_raw % shards;
        for key in keys {
            let owner = ring.owner(key);
            let filtered = ring
                .candidates(key)
                .find(|&s| s != removed)
                .expect("at least one shard survives");
            if owner == removed {
                prop_assert!(filtered != removed, "key {} still on the removed shard", key);
            } else {
                prop_assert_eq!(owner, filtered, "key {} moved without cause", key);
            }
        }
    }

    // The join direction of the same contract (what live resharding
    // leans on): growing the ring from N to N+1 shards moves only the
    // keys the new shard now owns. Every other digest keeps its owner
    // *and* its whole candidate order — so replication sets of any size
    // are unchanged — because ring points are a pure function of
    // (shard index, replica), never of membership: the N-ring's points
    // are a subset of the (N+1)-ring's.
    #[test]
    fn join_moves_only_the_new_shards_keys(
        shards in 1usize..9,
        vnodes in 1usize..129,
        keys in proptest::collection::vec(0u64..u64::MAX, 64..65),
    ) {
        let before = HashRing::new(shards, vnodes);
        let after = HashRing::new(shards + 1, vnodes);
        let joined = shards; // a join always appends the next slot index
        for key in keys {
            let new_owner = after.owner(key);
            if new_owner != joined {
                prop_assert_eq!(
                    before.owner(key), new_owner,
                    "key {} moved without the new shard owning it", key
                );
            } else {
                // A moved key's *old* owner is the post-join ring's next
                // candidate past the new shard — which is where reads go
                // while the transfer cursor has not passed the digest.
                let fallback = after
                    .candidates(key)
                    .find(|&s| s != joined)
                    .expect("an old shard remains");
                prop_assert_eq!(before.owner(key), fallback);
            }
            // Candidate order filtered of the new shard is the old order
            // exactly: every replication set (any R) is unchanged.
            let old_order: Vec<usize> = before.candidates(key).collect();
            let filtered: Vec<usize> =
                after.candidates(key).filter(|&s| s != joined).collect();
            prop_assert_eq!(old_order, filtered);
        }
    }

    // Double removal composes the same way: keys owned by neither
    // removed shard never move.
    #[test]
    fn two_removals_still_strand_no_unrelated_keys(
        shards in 3usize..9,
        vnodes in 8usize..65,
        keys in proptest::collection::vec(0u64..u64::MAX, 64..65),
    ) {
        let ring = HashRing::new(shards, vnodes);
        let (a, b) = (0usize, 1usize);
        for key in keys {
            let owner = ring.owner(key);
            let filtered = ring
                .candidates(key)
                .find(|&s| s != a && s != b)
                .expect("a third shard survives");
            if owner != a && owner != b {
                prop_assert_eq!(owner, filtered);
            }
        }
    }

    // The replication contract: a digest's replication set is its first
    // R ring candidates (owner + next R-1, all distinct). Marking one
    // shard down (expressed the way the router expresses it — filtering
    // it out of candidate order) changes the set by at most replacing
    // the downed member: every surviving member keeps its slot's order,
    // the downed shard never appears, and at most one new shard joins.
    // This is what bounds re-replication traffic to the dead shard's
    // entries.
    #[test]
    fn marking_a_shard_down_changes_each_replication_set_by_at_most_one(
        shards in 3usize..9,
        vnodes in 8usize..65,
        replicas_raw in 2usize..9,
        down_raw in 0usize..9,
        keys in proptest::collection::vec(0u64..u64::MAX, 64..65),
    ) {
        let ring = HashRing::new(shards, vnodes);
        // R <= shards - 1 keeps the filtered set fully formable.
        let replicas = 2 + replicas_raw % (shards - 1).max(1);
        let replicas = replicas.min(shards - 1);
        let down = down_raw % shards;
        for key in keys {
            let before: Vec<usize> = ring.candidates(key).take(replicas).collect();
            let after: Vec<usize> = ring
                .candidates(key)
                .filter(|&s| s != down)
                .take(replicas)
                .collect();
            prop_assert_eq!(before.len(), replicas);
            prop_assert_eq!(after.len(), replicas);
            prop_assert!(!after.contains(&down), "down shard in set for key {}", key);
            // Survivors keep their relative order...
            let survivors: Vec<usize> =
                before.iter().copied().filter(|&s| s != down).collect();
            prop_assert_eq!(&after[..survivors.len()], &survivors[..]);
            // ...and at most one member is new.
            let gained = after.iter().filter(|s| !before.contains(s)).count();
            prop_assert!(
                gained <= 1,
                "key {}: set {:?} -> {:?} gained {} members",
                key, before, after, gained
            );
            if !before.contains(&down) {
                prop_assert_eq!(&before, &after, "unaffected set changed for key {}", key);
            }
        }
    }

    // Assignment is a pure function of (shards, vnodes, key): two
    // independently built rings always agree, which is what lets a
    // router restart (or a second router) route identically without
    // coordination.
    #[test]
    fn independently_built_rings_agree(
        shards in 1usize..9,
        vnodes in 1usize..65,
        keys in proptest::collection::vec(0u64..u64::MAX, 32..33),
    ) {
        let a = HashRing::new(shards, vnodes);
        let b = HashRing::new(shards, vnodes);
        for key in keys {
            prop_assert_eq!(a.owner(key), b.owner(key));
            prop_assert_eq!(
                a.candidates(key).collect::<Vec<_>>(),
                b.candidates(key).collect::<Vec<_>>()
            );
        }
    }

    // The candidate walk is a permutation of all shards starting at
    // the owner — failover can always find a live shard if one exists.
    #[test]
    fn candidates_are_a_permutation_starting_at_the_owner(
        shards in 1usize..9,
        vnodes in 1usize..65,
        key in 0u64..u64::MAX,
    ) {
        let ring = HashRing::new(shards, vnodes);
        let order: Vec<usize> = ring.candidates(key).collect();
        prop_assert_eq!(order.len(), shards);
        prop_assert_eq!(order[0], ring.owner(key));
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..shards).collect::<Vec<_>>());
    }
}

/// Virtual-node balance, the statistical half of the contract: with the
/// router's default vnode count no shard's key share strays past
/// 0.7x–1.4x of fair. (A deterministic unit check, not a property — the
/// ring placement is a pure function, so one measurement is the
/// measurement.)
#[test]
fn default_vnodes_keep_key_shares_within_bounds() {
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    for shards in [2usize, 3, 4, 8] {
        let ring = HashRing::new(shards, 64);
        let total = 100_000u64;
        let mut counts = vec![0u64; shards];
        for i in 0..total {
            counts[ring.owner(mix(i))] += 1;
        }
        let fair = total as f64 / shards as f64;
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(
            max / fair <= 1.4 && min / fair >= 0.7,
            "{shards} shards: shares {counts:?} out of bounds"
        );
    }
}
