//! Fixtures transcribed from the paper itself: the stretch re-indexing of
//! Fig. 2, the width bookkeeping of Fig. 3 / Algorithm 5, and the overall
//! behavioural claims of §VII quoted against small deterministic inputs.

use antlayer::aco::{compute_widths, stretch, SearchState, StretchStrategy};
use antlayer::prelude::*;

/// Fig. 2: LPL layers L1..L4 stretched by inserting new layers in between.
#[test]
fn fig2_between_stretch_reindexes_uniformly() {
    // 4 LPL layers, 3 gaps; stretch to 10 → 6 extra, 2 per gap.
    let lpl = Layering::from_slice(&[4, 3, 2, 1]);
    let s = stretch(&lpl, 10, StretchStrategy::Between);
    assert_eq!(s.total_layers, 10);
    assert_eq!(s.layering.as_node_vec().as_slice(), &[10, 7, 4, 1]);
}

/// Fig. 1: the alternative (inferior) strategies stack layers above/below.
#[test]
fn fig1_above_below_strategies() {
    let lpl = Layering::from_slice(&[2, 1]);
    let above = stretch(&lpl, 6, StretchStrategy::Above);
    assert_eq!(above.layering.as_node_vec().as_slice(), &[2, 1]);
    let below = stretch(&lpl, 6, StretchStrategy::Below);
    assert_eq!(below.layering.as_node_vec().as_slice(), &[6, 5]);
    // Both leave the layer span of interior vertices unchanged — the
    // paper's argument for inserting in between.
}

/// Algorithm 5 / Fig. 3: moving a vertex updates exactly the traversed
/// layers by ±indeg/±outdeg dummy widths.
#[test]
fn algorithm5_width_reflection_matches_recomputation() {
    // The Fig. 3 shape: vertex v with 2 in-edges from above and 2 out-edges
    // below, moved up by two layers.
    let dag = Dag::from_edges(
        5,
        &[
            (0, 2), // in-edges to v = node 2
            (1, 2),
            (2, 3), // out-edges of v
            (2, 4),
        ],
    )
    .unwrap();
    let wm = WidthModel::unit();
    // Layers: sources on 6, v on 3, sinks on 1; total layers 7.
    let layering = Layering::from_slice(&[6, 6, 3, 1, 1]);
    let mut state = SearchState::new(&dag, &layering, 7, &wm);

    let before = state.width.clone();
    state.move_vertex(&dag, &wm, NodeId::new(2), 5);
    // In-edge dummies disappeared from layers 4 and 5 (−2 each), out-edge
    // dummies appeared on layers 3 and 4 (+2 each), v's own width moved
    // from layer 3 to 5.
    assert_eq!(state.width[3], before[3] + 2.0 - 1.0); // +out −v
    assert_eq!(state.width[4], before[4] + 2.0 - 2.0); // +out −in
    assert_eq!(state.width[5], before[5] - 2.0 + 1.0); // −in +v
                                                       // And the incremental result equals a fresh recomputation.
    let fresh = compute_widths(&dag, &state.layer, 7, &wm);
    assert_eq!(&state.width[1..], &fresh[1..]);
}

/// §VII: "the width of the layerings produced by our algorithm is smaller
/// than the width of the LPL layerings" — checked on a deterministic
/// fan-heavy fixture where LPL is clearly suboptimal.
#[test]
fn section7_aco_narrows_lpl_fan() {
    // Three chains of different lengths hanging from one root onto one
    // sink plane: LPL piles all chain tails onto L1.
    let mut edges = Vec::new();
    // root 0; chains: 1-2-3-4, 5-6, 7.
    edges.extend([(0u32, 1u32), (1, 2), (2, 3), (3, 4)]);
    edges.extend([(0, 5), (5, 6)]);
    edges.extend([(0, 7)]);
    let dag = Dag::from_edges(8, &edges).unwrap();
    let wm = WidthModel::unit();
    let lpl = LongestPath.layer(&dag, &wm);
    let lpl_m = LayeringMetrics::compute(&dag, &lpl, &wm);
    let aco = AcoLayering::new(AcoParams::default().with_seed(4)).layer(&dag, &wm);
    let aco_m = LayeringMetrics::compute(&dag, &aco, &wm);
    assert!(
        aco_m.width <= lpl_m.width,
        "ACO width {} vs LPL {}",
        aco_m.width,
        lpl_m.width
    );
    // Height may grow a little (the paper reports 20–30%), but must stay
    // within the LPL height plus the slack the stretch provides.
    assert!(aco_m.height as f64 <= 1.5 * lpl_m.height as f64);
}

/// §VII: the ACO layering "matches the widths of the LPL plus the PL
/// heuristic" — on the suite slice the two are close (within 25%).
#[test]
fn section7_aco_tracks_lpl_pl_width() {
    let suite = GraphSuite::att_like_scaled(21, 19);
    let wm = WidthModel::unit();
    let aco = AcoLayering::new(AcoParams::default().with_colony(6, 6).with_seed(2));
    let lpl_pl = Refined::new(LongestPath, Promote::new());
    let mut w_aco = 0.0;
    let mut w_ref = 0.0;
    for (_, dag) in suite.iter() {
        w_aco += LayeringMetrics::compute(dag, &aco.layer(dag, &wm), &wm).width;
        w_ref += LayeringMetrics::compute(dag, &lpl_pl.layer(dag, &wm), &wm).width;
    }
    let ratio = w_aco / w_ref;
    assert!(
        (0.7..=1.3).contains(&ratio),
        "ACO/LPL+PL width ratio {ratio:.2} outside the reproduction band"
    );
}

/// §II definitions on a worked example: spans, dummies, density.
#[test]
fn section2_definitions_worked_example() {
    // Edge (u, v) with u ∈ L4, v ∈ L1 has span 3 → 2 dummies on L2, L3.
    let dag = Dag::from_edges(2, &[(0, 1)]).unwrap();
    let l = Layering::from_slice(&[4, 1]);
    assert_eq!(l.edge_span(NodeId::new(0), NodeId::new(1)), 3);
    let m = LayeringMetrics::compute(&dag, &l, &WidthModel::unit());
    assert_eq!(m.dummy_count, 2);
    // The edge crosses every one of the 3 gaps.
    assert_eq!(m.edge_density, 1);
    assert_eq!(m.height, 2, "only two layers hold real vertices");
}
