//! Cross-crate integration: generate → layer (every algorithm) → expand →
//! order → draw, with validity checked at every joint.

use antlayer::graph::generate;
use antlayer::layering::ProperLayering;
use antlayer::prelude::*;
use antlayer::sugiyama::{total_crossings, OrderingHeuristic};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn algorithms(seed: u64) -> Vec<Box<dyn LayeringAlgorithm>> {
    vec![
        Box::new(LongestPath),
        Box::new(Refined::new(LongestPath, Promote::new())),
        Box::new(MinWidth::new()),
        Box::new(Refined::new(MinWidth::new(), Promote::new())),
        Box::new(CoffmanGraham::new(4)),
        Box::new(AcoLayering::new(
            AcoParams::default().with_colony(5, 5).with_seed(seed),
        )),
    ]
}

#[test]
fn every_algorithm_survives_the_full_pipeline() {
    let mut rng = StdRng::seed_from_u64(2024);
    let widths = WidthModel::unit();
    for round in 0..3 {
        let dag = generate::layered_dag(40, 12, 0.05, 2, &mut rng);
        for algo in algorithms(round) {
            let layering = algo.layer(&dag, &widths);
            layering
                .validate(&dag)
                .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
            let proper = ProperLayering::build(&dag, &layering);
            assert!(proper.is_proper(), "{} proper expansion", algo.name());
            let order =
                antlayer::sugiyama::minimize_crossings(&proper, OrderingHeuristic::Barycenter, 6);
            let crossings = total_crossings(&proper, &order);
            let initial = total_crossings(&proper, &antlayer::sugiyama::initial_order(&proper));
            assert!(
                crossings <= initial,
                "{}: ordering made crossings worse",
                algo.name()
            );
        }
    }
}

#[test]
fn cyclic_digraphs_are_drawable_with_every_algorithm() {
    // A digraph with several overlapping cycles.
    let g = DiGraph::from_edges(
        8,
        &[
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 3),
            (5, 6),
            (6, 7),
            (7, 0),
        ],
    )
    .unwrap();
    for algo in algorithms(1) {
        let drawing = draw(&g, algo.as_ref(), &PipelineOptions::default());
        assert_eq!(drawing.layering.len(), 8, "{}", algo.name());
        assert!(drawing.metrics.height >= 2);
        let svg = drawing.to_svg(|v| v.index().to_string(), &SvgOptions::default());
        assert!(svg.contains("<polyline"));
    }
}

#[test]
fn suite_graphs_roundtrip_through_gml_and_dot() {
    use antlayer::graph::io::{dot, gml};
    let suite = GraphSuite::att_like_scaled(3, 19);
    for (_, dag) in suite.iter().take(6) {
        let gml_text = gml::write_gml(dag, |v| format!("v{}", v.index()));
        let parsed = gml::parse_gml(&gml_text).unwrap();
        assert_eq!(parsed.graph.edge_count(), dag.edge_count());
        let dot_text = dot::write_dot_ids(dag);
        let parsed = dot::parse_dot(&dot_text).unwrap();
        assert_eq!(parsed.graph.edge_count(), dag.edge_count());
    }
}

#[test]
fn aco_beats_lpl_width_on_the_suite() {
    // The headline reproduction claim on a suite slice: total width
    // (dummies included) of ACO clearly below LPL, heights within ~1.35x.
    let suite = GraphSuite::att_like_scaled(5, 38);
    let widths = WidthModel::unit();
    let aco = AcoLayering::new(AcoParams::default().with_colony(6, 6).with_seed(9));
    let mut w_aco = 0.0;
    let mut w_lpl = 0.0;
    let mut h_aco = 0u64;
    let mut h_lpl = 0u64;
    for (_, dag) in suite.iter() {
        let a = aco.layer(dag, &widths);
        let l = LongestPath.layer(dag, &widths);
        w_aco += LayeringMetrics::compute(dag, &a, &widths).width;
        w_lpl += LayeringMetrics::compute(dag, &l, &widths).width;
        h_aco += a.height() as u64;
        h_lpl += l.height() as u64;
    }
    assert!(
        w_aco < 0.9 * w_lpl,
        "ACO total width {w_aco:.1} vs LPL {w_lpl:.1}"
    );
    assert!(
        (h_aco as f64) <= 1.35 * h_lpl as f64,
        "ACO heights {h_aco} vs LPL {h_lpl}"
    );
}

#[test]
fn deterministic_end_to_end_across_thread_counts() {
    let suite = GraphSuite::att_like_scaled(8, 19);
    let widths = WidthModel::unit();
    for (_, dag) in suite.iter().take(4) {
        let seq = AcoLayering::new(
            AcoParams::default()
                .with_colony(4, 4)
                .with_seed(3)
                .with_threads(1),
        )
        .layer(dag, &widths);
        let par = AcoLayering::new(
            AcoParams::default()
                .with_colony(4, 4)
                .with_seed(3)
                .with_threads(4),
        )
        .layer(dag, &widths);
        assert_eq!(seq, par);
    }
}

#[test]
fn parallel_suite_evaluation_matches_sequential() {
    // The experiment harness maps algorithms over the suite in parallel;
    // results must not depend on that.
    let suite = GraphSuite::att_like_scaled(4, 19);
    let widths = WidthModel::unit();
    let graphs: Vec<Dag> = suite.iter().map(|(_, d)| d.clone()).collect();
    let work = |_: usize, dag: Dag| -> u64 {
        let l = LongestPath.layer(&dag, &widths);
        LayeringMetrics::compute(&dag, &l, &widths).dummy_count
    };
    let seq = antlayer::parallel::par_map(1, graphs.clone(), work);
    let par = antlayer::parallel::par_map(4, graphs, work);
    assert_eq!(seq, par);
}
